//! The case runner and its configuration.

/// Runner configuration, mirroring the proptest fields this workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; this vendored runner never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// Deterministic xoshiro256** generator used to drive case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut state = [0u64; 4];
        for s in &mut state {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *s = z ^ (z >> 31);
        }
        if state == [0; 4] {
            state[0] = 1;
        }
        TestRng { state }
    }

    /// Returns the next 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)` (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below_u64 bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        self.below_u64(bound as u64) as usize
    }
}

/// Runs a property over many random cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner, seeding from `PROPTEST_SEED` if set, otherwise
    /// from the system clock (the seed is printed on failure).
    pub fn new(config: ProptestConfig) -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v
                .trim()
                .parse::<u64>()
                .expect("PROPTEST_SEED must be a u64"),
            Err(_) => std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED),
        };
        TestRunner { config, seed }
    }

    /// Runs `body` for each case, feeding it a per-case generator. A
    /// panicking case aborts the run after printing the seed and case
    /// index needed to reproduce it (no shrinking is attempted).
    pub fn run<F: FnMut(&mut TestRng)>(&mut self, mut body: F) {
        for case in 0..self.config.cases {
            let mut rng = TestRng::from_seed(self.seed ^ (u64::from(case) << 32));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(&mut rng);
            }));
            if let Err(payload) = outcome {
                eprintln!(
                    "proptest case {case} failed \
                     (reproduce with PROPTEST_SEED={})",
                    self.seed
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_executes_every_case() {
        let mut runner = TestRunner::new(ProptestConfig {
            cases: 17,
            ..ProptestConfig::default()
        });
        let mut n = 0u32;
        runner.run(|_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
        }
    }
}
