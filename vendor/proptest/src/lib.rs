//! Vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io registry access, so this crate
//! provides the slice of proptest the workspace's property tests use:
//! composable [`Strategy`] values (ranges, tuples, `any`, `Just`,
//! `prop_oneof!`, `proptest::collection::vec`, `prop_map`) plus the
//! [`proptest!`] test macro and `prop_assert!` family.
//!
//! Differences from real proptest: failing cases are **not shrunk** — the
//! failing input is printed verbatim — and case generation uses a local
//! xoshiro256** generator seeded from the system clock (override with the
//! `PROPTEST_SEED` environment variable for reproduction).

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below(self.size.end - self.size.start) + self.size.start;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Fails the current test case with a formatted message if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Fails the current test case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {
        assert_eq!($lhs, $rhs)
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {
        assert_eq!($lhs, $rhs, $($fmt)*)
    };
}

/// Picks uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each named function runs `cases` random inputs
/// drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run(|rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                    $body
                });
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )+
        }
    };
}
