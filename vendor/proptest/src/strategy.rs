//! Composable value-generation strategies (no shrinking).

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree: strategies generate final
/// values directly, and failing cases are reported without shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies of one value
    /// type can be stored together (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy adapter applying a function to generated values.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among several strategies of the same value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`; each generation picks one uniformly.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy, as in `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for [`Arbitrary`] types; created by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Returns the canonical strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_uint {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below_u64(span) as $ty)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    start + (rng.below_u64(span + 1) as $ty)
                }
            }
        )+
    };
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1_000 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::from_seed(1);
        let s = Just(5u32).prop_map(|v| v * 2);
        assert_eq!(s.generate(&mut rng), 10);
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = TestRng::from_seed(2);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::from_seed(3);
        let s = crate::collection::vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
