//! Vendored subset of the `criterion` API.
//!
//! The build environment has no crates.io registry access, so this crate
//! keeps the workspace's `harness = false` benchmarks compiling and
//! runnable. Each registered benchmark executes its routine a small fixed
//! number of times and reports wall-clock time per iteration — enough to
//! smoke-test the benches under `cargo test`/`cargo bench` and catch
//! regressions in what they exercise, without criterion's statistics.

use std::time::Instant;

/// How per-iteration setup values are batched; accepted for signature
/// compatibility and otherwise ignored by this smoke-run harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Per-iteration inputs too large to batch at all.
    PerIteration,
}

/// Throughput annotation for a benchmark group; recorded but unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Runs `routine` for the configured iteration count, timing it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        report_time(start, self.iters);
    }

    /// Runs `routine` over values built by `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut spent = std::time::Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            spent += start.elapsed();
        }
        report_duration(spent, self.iters);
    }

    /// Like [`Bencher::iter_batched`] but passes the input by mutable
    /// reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut spent = std::time::Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            spent += start.elapsed();
        }
        report_duration(spent, self.iters);
    }
}

fn report_time(start: Instant, iters: u32) {
    report_duration(start.elapsed(), iters);
}

fn report_duration(spent: std::time::Duration, iters: u32) {
    let per = spent.as_secs_f64() / f64::from(iters.max(1));
    println!("    {iters} iter(s), {:.3} ms/iter", per * 1e3);
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 1 }
    }
}

impl Criterion {
    /// Accepted for compatibility; the smoke harness keeps its own small
    /// fixed iteration count.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Registers and immediately smoke-runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("bench {id}");
        let mut b = Bencher { iters: self.iters };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { c: self }
    }
}

/// A named collection of benchmarks sharing throughput annotations.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the group's throughput annotation (unused by the smoke
    /// harness).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Registers and immediately smoke-runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.c.bench_function(id, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(10);
        let mut ran = 0u32;
        c.bench_function("probe", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn batched_ref_passes_fresh_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(8));
        group.bench_function("batched", |b| {
            b.iter_batched_ref(|| vec![0u8; 4], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
