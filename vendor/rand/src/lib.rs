//! Vendored subset of the `rand` 0.8 API.
//!
//! The simulator's generators are implemented locally (xoshiro256** in
//! `nifdy-sim`); the only thing this workspace needs from `rand` is the
//! trait surface (`RngCore`, `SeedableRng`, `Error`) so that standard
//! distribution adapters keep working against `SimRng`. The build
//! environment has no access to a crates.io registry, so that surface is
//! vendored here, signature-compatible with rand 0.8.

use std::fmt;

/// Error type for fallible random byte generation.
///
/// The simulator's generators are infallible; this type exists only so the
/// [`RngCore::try_fill_bytes`] signature matches rand 0.8.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error carrying a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, as in rand 0.8.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, reporting failure as an [`Error`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// A generator that can be instantiated from a fixed seed, as in rand 0.8.
pub trait SeedableRng: Sized {
    /// The seed byte array accepted by [`SeedableRng::from_seed`].
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, spreading it across the seed bytes.
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion, as rand 0.8 does for this default method.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = Lcg::seed_from_u64(42);
        let mut b = Lcg::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn error_displays_message() {
        let e = Error::new("boom");
        assert!(e.to_string().contains("boom"));
    }
}
