//! NIFDY unit configuration: the four paper parameters plus extensions.

use std::fmt;

/// A violated [`NifdyConfig`] constraint, reported by
/// [`NifdyConfig::validate`] and [`NifdyConfigBuilder::build`].
///
/// Every variant names the parameter at fault, so callers sweeping
/// parameter grids can match on the reason instead of parsing a panic
/// string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `O = 0`: the OPT needs at least one entry.
    ZeroOptEntries,
    /// `B = 0`: the outgoing pool needs at least one buffer.
    ZeroPoolEntries,
    /// The arrivals FIFO needs at least one slot.
    ZeroArrivalsCapacity,
    /// `W < 2` with bulk dialogs enabled (acks cover half-windows).
    WindowTooSmall {
        /// The rejected window.
        window: u8,
    },
    /// `W` odd with bulk dialogs enabled (acks cover half-windows).
    WindowOdd {
        /// The rejected window.
        window: u8,
    },
    /// `W > 64`: too large for the wire sequence space.
    WindowTooLarge {
        /// The rejected window.
        window: u8,
    },
    /// `retx_timeout = Some(0)` would retransmit every cycle.
    ZeroRetxTimeout,
    /// `retx_budget = Some(0)` would fail every packet on its first
    /// timeout.
    ZeroRetxBudget,
    /// `adaptive_rto` without a `retx_timeout` to seed the initial RTO.
    AdaptiveRtoWithoutTimeout,
    /// RTO bounds must satisfy `1 <= rto_min <= rto_max`.
    BadRtoBounds {
        /// Configured floor.
        min: u64,
        /// Configured cap.
        max: u64,
    },
    /// The retransmission staging queue needs at least one slot.
    ZeroRetxQueueCap,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroOptEntries => write!(f, "the OPT needs at least one entry"),
            ConfigError::ZeroPoolEntries => {
                write!(f, "the outgoing pool needs at least one buffer")
            }
            ConfigError::ZeroArrivalsCapacity => {
                write!(f, "the arrivals FIFO needs at least one slot")
            }
            ConfigError::WindowTooSmall { window } => {
                write!(f, "bulk dialogs need a window of at least 2 (got {window})")
            }
            ConfigError::WindowOdd { window } => write!(
                f,
                "the window must be even (acks cover half-windows; got {window})"
            ),
            ConfigError::WindowTooLarge { window } => {
                write!(f, "window {window} too large for the wire sequence space")
            }
            ConfigError::ZeroRetxTimeout => write!(
                f,
                "retx_timeout of 0 would retransmit every cycle and flood the fabric"
            ),
            ConfigError::ZeroRetxBudget => write!(
                f,
                "a retry budget of 0 would fail every packet on its first timeout"
            ),
            ConfigError::AdaptiveRtoWithoutTimeout => {
                write!(f, "adaptive_rto needs a retx_timeout as the initial RTO")
            }
            ConfigError::BadRtoBounds { min, max } => write!(
                f,
                "rto bounds must satisfy 1 <= rto_min <= rto_max (got {min}..{max})"
            ),
            ConfigError::ZeroRetxQueueCap => {
                write!(f, "the retransmission queue needs at least one slot")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a [`NifdyUnit`](crate::NifdyUnit).
///
/// The paper tunes NIFDY to each network with four parameters:
///
/// * `O` — size of the outstanding packet table (OPT),
/// * `B` — size of the outgoing buffer pool,
/// * `D` — maximum concurrent incoming bulk dialogs per receiver,
/// * `W` — receiver window size per bulk dialog.
///
/// Presets matching the paper's per-network best values are provided (e.g.
/// [`NifdyConfig::mesh`], [`NifdyConfig::fat_tree`]).
///
/// # Examples
///
/// ```
/// use nifdy::NifdyConfig;
///
/// let cfg = NifdyConfig::fat_tree();
/// assert_eq!((cfg.opt_entries, cfg.pool_entries), (8, 8));
/// let custom = NifdyConfig::builder()
///     .opt_entries(4)
///     .pool_entries(4)
///     .max_dialogs(1)
///     .window(2)
///     .build()
///     .expect("valid parameters");
/// assert_eq!(custom.window, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NifdyConfig {
    /// `O`: maximum outstanding scalar packets (OPT entries).
    pub opt_entries: u8,
    /// `B`: outgoing buffer-pool entries.
    pub pool_entries: u8,
    /// `D`: incoming bulk dialogs this node will grant. Zero disables bulk
    /// mode entirely (best for the butterfly, per §4.1).
    pub max_dialogs: u8,
    /// `W`: sliding-window size (and reorder buffers) per bulk dialog.
    /// Must be even and at least 2 when `max_dialogs > 0`, because combined
    /// acks cover half-windows.
    pub window: u8,
    /// Arrivals FIFO capacity in packets ("with the NIFDY protocol, the
    /// capacity of the arrivals queue is at most two packets").
    pub arrivals_capacity: u8,
    /// Cycles of NIFDY processing charged per ack end ("we will assume that
    /// the NIFDY processing takes 2 cycles at each end, for a total of
    /// `T_ackproc = 4`").
    pub ack_proc_cycles: u16,
    /// Acknowledge scalar packets when they are *inserted* into the arrivals
    /// FIFO instead of when the processor accepts them — the paper's
    /// footnote 2 calls this "surprisingly less effective"; kept for the
    /// ablation benchmark.
    pub ack_on_insert: bool,
    /// Acknowledge every bulk packet individually instead of one combined
    /// ack per `W/2` packets — the §2.4.2 alternative sliding-window
    /// protocol; kept for the ablation benchmark.
    pub bulk_ack_every_packet: bool,
    /// §6.1 extension: piggyback pending acknowledgments on data packets
    /// headed to the same node instead of sending a standalone ack packet,
    /// "which should reduce network traffic". Costs one header bit plus the
    /// ack fields.
    pub piggyback_acks: bool,
    /// How long a pending ack may wait for a same-destination data packet
    /// before it is sent standalone anyway (piggyback mode only). Bounds the
    /// extra round-trip latency the optimization can introduce.
    pub piggyback_hold_cycles: u64,
    /// §6.2 lossy-network extension: retransmit unacknowledged packets after
    /// this many cycles. `None` assumes the reliable fabrics of §1.1. With
    /// [`adaptive_rto`](NifdyConfig::adaptive_rto) set, this is only the
    /// *initial* RTO; measured round trips take over from the first sample.
    /// `Some(0)` is rejected by validation (it would retransmit every cycle
    /// and flood the fabric).
    pub retx_timeout: Option<u64>,
    /// Adapt the retransmission timeout to measured round trips: the unit
    /// keeps a per-destination smoothed RTT and variance (EWMA, RFC
    /// 6298-style `srtt + 4·rttvar`), applies Karn's rule (no samples from
    /// retransmitted packets), and backs off exponentially — with a jittered
    /// cap at [`rto_max`](NifdyConfig::rto_max) — on consecutive timeouts.
    /// Without this flag the timeout is fixed at
    /// [`retx_timeout`](NifdyConfig::retx_timeout), as in the seed §6.2
    /// implementation.
    pub adaptive_rto: bool,
    /// Floor for the adaptive RTO in cycles (guards against spuriously
    /// retransmitting when the measured round trip is tiny).
    pub rto_min: u64,
    /// Cap for the adaptive RTO in cycles; exponential backoff saturates
    /// here (plus a small random jitter to de-synchronize senders).
    pub rto_max: u64,
    /// Maximum retransmissions per packet before the unit gives up and
    /// surfaces a [`DeliveryFailure`](crate::DeliveryFailure) to the client.
    /// `None` retries forever (the seed behavior); `Some(0)` is rejected by
    /// validation.
    pub retx_budget: Option<u32>,
    /// Bound on the retransmission staging queue, in packets. When the
    /// queue is full, a firing timer leaves its entry in place (it re-fires
    /// next cycle) and the overflow is counted in
    /// [`NicStats::retx_queue_overflow`](crate::NicStats::retx_queue_overflow).
    pub retx_queue_cap: u16,
    /// Threshold (in queued packets for the same destination, beyond the
    /// current one) above which a software `want_bulk` request is actually
    /// put on the wire. Guards against dialogs granted to senders with
    /// nothing left to send.
    pub bulk_request_min_backlog: u8,
}

impl NifdyConfig {
    /// Starts a validating builder pre-loaded with the paper's summary
    /// recommendation (`O = 8, B = 16, D = 1, W = 8`); override whichever
    /// parameters the experiment sweeps and call
    /// [`build`](NifdyConfigBuilder::build).
    pub fn builder() -> NifdyConfigBuilder {
        NifdyConfigBuilder {
            cfg: NifdyConfig::base(8, 16, 1, 8),
        }
    }

    /// The unvalidated parameter record behind the builder and the named
    /// presets.
    fn base(opt_entries: u8, pool_entries: u8, max_dialogs: u8, window: u8) -> Self {
        NifdyConfig {
            opt_entries,
            pool_entries,
            max_dialogs,
            window,
            arrivals_capacity: 2,
            ack_proc_cycles: 2,
            ack_on_insert: false,
            bulk_ack_every_packet: false,
            piggyback_acks: false,
            piggyback_hold_cycles: 64,
            retx_timeout: None,
            adaptive_rto: false,
            rto_min: 32,
            rto_max: 20_000,
            retx_budget: None,
            retx_queue_cap: 64,
            bulk_request_min_backlog: 1,
        }
    }

    /// A validated preset; the values come from the paper, so failure is a
    /// programming error.
    fn preset(o: u8, b: u8, d: u8, w: u8) -> Self {
        let cfg = NifdyConfig::base(o, b, d, w);
        debug_assert_eq!(cfg.validate(), Ok(()), "paper preset must validate");
        cfg
    }

    /// Conservative preset for low-volume, low-bisection wormhole meshes
    /// (§2.4.3: `O = 4, B = 4, D = 1, W = 2`).
    pub fn mesh() -> Self {
        NifdyConfig::preset(4, 4, 1, 2)
    }

    /// Generous preset for the full 4-ary fat tree (§2.4.3: "making the OPT
    /// large (O = 8) and the buffer pool large (B = 8)"; window sized by
    /// Equation 3).
    pub fn fat_tree() -> Self {
        NifdyConfig::preset(8, 8, 1, 4)
    }

    /// Preset for the CM-5-like fat tree: "smaller bulk windows than the
    /// full fat tree even though the round-trip latency is twice as great",
    /// because of its smaller volume and bisection bandwidth.
    pub fn cm5() -> Self {
        NifdyConfig::preset(8, 8, 1, 2)
    }

    /// Preset for the store-and-forward fat tree: per-hop latency of a full
    /// packet store makes the round trip enormous (~400 cycles), so Equation
    /// 3 calls for a deep window: `W >= 2·(400/60 − 1) ≈ 12`.
    pub fn store_and_forward_fat_tree() -> Self {
        NifdyConfig::preset(8, 16, 1, 12)
    }

    /// Preset for the butterfly: "the only network where it is best to have
    /// no bulk dialogs" (three-hop round trips, no alternative paths).
    pub fn butterfly() -> Self {
        NifdyConfig::preset(8, 8, 0, 2)
    }

    /// Preset for tori: mesh-like volume with wraparound links.
    pub fn torus() -> Self {
        NifdyConfig::preset(4, 4, 1, 2)
    }

    /// Builder: acknowledge on FIFO insert (ablation of footnote 2).
    pub fn with_ack_on_insert(mut self, on: bool) -> Self {
        self.ack_on_insert = on;
        self
    }

    /// Builder: piggyback acks on same-destination data packets (§6.1).
    pub fn with_piggyback_acks(mut self, on: bool) -> Self {
        self.piggyback_acks = on;
        self
    }

    /// Builder: acknowledge every bulk packet (§2.4.2 ablation).
    pub fn with_bulk_ack_every_packet(mut self, on: bool) -> Self {
        self.bulk_ack_every_packet = on;
        self
    }

    /// Builder: enable the §6.2 retransmission extension.
    pub fn with_retx_timeout(mut self, cycles: u64) -> Self {
        self.retx_timeout = Some(cycles);
        self
    }

    /// Builder: adapt the RTO to measured round trips (EWMA + variance,
    /// Karn's rule, exponential backoff with a jittered cap). Requires a
    /// [`retx_timeout`](NifdyConfig::retx_timeout) as the initial RTO.
    pub fn with_adaptive_rto(mut self, on: bool) -> Self {
        self.adaptive_rto = on;
        self
    }

    /// Builder: clamp the adaptive RTO to `[min, max]` cycles.
    pub fn with_rto_bounds(mut self, min: u64, max: u64) -> Self {
        self.rto_min = min;
        self.rto_max = max;
        self
    }

    /// Builder: bound retransmissions per packet; exceeding the budget
    /// surfaces a typed [`DeliveryFailure`](crate::DeliveryFailure) instead
    /// of retrying forever.
    pub fn with_retx_budget(mut self, budget: u32) -> Self {
        self.retx_budget = Some(budget);
        self
    }

    /// Builder: bound the retransmission staging queue.
    pub fn with_retx_queue_cap(mut self, cap: u16) -> Self {
        self.retx_queue_cap = cap;
        self
    }

    /// Builder: override the arrivals FIFO capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_arrivals_capacity(mut self, cap: u8) -> Self {
        assert!(cap > 0, "arrivals FIFO needs at least one slot");
        self.arrivals_capacity = cap;
        self
    }

    /// Builder: override the NIFDY ack-processing delay (paper Table 1).
    pub fn with_ack_proc_cycles(mut self, cycles: u16) -> Self {
        self.ack_proc_cycles = cycles;
        self
    }

    /// Builder: how long a ready ack waits for reverse data to piggyback
    /// on (§6.1) before it is sent standalone.
    pub fn with_piggyback_hold_cycles(mut self, cycles: u64) -> Self {
        self.piggyback_hold_cycles = cycles;
        self
    }

    /// Builder: backlog (queued packets to one destination) required
    /// before a scalar send asks for a bulk dialog.
    pub fn with_bulk_request_min_backlog(mut self, backlog: u8) -> Self {
        self.bulk_request_min_backlog = backlog;
        self
    }

    /// Total hardware packet buffers this configuration implies
    /// (`B + D·W + arrivals`) — the figure the buffering-only baseline must
    /// match for a fair comparison (§3).
    pub fn total_buffers(&self) -> u16 {
        u16::from(self.pool_entries)
            + u16::from(self.max_dialogs) * u16::from(self.window)
            + u16::from(self.arrivals_capacity)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed [`ConfigError`].
    /// Note that when `max_dialogs` is zero, bulk mode is disabled and the
    /// window parameter is ignored entirely — no window constraint applies.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.opt_entries == 0 {
            return Err(ConfigError::ZeroOptEntries);
        }
        if self.pool_entries == 0 {
            return Err(ConfigError::ZeroPoolEntries);
        }
        if self.arrivals_capacity == 0 {
            return Err(ConfigError::ZeroArrivalsCapacity);
        }
        if self.max_dialogs > 0 {
            if self.window < 2 {
                return Err(ConfigError::WindowTooSmall {
                    window: self.window,
                });
            }
            if !self.window.is_multiple_of(2) {
                return Err(ConfigError::WindowOdd {
                    window: self.window,
                });
            }
            if self.window > 64 {
                return Err(ConfigError::WindowTooLarge {
                    window: self.window,
                });
            }
        }
        if self.retx_timeout == Some(0) {
            return Err(ConfigError::ZeroRetxTimeout);
        }
        if self.retx_budget == Some(0) {
            return Err(ConfigError::ZeroRetxBudget);
        }
        if self.adaptive_rto && self.retx_timeout.is_none() {
            return Err(ConfigError::AdaptiveRtoWithoutTimeout);
        }
        if self.rto_min == 0 || self.rto_min > self.rto_max {
            return Err(ConfigError::BadRtoBounds {
                min: self.rto_min,
                max: self.rto_max,
            });
        }
        if self.retx_queue_cap == 0 {
            return Err(ConfigError::ZeroRetxQueueCap);
        }
        Ok(())
    }
}

/// Validating builder for [`NifdyConfig`], created by
/// [`NifdyConfig::builder`].
///
/// Each parameter is set by name — no positional run of anonymous `u8`s to
/// transpose — and [`build`](NifdyConfigBuilder::build) reports the first
/// violated constraint as a typed [`ConfigError`] instead of panicking.
///
/// # Examples
///
/// ```
/// use nifdy::{ConfigError, NifdyConfig};
///
/// let cfg = NifdyConfig::builder()
///     .opt_entries(8)
///     .pool_entries(8)
///     .max_dialogs(1)
///     .window(4)
///     .build()
///     .expect("valid");
/// assert_eq!(cfg.total_buffers(), 8 + 4 + 2);
///
/// // An odd window is rejected with a typed error...
/// let err = NifdyConfig::builder().window(3).build().unwrap_err();
/// assert_eq!(err, ConfigError::WindowOdd { window: 3 });
///
/// // ...unless bulk dialogs are disabled, which makes W irrelevant.
/// assert!(NifdyConfig::builder()
///     .max_dialogs(0)
///     .window(3)
///     .build()
///     .is_ok());
/// ```
#[derive(Debug, Clone)]
#[must_use = "call .build() to obtain the validated NifdyConfig"]
pub struct NifdyConfigBuilder {
    cfg: NifdyConfig,
}

impl NifdyConfigBuilder {
    /// Sets `O`, the outstanding packet table size.
    pub fn opt_entries(mut self, o: u8) -> Self {
        self.cfg.opt_entries = o;
        self
    }

    /// Sets `B`, the outgoing buffer-pool size.
    pub fn pool_entries(mut self, b: u8) -> Self {
        self.cfg.pool_entries = b;
        self
    }

    /// Sets `D`, the maximum concurrent incoming bulk dialogs. Zero
    /// disables bulk mode, making the window parameter irrelevant.
    pub fn max_dialogs(mut self, d: u8) -> Self {
        self.cfg.max_dialogs = d;
        self
    }

    /// Sets `W`, the per-dialog sliding-window size. Ignored (and exempt
    /// from validation) when `max_dialogs` is zero.
    pub fn window(mut self, w: u8) -> Self {
        self.cfg.window = w;
        self
    }

    /// Overrides the arrivals FIFO capacity.
    pub fn arrivals_capacity(mut self, cap: u8) -> Self {
        self.cfg.arrivals_capacity = cap;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint (see [`ConfigError`]).
    pub fn build(self) -> Result<NifdyConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl Default for NifdyConfig {
    /// The paper's summary recommendation: "an outstanding packet table of
    /// size 8 combined with a packet pool of 16 and a single bulk dialog
    /// with a window of 8 were more than enough resources for even large
    /// machines".
    fn default() -> Self {
        NifdyConfig::preset(8, 16, 1, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            NifdyConfig::default(),
            NifdyConfig::mesh(),
            NifdyConfig::fat_tree(),
            NifdyConfig::cm5(),
            NifdyConfig::store_and_forward_fat_tree(),
            NifdyConfig::butterfly(),
            NifdyConfig::torus(),
        ] {
            assert_eq!(cfg.validate(), Ok(()), "{cfg:?}");
        }
    }

    #[test]
    fn total_buffers_counts_pool_window_and_arrivals() {
        let cfg = NifdyConfig::mesh();
        assert_eq!(cfg.total_buffers(), 4 + 2 + 2);
        let no_bulk = NifdyConfig::butterfly();
        assert_eq!(no_bulk.total_buffers(), 8 + 2);
    }

    #[test]
    fn builder_rejects_odd_windows_with_a_typed_error() {
        let err = NifdyConfig::builder()
            .opt_entries(4)
            .pool_entries(4)
            .max_dialogs(1)
            .window(3)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::WindowOdd { window: 3 });
    }

    #[test]
    fn builder_ignores_window_when_bulk_disabled() {
        // D = 0 disables bulk mode entirely, so W is exempt from the
        // even/minimum constraints.
        let cfg = NifdyConfig::builder()
            .max_dialogs(0)
            .window(7)
            .build()
            .expect("W irrelevant without dialogs");
        assert_eq!(cfg.max_dialogs, 0);
    }

    #[test]
    fn builder_reports_each_constraint() {
        let err = NifdyConfig::builder().opt_entries(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroOptEntries);
        let err = NifdyConfig::builder().pool_entries(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroPoolEntries);
        let err = NifdyConfig::builder()
            .arrivals_capacity(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroArrivalsCapacity);
        let err = NifdyConfig::builder()
            .max_dialogs(1)
            .window(66)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::WindowTooLarge { window: 66 });
    }

    #[test]
    fn builder_covers_the_four_positional_parameters() {
        // The builder is the only constructor: the paper's four headline
        // parameters round-trip by name, and the old shim's panic contract
        // is now a typed error.
        let ok = NifdyConfig::builder()
            .opt_entries(4)
            .pool_entries(4)
            .max_dialogs(1)
            .window(2)
            .build()
            .expect("valid");
        assert_eq!(ok, NifdyConfig::mesh());
        let err = NifdyConfig::builder()
            .opt_entries(4)
            .pool_entries(4)
            .max_dialogs(1)
            .window(3)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("window must be even"), "{err}");
    }

    #[test]
    fn butterfly_disables_bulk() {
        assert_eq!(NifdyConfig::butterfly().max_dialogs, 0);
    }

    #[test]
    fn zero_retx_timeout_is_rejected() {
        let cfg = NifdyConfig::mesh().with_retx_timeout(0);
        assert!(cfg.validate().is_err(), "Some(0) must not validate");
        assert!(NifdyConfig::mesh().with_retx_timeout(1).validate().is_ok());
    }

    #[test]
    fn zero_retry_budget_is_rejected() {
        let cfg = NifdyConfig::mesh()
            .with_retx_timeout(100)
            .with_retx_budget(0);
        assert!(cfg.validate().is_err(), "budget 0 must not validate");
        let ok = NifdyConfig::mesh()
            .with_retx_timeout(100)
            .with_retx_budget(1);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn adaptive_rto_needs_an_initial_timeout() {
        let cfg = NifdyConfig::mesh().with_adaptive_rto(true);
        assert!(cfg.validate().is_err());
        let ok = NifdyConfig::mesh()
            .with_retx_timeout(500)
            .with_adaptive_rto(true);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn degenerate_rto_bounds_and_queue_cap_rejected() {
        assert!(NifdyConfig::mesh()
            .with_rto_bounds(0, 100)
            .validate()
            .is_err());
        assert!(NifdyConfig::mesh()
            .with_rto_bounds(200, 100)
            .validate()
            .is_err());
        assert!(NifdyConfig::mesh()
            .with_retx_queue_cap(0)
            .validate()
            .is_err());
    }
}
