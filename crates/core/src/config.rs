//! NIFDY unit configuration: the four paper parameters plus extensions.

/// Configuration of a [`NifdyUnit`](crate::NifdyUnit).
///
/// The paper tunes NIFDY to each network with four parameters:
///
/// * `O` — size of the outstanding packet table (OPT),
/// * `B` — size of the outgoing buffer pool,
/// * `D` — maximum concurrent incoming bulk dialogs per receiver,
/// * `W` — receiver window size per bulk dialog.
///
/// Presets matching the paper's per-network best values are provided (e.g.
/// [`NifdyConfig::mesh`], [`NifdyConfig::fat_tree`]).
///
/// # Examples
///
/// ```
/// use nifdy::NifdyConfig;
///
/// let cfg = NifdyConfig::fat_tree();
/// assert_eq!((cfg.opt_entries, cfg.pool_entries), (8, 8));
/// let custom = NifdyConfig::new(4, 4, 1, 2);
/// assert_eq!(custom.window, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NifdyConfig {
    /// `O`: maximum outstanding scalar packets (OPT entries).
    pub opt_entries: u8,
    /// `B`: outgoing buffer-pool entries.
    pub pool_entries: u8,
    /// `D`: incoming bulk dialogs this node will grant. Zero disables bulk
    /// mode entirely (best for the butterfly, per §4.1).
    pub max_dialogs: u8,
    /// `W`: sliding-window size (and reorder buffers) per bulk dialog.
    /// Must be even and at least 2 when `max_dialogs > 0`, because combined
    /// acks cover half-windows.
    pub window: u8,
    /// Arrivals FIFO capacity in packets ("with the NIFDY protocol, the
    /// capacity of the arrivals queue is at most two packets").
    pub arrivals_capacity: u8,
    /// Cycles of NIFDY processing charged per ack end ("we will assume that
    /// the NIFDY processing takes 2 cycles at each end, for a total of
    /// `T_ackproc = 4`").
    pub ack_proc_cycles: u16,
    /// Acknowledge scalar packets when they are *inserted* into the arrivals
    /// FIFO instead of when the processor accepts them — the paper's
    /// footnote 2 calls this "surprisingly less effective"; kept for the
    /// ablation benchmark.
    pub ack_on_insert: bool,
    /// Acknowledge every bulk packet individually instead of one combined
    /// ack per `W/2` packets — the §2.4.2 alternative sliding-window
    /// protocol; kept for the ablation benchmark.
    pub bulk_ack_every_packet: bool,
    /// §6.1 extension: piggyback pending acknowledgments on data packets
    /// headed to the same node instead of sending a standalone ack packet,
    /// "which should reduce network traffic". Costs one header bit plus the
    /// ack fields.
    pub piggyback_acks: bool,
    /// How long a pending ack may wait for a same-destination data packet
    /// before it is sent standalone anyway (piggyback mode only). Bounds the
    /// extra round-trip latency the optimization can introduce.
    pub piggyback_hold_cycles: u64,
    /// §6.2 lossy-network extension: retransmit unacknowledged packets after
    /// this many cycles. `None` assumes the reliable fabrics of §1.1. With
    /// [`adaptive_rto`](NifdyConfig::adaptive_rto) set, this is only the
    /// *initial* RTO; measured round trips take over from the first sample.
    /// `Some(0)` is rejected by validation (it would retransmit every cycle
    /// and flood the fabric).
    pub retx_timeout: Option<u64>,
    /// Adapt the retransmission timeout to measured round trips: the unit
    /// keeps a per-destination smoothed RTT and variance (EWMA, RFC
    /// 6298-style `srtt + 4·rttvar`), applies Karn's rule (no samples from
    /// retransmitted packets), and backs off exponentially — with a jittered
    /// cap at [`rto_max`](NifdyConfig::rto_max) — on consecutive timeouts.
    /// Without this flag the timeout is fixed at
    /// [`retx_timeout`](NifdyConfig::retx_timeout), as in the seed §6.2
    /// implementation.
    pub adaptive_rto: bool,
    /// Floor for the adaptive RTO in cycles (guards against spuriously
    /// retransmitting when the measured round trip is tiny).
    pub rto_min: u64,
    /// Cap for the adaptive RTO in cycles; exponential backoff saturates
    /// here (plus a small random jitter to de-synchronize senders).
    pub rto_max: u64,
    /// Maximum retransmissions per packet before the unit gives up and
    /// surfaces a [`DeliveryFailure`](crate::DeliveryFailure) to the client.
    /// `None` retries forever (the seed behavior); `Some(0)` is rejected by
    /// validation.
    pub retx_budget: Option<u32>,
    /// Bound on the retransmission staging queue, in packets. When the
    /// queue is full, a firing timer leaves its entry in place (it re-fires
    /// next cycle) and the overflow is counted in
    /// [`NicStats::retx_queue_overflow`](crate::NicStats::retx_queue_overflow).
    pub retx_queue_cap: u16,
    /// Threshold (in queued packets for the same destination, beyond the
    /// current one) above which a software `want_bulk` request is actually
    /// put on the wire. Guards against dialogs granted to senders with
    /// nothing left to send.
    pub bulk_request_min_backlog: u8,
}

impl NifdyConfig {
    /// Creates a configuration with the four paper parameters and defaults
    /// for everything else.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (see
    /// [`NifdyConfig::validate`]).
    pub fn new(opt_entries: u8, pool_entries: u8, max_dialogs: u8, window: u8) -> Self {
        let cfg = NifdyConfig {
            opt_entries,
            pool_entries,
            max_dialogs,
            window,
            arrivals_capacity: 2,
            ack_proc_cycles: 2,
            ack_on_insert: false,
            bulk_ack_every_packet: false,
            piggyback_acks: false,
            piggyback_hold_cycles: 64,
            retx_timeout: None,
            adaptive_rto: false,
            rto_min: 32,
            rto_max: 20_000,
            retx_budget: None,
            retx_queue_cap: 64,
            bulk_request_min_backlog: 1,
        };
        if let Err(e) = cfg.validate() {
            panic!("invalid NIFDY config: {e}");
        }
        cfg
    }

    /// Conservative preset for low-volume, low-bisection wormhole meshes
    /// (§2.4.3: `O = 4, B = 4, D = 1, W = 2`).
    pub fn mesh() -> Self {
        NifdyConfig::new(4, 4, 1, 2)
    }

    /// Generous preset for the full 4-ary fat tree (§2.4.3: "making the OPT
    /// large (O = 8) and the buffer pool large (B = 8)"; window sized by
    /// Equation 3).
    pub fn fat_tree() -> Self {
        NifdyConfig::new(8, 8, 1, 4)
    }

    /// Preset for the CM-5-like fat tree: "smaller bulk windows than the
    /// full fat tree even though the round-trip latency is twice as great",
    /// because of its smaller volume and bisection bandwidth.
    pub fn cm5() -> Self {
        NifdyConfig::new(8, 8, 1, 2)
    }

    /// Preset for the store-and-forward fat tree: per-hop latency of a full
    /// packet store makes the round trip enormous (~400 cycles), so Equation
    /// 3 calls for a deep window: `W >= 2·(400/60 − 1) ≈ 12`.
    pub fn store_and_forward_fat_tree() -> Self {
        NifdyConfig::new(8, 16, 1, 12)
    }

    /// Preset for the butterfly: "the only network where it is best to have
    /// no bulk dialogs" (three-hop round trips, no alternative paths).
    pub fn butterfly() -> Self {
        NifdyConfig::new(8, 8, 0, 2)
    }

    /// Preset for tori: mesh-like volume with wraparound links.
    pub fn torus() -> Self {
        NifdyConfig::new(4, 4, 1, 2)
    }

    /// Builder: acknowledge on FIFO insert (ablation of footnote 2).
    pub fn with_ack_on_insert(mut self, on: bool) -> Self {
        self.ack_on_insert = on;
        self
    }

    /// Builder: piggyback acks on same-destination data packets (§6.1).
    pub fn with_piggyback_acks(mut self, on: bool) -> Self {
        self.piggyback_acks = on;
        self
    }

    /// Builder: acknowledge every bulk packet (§2.4.2 ablation).
    pub fn with_bulk_ack_every_packet(mut self, on: bool) -> Self {
        self.bulk_ack_every_packet = on;
        self
    }

    /// Builder: enable the §6.2 retransmission extension.
    pub fn with_retx_timeout(mut self, cycles: u64) -> Self {
        self.retx_timeout = Some(cycles);
        self
    }

    /// Builder: adapt the RTO to measured round trips (EWMA + variance,
    /// Karn's rule, exponential backoff with a jittered cap). Requires a
    /// [`retx_timeout`](NifdyConfig::retx_timeout) as the initial RTO.
    pub fn with_adaptive_rto(mut self, on: bool) -> Self {
        self.adaptive_rto = on;
        self
    }

    /// Builder: clamp the adaptive RTO to `[min, max]` cycles.
    pub fn with_rto_bounds(mut self, min: u64, max: u64) -> Self {
        self.rto_min = min;
        self.rto_max = max;
        self
    }

    /// Builder: bound retransmissions per packet; exceeding the budget
    /// surfaces a typed [`DeliveryFailure`](crate::DeliveryFailure) instead
    /// of retrying forever.
    pub fn with_retx_budget(mut self, budget: u32) -> Self {
        self.retx_budget = Some(budget);
        self
    }

    /// Builder: bound the retransmission staging queue.
    pub fn with_retx_queue_cap(mut self, cap: u16) -> Self {
        self.retx_queue_cap = cap;
        self
    }

    /// Builder: override the arrivals FIFO capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_arrivals_capacity(mut self, cap: u8) -> Self {
        assert!(cap > 0, "arrivals FIFO needs at least one slot");
        self.arrivals_capacity = cap;
        self
    }

    /// Total hardware packet buffers this configuration implies
    /// (`B + D·W + arrivals`) — the figure the buffering-only baseline must
    /// match for a fair comparison (§3).
    pub fn total_buffers(&self) -> u16 {
        u16::from(self.pool_entries)
            + u16::from(self.max_dialogs) * u16::from(self.window)
            + u16::from(self.arrivals_capacity)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.opt_entries == 0 {
            return Err("the OPT needs at least one entry".into());
        }
        if self.pool_entries == 0 {
            return Err("the outgoing pool needs at least one buffer".into());
        }
        if self.arrivals_capacity == 0 {
            return Err("the arrivals FIFO needs at least one slot".into());
        }
        if self.max_dialogs > 0 {
            if self.window < 2 {
                return Err("bulk dialogs need a window of at least 2".into());
            }
            if !self.window.is_multiple_of(2) {
                return Err("the window must be even (acks cover half-windows)".into());
            }
            if self.window > 64 {
                return Err("window too large for the wire sequence space".into());
            }
        }
        if self.retx_timeout == Some(0) {
            return Err(
                "retx_timeout of 0 would retransmit every cycle and flood the fabric".into(),
            );
        }
        if self.retx_budget == Some(0) {
            return Err("a retry budget of 0 would fail every packet on its first timeout".into());
        }
        if self.adaptive_rto && self.retx_timeout.is_none() {
            return Err("adaptive_rto needs a retx_timeout as the initial RTO".into());
        }
        if self.rto_min == 0 || self.rto_min > self.rto_max {
            return Err("rto bounds must satisfy 1 <= rto_min <= rto_max".into());
        }
        if self.retx_queue_cap == 0 {
            return Err("the retransmission queue needs at least one slot".into());
        }
        Ok(())
    }
}

impl Default for NifdyConfig {
    /// The paper's summary recommendation: "an outstanding packet table of
    /// size 8 combined with a packet pool of 16 and a single bulk dialog
    /// with a window of 8 were more than enough resources for even large
    /// machines".
    fn default() -> Self {
        NifdyConfig::new(8, 16, 1, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            NifdyConfig::default(),
            NifdyConfig::mesh(),
            NifdyConfig::fat_tree(),
            NifdyConfig::cm5(),
            NifdyConfig::store_and_forward_fat_tree(),
            NifdyConfig::butterfly(),
            NifdyConfig::torus(),
        ] {
            assert_eq!(cfg.validate(), Ok(()), "{cfg:?}");
        }
    }

    #[test]
    fn total_buffers_counts_pool_window_and_arrivals() {
        let cfg = NifdyConfig::new(4, 4, 1, 2);
        assert_eq!(cfg.total_buffers(), 4 + 2 + 2);
        let no_bulk = NifdyConfig::new(8, 8, 0, 2);
        assert_eq!(no_bulk.total_buffers(), 8 + 2);
    }

    #[test]
    #[should_panic(expected = "window must be even")]
    fn odd_windows_rejected() {
        let _ = NifdyConfig::new(4, 4, 1, 3);
    }

    #[test]
    fn butterfly_disables_bulk() {
        assert_eq!(NifdyConfig::butterfly().max_dialogs, 0);
    }

    #[test]
    fn zero_retx_timeout_is_rejected() {
        let cfg = NifdyConfig::mesh().with_retx_timeout(0);
        assert!(cfg.validate().is_err(), "Some(0) must not validate");
        assert!(NifdyConfig::mesh().with_retx_timeout(1).validate().is_ok());
    }

    #[test]
    fn zero_retry_budget_is_rejected() {
        let cfg = NifdyConfig::mesh()
            .with_retx_timeout(100)
            .with_retx_budget(0);
        assert!(cfg.validate().is_err(), "budget 0 must not validate");
        let ok = NifdyConfig::mesh()
            .with_retx_timeout(100)
            .with_retx_budget(1);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn adaptive_rto_needs_an_initial_timeout() {
        let cfg = NifdyConfig::mesh().with_adaptive_rto(true);
        assert!(cfg.validate().is_err());
        let ok = NifdyConfig::mesh()
            .with_retx_timeout(500)
            .with_adaptive_rto(true);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn degenerate_rto_bounds_and_queue_cap_rejected() {
        assert!(NifdyConfig::mesh()
            .with_rto_bounds(0, 100)
            .validate()
            .is_err());
        assert!(NifdyConfig::mesh()
            .with_rto_bounds(200, 100)
            .validate()
            .is_err());
        assert!(NifdyConfig::mesh()
            .with_retx_queue_cap(0)
            .validate()
            .is_err());
    }
}
