//! The NIFDY unit: admission control and in-order delivery at the network
//! edge.
//!
//! Protocol summary (§2 of the paper):
//!
//! * **Scalar mode.** At most one unacknowledged packet per destination.
//!   Destinations with an outstanding packet are held in the *outstanding
//!   packet table* (OPT, `O` entries). Outbound packets wait in a pool of
//!   `B` buffers; a packet is *eligible* when no earlier packet to the same
//!   destination is waiting or outstanding (the paper's rank/eligibility
//!   unit, realized here as FIFO-per-destination ordering — observably
//!   identical behaviour).
//! * **Bulk dialogs.** A sender piggybacks a bulk request on a scalar
//!   packet; the receiver grants at most `D` dialogs, each with `W` reorder
//!   buffers. Bulk packets carry `{seq, dialog}`; in-order packets stream
//!   through, out-of-order ones wait in the window. One combined ack per
//!   `W/2` delivered packets. The sender exits by flagging the last packet.
//! * **Acks** travel on the reply network and are consumed by the NIFDY
//!   unit. Scalar packets are acked when the processor *accepts* them
//!   (footnote 2's ack-on-insert variant is available for ablation).
//! * **§6.2 extension.** With a retransmission timeout configured, the unit
//!   keeps a copy and a timer per outstanding packet, retransmits on
//!   timeout, and receivers discard duplicates via an alternating header bit
//!   (scalar) or the window sequence numbers (bulk).
//! * **Adaptive RTO.** With [`NifdyConfig::adaptive_rto`] set, the fixed
//!   timeout becomes only the initial RTO: the unit keeps a per-destination
//!   [`RttEstimator`], applies Karn's rule, backs off exponentially with a
//!   jittered cap, and — when a [`retx_budget`](NifdyConfig::retx_budget) is
//!   configured — abandons undeliverable transfers with a typed
//!   [`DeliveryFailure`] instead of retrying forever.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use nifdy_net::{AckInfo, BulkGrant, BulkTag, Lane, NetPort, Packet, Wire};
use nifdy_sim::{Cycle, NodeId, PacketId, SimRng, Wakeup};
use nifdy_trace::{trace_event, DialogEnd, EventKind, TraceHandle};

use crate::config::NifdyConfig;
use crate::nic::{
    Delivered, DeliveryFailure, FailureKind, Nic, NicOccupancy, NicStats, OutboundPacket,
};
use crate::rto::RttEstimator;

/// Sequence numbers travel on the wire modulo this space (the paper notes
/// they "need only be as large as W"; we carry a byte and document that
/// hardware would use `log2(2W)` bits).
const SEQ_SPACE: u64 = 256;

/// `SimRng` stream id of the retransmission-jitter generator (seeded by the
/// node index, so units never share a jitter sequence).
const JITTER_STREAM: u64 = 0x717;

/// An entry in the outstanding packet table.
#[derive(Debug)]
struct OptEntry {
    dst: NodeId,
    /// When the packet — or its most recent retransmission — was staged.
    sent_at: Cycle,
    /// When the original transmission was staged (RTT sampling base).
    first_sent: Cycle,
    /// Retransmissions so far (Karn's rule: sample RTT only when zero).
    retries: u32,
    /// Cycles after `sent_at` at which the retransmission timer fires.
    wait: u64,
    /// The packet's alternating duplicate bit; an arriving scalar ack clears
    /// this entry only when its echo matches (stale re-acks for an earlier
    /// packet must not release a newer, possibly-lost one).
    dup_bit: bool,
    /// Copy kept for retransmission (§6.2 only).
    copy: Option<Packet>,
}

/// An unacknowledged bulk packet held for retransmission.
#[derive(Debug)]
struct BulkCopy {
    /// Absolute sequence number.
    seq: u64,
    pkt: Packet,
    /// When the original transmission was staged (RTT sampling base).
    first_sent: Cycle,
    /// When the packet was last (re)staged.
    last_sent: Cycle,
    /// Retransmissions so far.
    retries: u32,
    /// Cycles after `last_sent` at which the retransmission timer fires.
    wait: u64,
}

/// Sender-side state of the single outgoing bulk dialog.
#[derive(Debug)]
struct OutDialog {
    peer: NodeId,
    dialog: u8,
    window: u8,
    /// Absolute count of bulk packets sent.
    next_seq: u64,
    /// Absolute count of bulk packets acknowledged.
    acked: u64,
    /// The exit packet has been sent; no further traffic to `peer` until the
    /// dialog fully drains (preserves pairwise order).
    exiting: bool,
    /// Unacked copies for retransmission, in sequence order.
    copies: VecDeque<BulkCopy>,
}

/// Receiver-side state of one granted dialog slot.
#[derive(Debug)]
struct InDialog {
    peer: NodeId,
    /// Absolute count of packets delivered in order (== next expected seq).
    expected: u64,
    /// Out-of-order packets buffered in the window, by absolute seq.
    buf: BTreeMap<u64, Packet>,
    /// Delivered count as of the last window ack sent.
    last_acked: u64,
    /// Last cycle any packet of this dialog arrived (reclaim watchdog).
    last_activity: Cycle,
}

/// Tombstone for a recently closed dialog slot (lossy-network robustness:
/// late retransmissions of the tail still get their final ack re-sent).
#[derive(Debug, Clone, Copy)]
struct ClosedDialog {
    peer: NodeId,
    final_count: u64,
    until: Cycle,
}

/// A queued acknowledgment, charged the NIFDY processing latency.
#[derive(Debug)]
struct PendingAck {
    dst: NodeId,
    info: AckInfo,
    ready_at: Cycle,
}

/// The NIFDY network interface unit.
///
/// # Examples
///
/// Two units exchanging a packet over a small mesh:
///
/// ```
/// use nifdy::{Nic, NifdyConfig, NifdyUnit, OutboundPacket};
/// use nifdy_net::topology::Mesh;
/// use nifdy_net::{Fabric, FabricConfig};
/// use nifdy_sim::NodeId;
///
/// let mut fab = Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default());
/// let mut a = NifdyUnit::new(NodeId::new(0), NifdyConfig::mesh());
/// let mut b = NifdyUnit::new(NodeId::new(3), NifdyConfig::mesh());
/// assert!(a.try_send(OutboundPacket::new(NodeId::new(3), 8), fab.now()));
/// let got = loop {
///     a.step(&mut fab);
///     b.step(&mut fab);
///     fab.step();
///     if let Some(d) = b.poll(fab.now()) {
///         break d;
///     }
///     assert!(fab.now().as_u64() < 10_000);
/// };
/// assert_eq!(got.src, NodeId::new(0));
/// ```
#[derive(Debug)]
pub struct NifdyUnit {
    node: NodeId,
    cfg: NifdyConfig,
    now: Cycle,
    pkt_counter: u64,

    // Sender side.
    pool: VecDeque<OutboundPacket>,
    opt: Vec<OptEntry>,
    out_dialog: Option<OutDialog>,
    bulk_request_pending: Option<NodeId>,
    retx_queue: VecDeque<Packet>,
    alt_bits: BTreeMap<NodeId, bool>,
    /// Peers whose outgoing bulk dialog was torn down by the retry budget:
    /// traffic to them stays scalar (a fresh dialog against the receiver's
    /// stale slot state could not resynchronize).
    bulk_poisoned: BTreeSet<NodeId>,
    /// Per-destination round-trip estimators (adaptive RTO only).
    rtt: BTreeMap<NodeId, RttEstimator>,
    /// Jitter source for the retransmission backoff.
    jitter: SimRng,
    /// Typed failures awaiting [`Nic::take_failures`].
    failures: Vec<DeliveryFailure>,

    // Receiver side.
    arrivals: VecDeque<Packet>,
    dialogs: Vec<Option<InDialog>>,
    closed: Vec<Option<ClosedDialog>>,
    peer_dialog: BTreeMap<NodeId, u8>,
    ack_queue: VecDeque<PendingAck>,
    ack_delay: VecDeque<(Cycle, NodeId, AckInfo)>,
    last_insert_bit: BTreeMap<NodeId, bool>,
    last_acked_bit: BTreeMap<NodeId, bool>,

    trace: TraceHandle,
    /// True while an eligibility stall episode is in progress (the stall
    /// trace event is edge-triggered on entry to this state).
    elig_stalled: bool,
    /// Cached [`Nic::next_event`] answer, recomputed at the end of every
    /// full [`Nic::step`].
    next_wake: Wakeup,
    /// Set whenever unit state changes outside `step` (a send, a poll, a
    /// peer reset) — the cached `next_wake` may then be too late.
    wake_stale: bool,
    /// Disables the cached-wakeup early-out in `step` (differential
    /// testing only; production paths always keep the cache on).
    wake_cache_enabled: bool,
    stats: NicStats,
}

impl NifdyUnit {
    /// Creates a NIFDY unit for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`NifdyConfig::validate`].
    pub fn new(node: NodeId, cfg: NifdyConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid NIFDY config: {e}");
        }
        let d = cfg.max_dialogs as usize;
        NifdyUnit {
            node,
            now: Cycle::ZERO,
            pkt_counter: 0,
            pool: VecDeque::with_capacity(cfg.pool_entries as usize),
            opt: Vec::with_capacity(cfg.opt_entries as usize),
            out_dialog: None,
            bulk_request_pending: None,
            retx_queue: VecDeque::with_capacity(cfg.retx_queue_cap as usize),
            alt_bits: BTreeMap::new(),
            bulk_poisoned: BTreeSet::new(),
            rtt: BTreeMap::new(),
            jitter: SimRng::from_seed_stream(node.index() as u64, JITTER_STREAM),
            failures: Vec::new(),
            arrivals: VecDeque::with_capacity(cfg.arrivals_capacity as usize),
            dialogs: (0..d).map(|_| None).collect(),
            closed: (0..d).map(|_| None).collect(),
            peer_dialog: BTreeMap::new(),
            ack_queue: VecDeque::with_capacity(2 * cfg.arrivals_capacity as usize),
            ack_delay: VecDeque::with_capacity(2 * cfg.arrivals_capacity as usize),
            last_insert_bit: BTreeMap::new(),
            last_acked_bit: BTreeMap::new(),
            trace: TraceHandle::off(),
            elig_stalled: false,
            next_wake: Wakeup::Now,
            wake_stale: true,
            wake_cache_enabled: true,
            stats: NicStats::default(),
            cfg,
        }
    }

    /// The configuration this unit runs with.
    pub fn config(&self) -> &NifdyConfig {
        &self.cfg
    }

    /// Number of scalar packets currently outstanding (OPT occupancy).
    pub fn opt_occupancy(&self) -> usize {
        self.opt.len()
    }

    /// Whether this unit currently holds an outgoing bulk dialog.
    pub fn in_bulk_dialog(&self) -> bool {
        self.out_dialog.is_some()
    }

    /// `(unacknowledged, window)` of the outgoing bulk dialog, if any.
    /// The protocol invariant `unacknowledged <= window` always holds.
    pub fn bulk_outstanding(&self) -> Option<(u64, u8)> {
        self.out_dialog
            .as_ref()
            .map(|d| (d.next_seq - d.acked, d.window))
    }

    /// Smoothed round-trip estimate to `dst` in cycles, once adaptive RTO
    /// has collected at least one sample.
    pub fn srtt(&self, dst: NodeId) -> Option<u64> {
        self.rtt.get(&dst).and_then(RttEstimator::srtt)
    }

    /// True when a torn-down bulk dialog has downgraded traffic to `dst` to
    /// scalar-only mode.
    pub fn bulk_poisoned(&self, dst: NodeId) -> bool {
        self.bulk_poisoned.contains(&dst)
    }

    /// Timeout for a *fresh* transmission to `dst`: the configured fixed
    /// value, or the per-destination RFC 6298-style estimate clamped to
    /// `[rto_min, rto_max]` when adaptive RTO is on.
    fn fresh_rto(&self, dst: NodeId) -> u64 {
        let base = self.cfg.retx_timeout.unwrap_or(0);
        if !self.cfg.adaptive_rto {
            return base;
        }
        self.rtt
            .get(&dst)
            .and_then(RttEstimator::rto)
            .map(|r| r.clamp(self.cfg.rto_min, self.cfg.rto_max))
            .unwrap_or(base)
    }

    /// Timeout for the retransmission after `retries` attempts: exponential
    /// backoff saturating at `rto_max`, plus up to 1/8 jitter so synchronized
    /// senders de-correlate. The legacy fixed-timeout path has neither.
    fn backoff_rto(&mut self, dst: NodeId, retries: u32) -> u64 {
        let rto = self.fresh_rto(dst);
        if !self.cfg.adaptive_rto {
            return rto;
        }
        let capped = rto
            .saturating_mul(1u64 << retries.min(10))
            .min(self.cfg.rto_max);
        capped + self.jitter.gen_range_u64(0..capped / 8 + 1)
    }

    /// Feeds one RTT sample for `dst`; callers enforce Karn's rule.
    fn sample_rtt(&mut self, dst: NodeId, rtt: u64) {
        if self.cfg.adaptive_rto {
            let est = self.rtt.entry(dst).or_default();
            est.sample(rtt);
            let (srtt, rto) = (est.srtt().unwrap_or(0), est.rto().unwrap_or(0));
            trace_event!(
                self.trace,
                self.now,
                self.node,
                EventKind::RttSample {
                    dst,
                    rtt,
                    srtt,
                    rto,
                }
            );
        }
    }

    fn next_packet_id(&mut self) -> PacketId {
        self.pkt_counter += 1;
        PacketId::new(((self.node.index() as u64) << 40) | self.pkt_counter)
    }

    fn opt_contains(&self, dst: NodeId) -> bool {
        self.opt.iter().any(|e| e.dst == dst)
    }

    /// Queued pool packets destined to `dst`, excluding index `skip`.
    fn backlog_for(&self, dst: NodeId, skip: usize) -> usize {
        self.pool
            .iter()
            .enumerate()
            .filter(|(i, p)| *i != skip && p.dst == dst)
            .count()
    }

    fn queue_ack(&mut self, dst: NodeId, info: AckInfo) {
        self.ack_queue.push_back(PendingAck {
            dst,
            info,
            ready_at: self.now + u64::from(self.cfg.ack_proc_cycles),
        });
    }

    /// Receiver-side bulk-grant decision for a scalar packet from `src` with
    /// the given request bit.
    fn decide_grant(&mut self, requested: bool, src: NodeId) -> BulkGrant {
        if !requested {
            return BulkGrant::NotRequested;
        }
        if let Some(&slot) = self.peer_dialog.get(&src) {
            // Idempotent re-grant (duplicate request after a lost ack).
            return BulkGrant::Granted {
                dialog: slot,
                window: self.cfg.window,
            };
        }
        let free = self
            .dialogs
            .iter()
            .enumerate()
            .find(|(i, d)| d.is_none() && self.closed[*i].is_none_or(|c| c.until <= self.now));
        match free {
            Some((slot, _)) => {
                self.dialogs[slot] = Some(InDialog {
                    peer: src,
                    expected: 0,
                    buf: BTreeMap::new(),
                    last_acked: 0,
                    last_activity: self.now,
                });
                self.closed[slot] = None;
                self.peer_dialog.insert(src, slot as u8);
                self.stats.dialogs_granted.incr();
                trace_event!(
                    self.trace,
                    self.now,
                    self.node,
                    EventKind::DialogGrant {
                        peer: src,
                        dialog: slot as u8,
                    }
                );
                BulkGrant::Granted {
                    dialog: slot as u8,
                    window: self.cfg.window,
                }
            }
            None => {
                trace_event!(
                    self.trace,
                    self.now,
                    self.node,
                    EventKind::DialogReject { peer: src }
                );
                BulkGrant::Rejected
            }
        }
    }

    /// Builds and queues the scalar ack for an accepted data packet.
    fn ack_scalar(&mut self, pkt: &Packet) {
        let Wire::Data {
            bulk_request,
            needs_ack,
            dup_bit,
            ..
        } = pkt.wire
        else {
            return;
        };
        if !needs_ack {
            return;
        }
        let grant = self.decide_grant(bulk_request, pkt.src);
        self.last_acked_bit.insert(pkt.src, dup_bit);
        self.queue_ack(
            pkt.src,
            AckInfo::Scalar {
                grant,
                echo: dup_bit,
            },
        );
    }

    /// Processes a delayed acknowledgment (sender side).
    fn handle_ack(&mut self, from: NodeId, info: AckInfo) {
        self.stats.acks_received.incr();
        match info {
            AckInfo::Scalar { grant, echo } => {
                if let Some(i) = self
                    .opt
                    .iter()
                    .position(|e| e.dst == from && e.dup_bit == echo)
                {
                    let e = self.opt.swap_remove(i);
                    trace_event!(
                        self.trace,
                        self.now,
                        self.node,
                        EventKind::OptClear {
                            dst: from,
                            occupancy: self.opt.len() as u32,
                        }
                    );
                    if e.retries == 0 {
                        let rtt = self.now.saturating_since(e.first_sent);
                        self.sample_rtt(from, rtt);
                    }
                }
                match grant {
                    BulkGrant::Granted { dialog, window } => {
                        if self.bulk_request_pending == Some(from) && self.out_dialog.is_none() {
                            self.out_dialog = Some(OutDialog {
                                peer: from,
                                dialog,
                                window,
                                next_seq: 0,
                                acked: 0,
                                exiting: false,
                                copies: VecDeque::with_capacity(usize::from(window)),
                            });
                            trace_event!(
                                self.trace,
                                self.now,
                                self.node,
                                EventKind::DialogOpen {
                                    peer: from,
                                    dialog,
                                    window,
                                }
                            );
                        }
                        if self.bulk_request_pending == Some(from) {
                            self.bulk_request_pending = None;
                        }
                    }
                    BulkGrant::Rejected => {
                        if self.bulk_request_pending == Some(from) {
                            self.bulk_request_pending = None;
                            self.stats.dialogs_rejected.incr();
                        }
                    }
                    BulkGrant::NotRequested => {}
                }
            }
            AckInfo::Bulk {
                dialog,
                cum_seq,
                terminate,
            } => {
                let now = self.now;
                // Detach the dialog so RTT sampling below can borrow `self`
                // freely; it goes back unless this ack closed the dialog.
                let Some(mut d) = self.out_dialog.take() else {
                    return; // stale ack after the dialog closed
                };
                if d.peer != from || d.dialog != dialog {
                    self.out_dialog = Some(d);
                    return;
                }
                // Reconstruct the absolute delivered count from the wire
                // residue: the smallest count > acked congruent to cum+1.
                let target = (u64::from(cum_seq) + 1) % SEQ_SPACE;
                let delta = (target + SEQ_SPACE - (d.acked % SEQ_SPACE)) % SEQ_SPACE;
                let count = d.acked + delta;
                if count > d.next_seq {
                    self.out_dialog = Some(d); // acknowledges packets never sent: ignore
                    return;
                }
                let mut advance = None;
                if count > d.acked {
                    d.acked = count;
                    advance = Some((count, d.next_seq - count));
                }
                let closed = terminate || (d.exiting && d.acked == d.next_seq);
                if let Some((acked, outstanding)) = advance {
                    trace_event!(
                        self.trace,
                        self.now,
                        self.node,
                        EventKind::WindowAdvance {
                            peer: from,
                            dialog,
                            acked,
                            outstanding,
                        }
                    );
                }
                if closed {
                    trace_event!(
                        self.trace,
                        self.now,
                        self.node,
                        EventKind::DialogClose {
                            peer: from,
                            dialog,
                            end: DialogEnd::Exit,
                        }
                    );
                }
                if advance.is_some() {
                    while d.copies.front().is_some_and(|c| c.seq < count) {
                        let Some(c) = d.copies.pop_front() else { break };
                        // Karn's rule: retransmitted copies give no sample.
                        if c.retries == 0 {
                            self.sample_rtt(from, now.saturating_since(c.first_sent));
                        }
                    }
                }
                if !closed {
                    self.out_dialog = Some(d);
                }
            }
        }
    }

    /// The peer a dialog slot belongs to: the live dialog's sender, or the
    /// tombstoned one for a slot that recently closed. Bulk-mode packets
    /// carry `{seq, dialog}` *in place of* the source-identifier bits (§3),
    /// so on a real wire this lookup — not the header — names the sender.
    fn dialog_peer(&self, slot: usize) -> Option<NodeId> {
        if let Some(d) = self.dialogs.get(slot).and_then(Option::as_ref) {
            return Some(d.peer);
        }
        self.closed
            .get(slot)
            .copied()
            .flatten()
            .map(|c: ClosedDialog| c.peer)
    }

    /// Handles an arriving bulk-mode data packet (receiver side).
    fn receive_bulk(&mut self, mut pkt: Packet, tag: BulkTag) {
        let slot = tag.dialog as usize;
        if slot >= self.dialogs.len() || self.dialogs[slot].is_none() {
            // Late retransmission for a closed dialog: re-send the final ack.
            if let Some(c) = self.closed.get(slot).copied().flatten() {
                if c.final_count > 0 {
                    let cum = ((c.final_count - 1) % SEQ_SPACE) as u8;
                    self.queue_ack(
                        c.peer,
                        AckInfo::Bulk {
                            dialog: tag.dialog,
                            cum_seq: cum,
                            terminate: true,
                        },
                    );
                }
            }
            self.stats.duplicates_dropped.incr();
            return;
        }
        let Some(d) = self.dialogs.get_mut(slot).and_then(Option::as_mut) else {
            return; // guarded above; kept total for the datapath
        };
        d.last_activity = self.now;
        // Re-substitute the source identifier from the dialog slot. Over the
        // simulated fabric this is a no-op (the struct still carries `src`);
        // over a byte transport the bulk header genuinely lacks the source
        // bits and the decoder fills in a placeholder.
        pkt.src = d.peer;
        let delta = (u64::from(tag.seq) + SEQ_SPACE - (d.expected % SEQ_SPACE)) % SEQ_SPACE;
        if delta >= u64::from(self.cfg.window) {
            // Duplicate or out-of-window: discard, refresh the cumulative ack.
            self.stats.duplicates_dropped.incr();
            if d.expected > 0 {
                let cum = ((d.expected - 1) % SEQ_SPACE) as u8;
                let (peer, dialog) = (d.peer, tag.dialog);
                self.queue_ack(
                    peer,
                    AckInfo::Bulk {
                        dialog,
                        cum_seq: cum,
                        terminate: false,
                    },
                );
            }
            return;
        }
        let abs = d.expected + delta;
        if delta > 0 {
            self.stats.bulk_out_of_order.incr();
        }
        d.buf.entry(abs).or_insert(pkt);
    }

    /// Streams in-order bulk packets to the arrivals FIFO and emits window
    /// acks at half-window boundaries and on dialog exit.
    fn drain_dialogs(&mut self) {
        for slot in 0..self.dialogs.len() {
            loop {
                if self.arrivals.len() >= self.cfg.arrivals_capacity as usize {
                    return;
                }
                let Some(d) = self.dialogs[slot].as_mut() else {
                    break;
                };
                let expected = d.expected;
                let Some(pkt) = d.buf.remove(&expected) else {
                    break;
                };
                d.expected += 1;
                let exit = matches!(
                    pkt.wire,
                    Wire::Data {
                        bulk_exit: true,
                        ..
                    }
                );
                let peer = d.peer;
                let delivered = d.expected;
                let half = if self.cfg.bulk_ack_every_packet {
                    1
                } else {
                    u64::from(self.cfg.window) / 2
                };
                let boundary = delivered - d.last_acked >= half;
                if boundary {
                    d.last_acked = delivered;
                }
                self.arrivals.push_back(pkt);
                trace_event!(
                    self.trace,
                    self.now,
                    self.node,
                    EventKind::BulkAccept {
                        src: peer,
                        dialog: slot as u8,
                        seq: ((delivered - 1) % SEQ_SPACE) as u8,
                        exit,
                    }
                );
                if exit {
                    // Final cumulative ack; free the slot with a tombstone.
                    let cum = ((delivered - 1) % SEQ_SPACE) as u8;
                    self.queue_ack(
                        peer,
                        AckInfo::Bulk {
                            dialog: slot as u8,
                            cum_seq: cum,
                            terminate: false,
                        },
                    );
                    let linger = self.cfg.retx_timeout.map_or(0, |t| {
                        // Adaptive senders may back off as far as rto_max, so
                        // the tombstone must outlive that schedule too.
                        4 * if self.cfg.adaptive_rto {
                            self.cfg.rto_max
                        } else {
                            t
                        }
                    });
                    self.closed[slot] = Some(ClosedDialog {
                        peer,
                        final_count: delivered,
                        until: self.now + linger,
                    });
                    self.dialogs[slot] = None;
                    self.peer_dialog.remove(&peer);
                    break;
                } else if boundary {
                    let cum = ((delivered - 1) % SEQ_SPACE) as u8;
                    self.queue_ack(
                        peer,
                        AckInfo::Bulk {
                            dialog: slot as u8,
                            cum_seq: cum,
                            terminate: false,
                        },
                    );
                }
            }
        }
    }

    /// Handles an arriving scalar data packet; returns `false` if the
    /// arrivals FIFO was full and the packet must stay in the fabric.
    fn receive_scalar(&mut self, pkt: Packet) -> bool {
        if self.arrivals.len() >= self.cfg.arrivals_capacity as usize {
            return false;
        }
        let Wire::Data {
            dup_bit,
            needs_ack,
            bulk_request,
            ..
        } = pkt.wire
        else {
            // Acks are consumed on the reply lane; a non-data packet here is
            // a dispatch bug. Swallow it rather than poison the datapath.
            debug_assert!(false, "receive_scalar called with a non-data packet");
            return true;
        };
        if self.cfg.retx_timeout.is_some() && needs_ack {
            if self.last_insert_bit.get(&pkt.src) == Some(&dup_bit) {
                // Duplicate of a packet already inserted; re-ack only if the
                // original was already accepted, otherwise stay silent (the
                // original's ack is still coming).
                self.stats.duplicates_dropped.incr();
                if self.last_acked_bit.get(&pkt.src) == Some(&dup_bit) {
                    let src = pkt.src;
                    let grant = self.decide_grant(bulk_request, src);
                    self.queue_ack(
                        src,
                        AckInfo::Scalar {
                            grant,
                            echo: dup_bit,
                        },
                    );
                }
                return true;
            }
            self.last_insert_bit.insert(pkt.src, dup_bit);
        }
        if self.cfg.ack_on_insert {
            self.ack_scalar(&pkt);
        }
        let src = pkt.src;
        self.arrivals.push_back(pkt);
        trace_event!(
            self.trace,
            self.now,
            self.node,
            EventKind::ScalarAccept { src }
        );
        true
    }

    /// Index of the first eligible pool packet, if any.
    fn pick_eligible(&self) -> Option<usize> {
        'outer: for (i, p) in self.pool.iter().enumerate() {
            // FIFO per destination: an earlier queued packet to the same
            // destination blocks this one (the rank unit's job).
            for q in self.pool.iter().take(i) {
                if q.dst == p.dst {
                    continue 'outer;
                }
            }
            if let Some(d) = &self.out_dialog {
                if d.peer == p.dst {
                    if d.exiting {
                        continue; // preserve order across the dialog close
                    }
                    if d.next_seq - d.acked < u64::from(d.window) {
                        return Some(i);
                    }
                    continue;
                }
            }
            // Scalar path.
            if !p.needs_ack {
                return Some(i); // §6.1 bypass: no OPT interaction
            }
            if self.opt_contains(p.dst) || self.opt.len() >= self.cfg.opt_entries as usize {
                continue;
            }
            return Some(i);
        }
        None
    }

    /// Builds the wire packet for pool entry `i` and records protocol
    /// state. Returns `None` when `i` is out of range (callers pass indices
    /// from [`Self::pick_eligible`], so this is a defensive no-op).
    fn launch(&mut self, i: usize) -> Option<Packet> {
        let out = self.pool.remove(i)?;
        let id = self.next_packet_id();
        let mut pkt = Packet::data(id, self.node, out.dst, out.size_words);
        pkt.user = out.user;
        pkt.stamp.created = self.now;

        // §6.1: carry a pending ack for this destination instead of sending
        // a standalone ack packet. No readiness check: the ack fields are
        // computed while the data packet serializes, which takes longer than
        // the NIFDY processing delay.
        let piggy = if self.cfg.piggyback_acks {
            self.ack_queue
                .iter()
                .position(|a| a.dst == out.dst)
                .and_then(|idx| self.ack_queue.remove(idx))
                .map(|a| {
                    self.stats.acks_piggybacked.incr();
                    a.info
                })
        } else {
            None
        };

        // Claim the bulk slot in one borrow: the dialog id and the next
        // sequence number are all the rest of the branch needs.
        let bulk_fields = match self.out_dialog.as_mut() {
            Some(d) if d.peer == out.dst && !d.exiting => {
                let seq = (d.next_seq % SEQ_SPACE) as u8;
                d.next_seq += 1;
                Some((d.dialog, seq))
            }
            _ => None,
        };
        if let Some((dialog, seq)) = bulk_fields {
            let exit = self.pool.iter().all(|q| q.dst != out.dst);
            pkt.wire = Wire::Data {
                bulk_request: false,
                bulk_exit: exit,
                bulk: Some(BulkTag { dialog, seq }),
                needs_ack: true,
                dup_bit: false,
                piggy_ack: piggy,
            };
            let wait = if self.cfg.retx_timeout.is_some() {
                Some(self.fresh_rto(out.dst))
            } else {
                None
            };
            if let Some(d) = self.out_dialog.as_mut() {
                if exit {
                    d.exiting = true;
                }
                if let Some(wait) = wait {
                    // The window admitted this send, and acked copies are
                    // pruned on ack receipt, so outstanding copies stay
                    // strictly under the window.
                    debug_assert!(d.copies.len() < usize::from(d.window));
                    d.copies.push_back(BulkCopy {
                        seq: d.next_seq - 1,
                        pkt: pkt.clone(),
                        first_sent: self.now,
                        last_sent: self.now,
                        retries: 0,
                        wait,
                    });
                }
            }
            self.stats.sent_bulk.incr();
            trace_event!(
                self.trace,
                self.now,
                self.node,
                EventKind::BulkSend {
                    dst: out.dst,
                    dialog,
                    seq,
                    exit,
                }
            );
        } else {
            let request = out.want_bulk
                && self.out_dialog.is_none()
                && self.bulk_request_pending.is_none()
                && !self.bulk_poisoned.contains(&out.dst)
                && self.backlog_for(out.dst, usize::MAX)
                    >= usize::from(self.cfg.bulk_request_min_backlog);
            let dup_bit = if self.cfg.retx_timeout.is_some() {
                let bit = self.alt_bits.entry(out.dst).or_insert(false);
                *bit = !*bit;
                *bit
            } else {
                false
            };
            pkt.wire = Wire::Data {
                bulk_request: request,
                bulk_exit: false,
                bulk: None,
                needs_ack: out.needs_ack,
                dup_bit,
                piggy_ack: piggy,
            };
            if out.needs_ack {
                let wait = self.fresh_rto(out.dst);
                self.opt.push(OptEntry {
                    dst: out.dst,
                    sent_at: self.now,
                    first_sent: self.now,
                    retries: 0,
                    wait,
                    dup_bit,
                    copy: self.cfg.retx_timeout.map(|_| pkt.clone()),
                });
                trace_event!(
                    self.trace,
                    self.now,
                    self.node,
                    EventKind::OptInsert {
                        dst: out.dst,
                        occupancy: self.opt.len() as u32,
                    }
                );
            }
            if request {
                self.bulk_request_pending = Some(out.dst);
                trace_event!(
                    self.trace,
                    self.now,
                    self.node,
                    EventKind::BulkRequest { dst: out.dst }
                );
            }
            trace_event!(
                self.trace,
                self.now,
                self.node,
                EventKind::ScalarSend {
                    dst: out.dst,
                    size_words: out.size_words,
                }
            );
        }
        self.stats.sent.incr();
        Some(pkt)
    }

    /// Fires retransmission timers (§6.2), applying the adaptive-RTO backoff,
    /// the bounded staging queue, and the retry budget.
    fn check_retx(&mut self) {
        if self.cfg.retx_timeout.is_none() {
            return;
        }
        let budget = self.cfg.retx_budget;
        let cap = self.cfg.retx_queue_cap as usize;

        // Scalar OPT entries.
        let mut i = 0;
        while i < self.opt.len() {
            if self.now.saturating_since(self.opt[i].sent_at) < self.opt[i].wait {
                i += 1;
                continue;
            }
            if budget.is_some_and(|b| self.opt[i].retries >= b) {
                let e = self.opt.swap_remove(i);
                self.fail_scalar(e);
                continue; // swap_remove moved a new entry into index i
            }
            if self.retx_queue.len() >= cap {
                // Timer state untouched: the firing is deferred, not lost,
                // and re-fires as soon as the staging queue drains.
                self.stats.retx_queue_overflow.incr();
                i += 1;
                continue;
            }
            if let Some(copy) = self.opt[i].copy.clone() {
                self.retx_queue.push_back(copy);
                self.stats.retransmitted.incr();
                let (dst, retries) = (self.opt[i].dst, self.opt[i].retries + 1);
                let wait = self.backoff_rto(dst, retries);
                trace_event!(
                    self.trace,
                    self.now,
                    self.node,
                    EventKind::Retransmit {
                        dst,
                        rto: wait,
                        retries,
                        bulk: false,
                        seq: 0,
                    }
                );
                let e = &mut self.opt[i];
                e.retries = retries;
                e.sent_at = self.now;
                e.wait = wait;
            } else {
                self.opt[i].sent_at = self.now;
            }
            i += 1;
        }

        // Bulk dialog copies; one exhausted copy tears the whole dialog down.
        if let Some(mut d) = self.out_dialog.take() {
            let peer = d.peer;
            let mut dead = false;
            for c in &mut d.copies {
                if self.now.saturating_since(c.last_sent) < c.wait {
                    continue;
                }
                if budget.is_some_and(|b| c.retries >= b) {
                    dead = true;
                    break;
                }
                if self.retx_queue.len() >= cap {
                    self.stats.retx_queue_overflow.incr();
                    continue;
                }
                self.retx_queue.push_back(c.pkt.clone());
                self.stats.retransmitted.incr();
                c.retries += 1;
                c.last_sent = self.now;
                c.wait = self.backoff_rto(peer, c.retries);
                trace_event!(
                    self.trace,
                    self.now,
                    self.node,
                    EventKind::Retransmit {
                        dst: peer,
                        rto: c.wait,
                        retries: c.retries,
                        bulk: true,
                        seq: (c.seq % SEQ_SPACE) as u8,
                    }
                );
            }
            if dead {
                self.teardown_dialog(d);
            } else {
                self.out_dialog = Some(d);
            }
        }
    }

    /// Abandons a scalar packet whose retry budget is exhausted.
    fn fail_scalar(&mut self, e: OptEntry) {
        self.stats.delivery_failures.incr();
        trace_event!(
            self.trace,
            self.now,
            self.node,
            EventKind::DeliveryFail {
                dst: e.dst,
                retries: e.retries,
            }
        );
        if self.bulk_request_pending == Some(e.dst) {
            // The abandoned packet carried the bulk request; release the
            // latch so later traffic isn't stuck awaiting a grant that will
            // never come.
            self.bulk_request_pending = None;
        }
        self.failures.push(DeliveryFailure {
            src: self.node,
            dst: e.dst,
            at: self.now,
            retries: e.retries,
            kind: FailureKind::Scalar,
            user: e.copy.as_ref().map(|p| p.user),
        });
    }

    /// Tears down the outgoing bulk dialog after budget exhaustion: surfaces
    /// a typed failure, downgrades the peer to scalar-only, and discards
    /// staged retransmissions of the dead dialog.
    fn teardown_dialog(&mut self, d: OutDialog) {
        self.stats.dialogs_torn_down.incr();
        self.stats.delivery_failures.incr();
        self.bulk_poisoned.insert(d.peer);
        let retries = d.copies.iter().map(|c| c.retries).max().unwrap_or(0);
        trace_event!(
            self.trace,
            self.now,
            self.node,
            EventKind::DialogClose {
                peer: d.peer,
                dialog: d.dialog,
                end: DialogEnd::TornDown,
            }
        );
        trace_event!(
            self.trace,
            self.now,
            self.node,
            EventKind::DeliveryFail {
                dst: d.peer,
                retries,
            }
        );
        self.failures.push(DeliveryFailure {
            src: self.node,
            dst: d.peer,
            at: self.now,
            retries,
            kind: FailureKind::BulkDialog {
                dialog: d.dialog,
                unacked: d.next_seq - d.acked,
            },
            user: None,
        });
        let peer = d.peer;
        self.retx_queue
            .retain(|p| !(p.dst == peer && matches!(p.wire, Wire::Data { bulk: Some(_), .. })));
    }

    /// Receiver-side garbage collection: a granted dialog whose sender has
    /// been silent longer than any retransmission schedule could span is
    /// reclaimed (the sender tore it down or failed), freeing the slot and
    /// letting the unit reach idle. Buffered out-of-order packets are lost —
    /// their gap can never be filled.
    fn reclaim_dialogs(&mut self) {
        let (Some(t), Some(budget)) = (self.cfg.retx_timeout, self.cfg.retx_budget) else {
            return;
        };
        let span = if self.cfg.adaptive_rto {
            self.cfg.rto_max
        } else {
            t
        };
        let limit = span.saturating_mul(u64::from(budget) + 4);
        for slot in 0..self.dialogs.len() {
            let Some(d) = &self.dialogs[slot] else {
                continue;
            };
            if self.now.saturating_since(d.last_activity) < limit {
                continue;
            }
            let peer = d.peer;
            let final_count = d.expected;
            self.stats.dialogs_reclaimed.incr();
            trace_event!(
                self.trace,
                self.now,
                self.node,
                EventKind::DialogClose {
                    peer,
                    dialog: slot as u8,
                    end: DialogEnd::Reclaimed,
                }
            );
            self.closed[slot] = Some(ClosedDialog {
                peer,
                final_count,
                until: self.now + 4 * span,
            });
            self.dialogs[slot] = None;
            self.peer_dialog.remove(&peer);
        }
    }

    /// Discards all protocol state entangled with `peer` after learning the
    /// peer's interface restarted (a supervision layer detects the new
    /// incarnation, e.g. via heartbeat epochs, and calls this).
    ///
    /// A restarted peer forgot every grant, sequence number, and duplicate
    /// bit it ever exchanged with us, so state on our side referring to the
    /// old incarnation is not just stale but *hazardous*:
    ///
    /// * an outgoing bulk dialog's sequence numbers are meaningless to the
    ///   new incarnation — the dialog is torn down (unacked packets surface
    ///   as a typed [`DeliveryFailure`](crate::DeliveryFailure)), but the
    ///   peer is *not* left bulk-poisoned: unlike a budget teardown, the
    ///   receiver's slot state is gone too, so a fresh handshake can
    ///   resynchronize;
    /// * a granted incoming dialog will never see its remaining packets —
    ///   the slot is freed immediately, without the usual tombstone (no old
    ///   incarnation survives to retransmit the tail);
    /// * remembered receive-side duplicate bits would silently swallow the
    ///   new incarnation's first packet as a "retransmission" — cleared;
    /// * queued acks toward the dead incarnation are dropped.
    ///
    /// Scalar packets in flight to `peer` are left in the OPT on purpose:
    /// the §6.2 retransmission machinery re-sends them and the fresh
    /// incarnation accepts them as new inserts, so they self-heal.
    pub fn reset_peer(&mut self, peer: NodeId) {
        // Sender side: tear down the outgoing dialog, then lift the
        // poison — the peer's slate is clean, a new dialog can work.
        if let Some(d) = self.out_dialog.take_if(|d| d.peer == peer) {
            self.teardown_dialog(d);
        }
        self.bulk_poisoned.remove(&peer);
        if self.bulk_request_pending == Some(peer) {
            // The grant this latch awaits died with the old incarnation.
            self.bulk_request_pending = None;
        }

        // Receiver side: free the granted slot without a tombstone.
        if let Some(slot) = self.peer_dialog.remove(&peer).map(usize::from) {
            if self
                .dialogs
                .get(slot)
                .is_some_and(|d| d.as_ref().is_some_and(|d| d.peer == peer))
            {
                self.stats.dialogs_reclaimed.incr();
                trace_event!(
                    self.trace,
                    self.now,
                    self.node,
                    EventKind::DialogClose {
                        peer,
                        dialog: slot as u8,
                        end: DialogEnd::Reclaimed,
                    }
                );
                if let Some(d) = self.dialogs.get_mut(slot) {
                    *d = None;
                }
            }
        }
        for c in self.closed.iter_mut() {
            if c.is_some_and(|c| c.peer == peer) {
                *c = None;
            }
        }
        self.last_insert_bit.remove(&peer);
        self.last_acked_bit.remove(&peer);
        self.ack_queue.retain(|a| a.dst != peer);
        self.ack_delay.retain(|(_, dst, _)| *dst != peer);
        self.wake_stale = true;
    }

    /// Derives the unit's [`Wakeup`] from its real protocol deadlines.
    ///
    /// `Now` conditions are states in which a step performs observable
    /// work with no timer involved: staged retransmissions awaiting a free
    /// lane, launchable (or newly stalled) pool packets, and in-order bulk
    /// packets ready to stream to the arrivals FIFO. Everything else is a
    /// stored deadline: the ack processing delay line, standalone-ack
    /// readiness (including the §6.1 piggyback hold), §6.2 retransmission
    /// timers, and the receiver-side dialog reclaim horizon.
    ///
    /// States with *no* wakeup are the reactive ones: packets outstanding
    /// in the OPT without timers, a pending bulk request, arrivals awaiting
    /// the processor's poll, and closed-dialog tombstones (checked lazily
    /// on the next grant decision) — each advances only when new input
    /// arrives through the driver, which re-queries `next_event` after
    /// delivering it.
    fn compute_wakeup(&self, now: Cycle) -> Wakeup {
        if !self.retx_queue.is_empty() {
            return Wakeup::Now;
        }
        // Pool work: something launchable — or a stall episode still to be
        // latched (the edge-triggered EligStall trace event is observable).
        if !self.pool.is_empty() && (!self.elig_stalled || self.pick_eligible().is_some()) {
            return Wakeup::Now;
        }
        for d in self.dialogs.iter().flatten() {
            if d.buf.contains_key(&d.expected) {
                return Wakeup::Now;
            }
        }
        let mut wake = Wakeup::Quiescent;
        // The delay line is pushed in ready order (arrival cycle plus a
        // constant), so the front is the earliest entry.
        if let Some((ready, _, _)) = self.ack_delay.front() {
            wake = wake.earliest(Wakeup::at_or_now(*ready, now));
        }
        let hold = self.cfg.piggyback_hold_cycles;
        for a in &self.ack_queue {
            let held = self.cfg.piggyback_acks && self.pool.iter().any(|p| p.dst == a.dst);
            let at = if held { a.ready_at + hold } else { a.ready_at };
            wake = wake.earliest(Wakeup::at_or_now(at, now));
        }
        // §6.2 timers exist only with a timeout configured (`check_retx`
        // returns early otherwise, so zero `wait` fields never mean "due").
        if let Some(t) = self.cfg.retx_timeout {
            for e in &self.opt {
                wake = wake.earliest(Wakeup::at_or_now(e.sent_at + e.wait, now));
            }
            if let Some(d) = &self.out_dialog {
                for c in &d.copies {
                    wake = wake.earliest(Wakeup::at_or_now(c.last_sent + c.wait, now));
                }
            }
            if let Some(budget) = self.cfg.retx_budget {
                let span = if self.cfg.adaptive_rto {
                    self.cfg.rto_max
                } else {
                    t
                };
                let limit = span.saturating_mul(u64::from(budget) + 4);
                for d in self.dialogs.iter().flatten() {
                    wake = wake.earliest(Wakeup::at_or_now(d.last_activity + limit, now));
                }
            }
        }
        wake
    }
}

impl Nic for NifdyUnit {
    fn node(&self) -> NodeId {
        self.node
    }

    fn try_send(&mut self, pkt: OutboundPacket, now: Cycle) -> bool {
        let _ = now;
        if self.pool.len() >= self.cfg.pool_entries as usize {
            self.stats.send_rejected.incr();
            return false;
        }
        self.pool.push_back(pkt);
        self.wake_stale = true;
        true
    }

    fn has_deliverable(&self) -> bool {
        !self.arrivals.is_empty()
    }

    fn poll(&mut self, now: Cycle) -> Option<Delivered> {
        self.now = now;
        let pkt = self.arrivals.pop_front()?;
        // Freed arrivals space (and a possibly queued ack below) can move
        // the next wakeup earlier.
        self.wake_stale = true;
        let is_scalar = matches!(pkt.wire, Wire::Data { bulk: None, .. });
        if is_scalar && !self.cfg.ack_on_insert {
            self.ack_scalar(&pkt);
        }
        self.stats.delivered.incr();
        Some(Delivered {
            src: pkt.src,
            size_words: pkt.size_words,
            user: pkt.user,
        })
    }

    fn step(&mut self, fab: &mut dyn NetPort) {
        self.now = fab.now();

        // 0. Sparse stepping: when the cached wakeup says this cycle is a
        //    no-op and the fabric has nothing to eject for this node, skip
        //    the whole body. The cache is recomputed at the end of every
        //    full step and marked stale by every out-of-step mutation
        //    (`try_send`, `poll`, `reset_peer`), so the early-out is
        //    behaviour-preserving — verified differentially in the tests.
        if self.wake_cache_enabled
            && !self.wake_stale
            && !self.next_wake.is_due(self.now)
            && fab.peek_eject(self.node, Lane::Reply).is_none()
            && fab.peek_eject(self.node, Lane::Request).is_none()
        {
            return;
        }

        // 1. Consume acknowledgments (reply lane) through the processing
        //    delay line.
        while let Some(ack) = fab.eject(self.node, Lane::Reply) {
            let ready = self.now + u64::from(self.cfg.ack_proc_cycles);
            if let Wire::Ack(info) = ack.wire {
                self.ack_delay.push_back((ready, ack.src, info));
            }
        }
        while self
            .ack_delay
            .front()
            .is_some_and(|(r, _, _)| *r <= self.now)
        {
            let Some((_, from, info)) = self.ack_delay.pop_front() else {
                break;
            };
            self.handle_ack(from, info);
        }

        // 2. Pull data packets from the fabric.
        #[allow(clippy::while_let_loop)] // scalar branch breaks on backpressure
        loop {
            let Some(peek) = fab.peek_eject(self.node, Lane::Request) else {
                break;
            };
            match peek.wire {
                Wire::Data { bulk: Some(_), .. } => {
                    let Some(pkt) = fab.eject(self.node, Lane::Request) else {
                        debug_assert!(false, "peeked packet vanished");
                        break;
                    };
                    let Wire::Data {
                        bulk: Some(tag),
                        piggy_ack,
                        ..
                    } = pkt.wire
                    else {
                        // Peek promised a bulk data packet; drop the impostor.
                        debug_assert!(false, "peek/eject disagree on the packet");
                        continue;
                    };
                    if let Some(info) = piggy_ack {
                        let ready = self.now + u64::from(self.cfg.ack_proc_cycles);
                        // Bulk headers have no source bits (§3): name the
                        // sender from the dialog slot, falling back to the
                        // carried field for unknown slots (the ack is then
                        // ignored by `handle_ack` anyway).
                        let from = self.dialog_peer(tag.dialog as usize).unwrap_or(pkt.src);
                        self.ack_delay.push_back((ready, from, info));
                    }
                    self.receive_bulk(pkt, tag);
                }
                Wire::Data { bulk: None, .. } => {
                    if self.arrivals.len() >= self.cfg.arrivals_capacity as usize {
                        break; // backpressure into the fabric
                    }
                    let Some(pkt) = fab.eject(self.node, Lane::Request) else {
                        debug_assert!(false, "peeked packet vanished");
                        break;
                    };
                    if let Wire::Data {
                        piggy_ack: Some(info),
                        ..
                    } = pkt.wire
                    {
                        let ready = self.now + u64::from(self.cfg.ack_proc_cycles);
                        self.ack_delay.push_back((ready, pkt.src, info));
                    }
                    let accepted = self.receive_scalar(pkt);
                    debug_assert!(accepted, "space was checked");
                }
                Wire::Ack(_) => {
                    // Acks never travel on the request lane.
                    let _ = fab.eject(self.node, Lane::Request);
                    debug_assert!(false, "ack on request lane");
                }
            }
        }

        // 3. Stream reorder buffers to the processor FIFO, emitting window
        //    acks.
        self.drain_dialogs();

        // 4. Retransmission timers and the receiver-side reclaim watchdog.
        self.check_retx();
        self.reclaim_dialogs();

        // 5. Inject one standalone ack if the reply lane is free. With §6.1
        //    piggybacking, an ack whose destination has reverse data queued
        //    is held (briefly) so `launch` can carry it for free.
        if fab.can_inject(self.node, Lane::Reply) {
            let hold = self.cfg.piggyback_hold_cycles;
            let idx = self.ack_queue.iter().position(|a| {
                if a.ready_at > self.now {
                    return false;
                }
                if !self.cfg.piggyback_acks {
                    return true;
                }
                let reverse_data = self.pool.iter().any(|p| p.dst == a.dst);
                !reverse_data || self.now.saturating_since(a.ready_at) >= hold
            });
            if let Some(a) = idx.and_then(|idx| self.ack_queue.remove(idx)) {
                let id = self.next_packet_id();
                let ack = Packet::ack(id, self.node, a.dst, a.info);
                fab.inject(self.node, ack);
                self.stats.acks_sent.incr();
                trace_event!(
                    self.trace,
                    self.now,
                    self.node,
                    EventKind::AckSend { dst: a.dst }
                );
            }
        }

        // 6. Inject one data packet if the request lane is free:
        //    retransmissions first, then the first eligible pool packet.
        if fab.can_inject(self.node, Lane::Request) {
            if let Some(copy) = self.retx_queue.pop_front() {
                fab.inject(self.node, copy);
                self.elig_stalled = false;
            } else if let Some(pkt) = self.pick_eligible().and_then(|i| self.launch(i)) {
                fab.inject(self.node, pkt);
                self.elig_stalled = false;
            } else if !self.pool.is_empty() {
                // Buffered work exists but nothing may launch: every queued
                // destination is blocked by the OPT or an exhausted window.
                // Edge-triggered (one event per stall episode) so a long
                // stall cannot flood the flight recorder and evict the
                // history that explains it.
                if !self.elig_stalled {
                    self.elig_stalled = true;
                    trace_event!(
                        self.trace,
                        self.now,
                        self.node,
                        EventKind::EligStall {
                            pool: self.pool.len() as u32,
                            opt: self.opt.len() as u32,
                        }
                    );
                }
            } else {
                self.elig_stalled = false;
            }
        }

        // 7. Refresh the wakeup cache from the post-step protocol state.
        self.next_wake = self.compute_wakeup(self.now);
        self.wake_stale = false;
    }

    fn is_idle(&self) -> bool {
        self.pool.is_empty()
            && self.retx_queue.is_empty()
            && self.ack_queue.is_empty()
            && self.ack_delay.is_empty()
            && self.opt.is_empty()
            && self.out_dialog.is_none()
            && self.arrivals.is_empty()
            && self.dialogs.iter().all(|d| d.is_none())
    }

    fn next_event(&self, now: Cycle) -> Wakeup {
        if self.wake_stale {
            self.compute_wakeup(now)
        } else {
            self.next_wake
        }
    }

    fn stats(&self) -> &NicStats {
        &self.stats
    }

    fn take_failures(&mut self) -> Vec<DeliveryFailure> {
        std::mem::take(&mut self.failures)
    }

    fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    fn occupancy(&self) -> NicOccupancy {
        NicOccupancy {
            pool: self.pool.len() as u32,
            opt: self.opt.len() as u32,
            retx_queue: self.retx_queue.len() as u32,
            window_outstanding: self
                .out_dialog
                .as_ref()
                .map(|d| d.next_seq - d.acked)
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nifdy_net::topology::Mesh;
    use nifdy_net::{Fabric, FabricConfig, UserData};

    fn unit(cfg: NifdyConfig) -> NifdyUnit {
        NifdyUnit::new(NodeId::new(0), cfg)
    }

    /// Test shorthand for the four headline parameters; panics on invalid
    /// combinations, which is what a test wants.
    fn params(o: u8, b: u8, d: u8, w: u8) -> NifdyConfig {
        NifdyConfig::builder()
            .opt_entries(o)
            .pool_entries(b)
            .max_dialogs(d)
            .window(w)
            .build()
            .expect("test parameters must be valid")
    }

    fn fabric() -> Fabric {
        Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default())
    }

    #[test]
    fn grant_is_idempotent_for_the_same_peer() {
        let mut u = unit(params(4, 4, 2, 4));
        let peer = NodeId::new(3);
        let g1 = u.decide_grant(true, peer);
        let g2 = u.decide_grant(true, peer);
        assert_eq!(g1, g2, "duplicate requests must re-grant the same slot");
        match g1 {
            BulkGrant::Granted { window, .. } => assert_eq!(window, 4),
            other => panic!("expected grant, got {other:?}"),
        }
        assert_eq!(u.stats.dialogs_granted.get(), 1, "only one real grant");
    }

    #[test]
    fn grants_stop_at_the_dialog_limit() {
        let mut u = unit(params(4, 4, 2, 4));
        assert!(matches!(
            u.decide_grant(true, NodeId::new(1)),
            BulkGrant::Granted { .. }
        ));
        assert!(matches!(
            u.decide_grant(true, NodeId::new(2)),
            BulkGrant::Granted { .. }
        ));
        assert_eq!(u.decide_grant(true, NodeId::new(3)), BulkGrant::Rejected);
        assert_eq!(
            u.decide_grant(false, NodeId::new(4)),
            BulkGrant::NotRequested
        );
    }

    #[test]
    fn bulk_ack_reconstruction_handles_wraparound() {
        let mut u = unit(params(4, 4, 1, 8));
        let peer = NodeId::new(2);
        u.out_dialog = Some(OutDialog {
            peer,
            dialog: 0,
            window: 8,
            next_seq: 300, // past the 256-value wire space
            acked: 252,
            exiting: false,
            copies: VecDeque::new(),
        });
        // Receiver acks through absolute 259: wire residue (259 - 1) % 256 = 2.
        u.handle_ack(
            peer,
            AckInfo::Bulk {
                dialog: 0,
                cum_seq: 2,
                terminate: false,
            },
        );
        assert_eq!(u.out_dialog.as_ref().expect("open").acked, 259);
        // A stale ack (older residue) must be ignored, not regress.
        u.handle_ack(
            peer,
            AckInfo::Bulk {
                dialog: 0,
                cum_seq: 250,
                terminate: false,
            },
        );
        assert_eq!(u.out_dialog.as_ref().expect("open").acked, 259);
    }

    #[test]
    fn bulk_ack_never_acknowledges_unsent_packets() {
        let mut u = unit(params(4, 4, 1, 8));
        let peer = NodeId::new(2);
        u.out_dialog = Some(OutDialog {
            peer,
            dialog: 0,
            window: 8,
            next_seq: 4,
            acked: 0,
            exiting: false,
            copies: VecDeque::new(),
        });
        // cum 9 would mean 10 delivered > 4 sent: bogus, ignored.
        u.handle_ack(
            peer,
            AckInfo::Bulk {
                dialog: 0,
                cum_seq: 9,
                terminate: false,
            },
        );
        assert_eq!(u.out_dialog.as_ref().expect("open").acked, 0);
    }

    #[test]
    fn exiting_dialog_closes_on_final_ack() {
        let mut u = unit(params(4, 4, 1, 4));
        let peer = NodeId::new(1);
        u.out_dialog = Some(OutDialog {
            peer,
            dialog: 0,
            window: 4,
            next_seq: 10,
            acked: 8,
            exiting: true,
            copies: VecDeque::new(),
        });
        u.handle_ack(
            peer,
            AckInfo::Bulk {
                dialog: 0,
                cum_seq: 9,
                terminate: false,
            },
        );
        assert!(
            u.out_dialog.is_none(),
            "dialog must close after the exit ack"
        );
    }

    #[test]
    fn scalar_ack_clears_exactly_one_opt_entry() {
        let mut u = unit(NifdyConfig::mesh());
        u.opt.push(OptEntry {
            dst: NodeId::new(1),
            sent_at: Cycle::ZERO,
            first_sent: Cycle::ZERO,
            retries: 0,
            wait: 0,
            dup_bit: false,
            copy: None,
        });
        u.opt.push(OptEntry {
            dst: NodeId::new(2),
            sent_at: Cycle::ZERO,
            first_sent: Cycle::ZERO,
            retries: 0,
            wait: 0,
            dup_bit: false,
            copy: None,
        });
        u.handle_ack(
            NodeId::new(1),
            AckInfo::Scalar {
                grant: BulkGrant::NotRequested,
                echo: false,
            },
        );
        assert_eq!(u.opt_occupancy(), 1);
        assert_eq!(u.opt[0].dst, NodeId::new(2));
        // A stale duplicate ack is harmless.
        u.handle_ack(
            NodeId::new(1),
            AckInfo::Scalar {
                grant: BulkGrant::NotRequested,
                echo: false,
            },
        );
        assert_eq!(u.opt_occupancy(), 1);
    }

    #[test]
    fn out_of_window_bulk_arrivals_are_dropped_and_reacked() {
        let mut u = unit(params(4, 4, 1, 4));
        let peer = NodeId::new(3);
        let grant = u.decide_grant(true, peer);
        let BulkGrant::Granted { dialog, .. } = grant else {
            panic!("grant expected");
        };
        // Deliver packet 0 in order.
        let mk = |seq: u8| {
            let mut p = Packet::data(PacketId::new(1), peer, NodeId::new(0), 8);
            p.wire = Wire::Data {
                bulk_request: false,
                bulk_exit: false,
                bulk: Some(BulkTag { dialog, seq }),
                needs_ack: true,
                dup_bit: false,
                piggy_ack: None,
            };
            p.user = UserData::default();
            p
        };
        u.receive_bulk(mk(0), BulkTag { dialog, seq: 0 });
        u.drain_dialogs();
        assert_eq!(u.arrivals.len(), 1);
        // A duplicate of seq 0 (now below the window) is discarded and the
        // cumulative ack refreshed.
        let acks_before = u.ack_queue.len();
        u.receive_bulk(mk(0), BulkTag { dialog, seq: 0 });
        assert_eq!(u.arrivals.len(), 1, "duplicate delivered");
        assert_eq!(u.stats.duplicates_dropped.get(), 1);
        assert!(u.ack_queue.len() > acks_before, "no re-ack queued");
    }

    #[test]
    fn pool_rejects_when_full_and_counts_it() {
        let mut u = unit(params(2, 2, 0, 2));
        let now = Cycle::ZERO;
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), now));
        assert!(u.try_send(OutboundPacket::new(NodeId::new(2), 8), now));
        assert!(!u.try_send(OutboundPacket::new(NodeId::new(3), 8), now));
        assert_eq!(u.stats().send_rejected.get(), 1);
    }

    #[test]
    fn eligibility_respects_fifo_per_destination() {
        let mut u = unit(params(4, 4, 0, 2));
        let now = Cycle::ZERO;
        // Two packets to node 1, one to node 2.
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), now));
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), now));
        assert!(u.try_send(OutboundPacket::new(NodeId::new(2), 8), now));
        // First eligible is pool[0] (first to node 1).
        assert_eq!(u.pick_eligible(), Some(0));
        // Simulate launching it: node 1 now outstanding.
        let pkt = u.launch(0).expect("index in range");
        assert_eq!(pkt.dst, NodeId::new(1));
        // The second node-1 packet is blocked; node 2 is next eligible.
        let idx = u.pick_eligible().expect("node 2 eligible");
        assert_eq!(u.pool[idx].dst, NodeId::new(2));
    }

    #[test]
    fn no_ack_packets_are_always_eligible() {
        let mut u = unit(params(1, 4, 0, 2));
        let now = Cycle::ZERO;
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), now));
        let _ = u.launch(u.pick_eligible().expect("first"));
        // OPT (size 1) is now full; an acked packet to node 2 is blocked...
        assert!(u.try_send(OutboundPacket::new(NodeId::new(2), 8), now));
        assert_eq!(u.pick_eligible(), None);
        // ...but a no-ack packet bypasses the OPT entirely.
        let mut p = OutboundPacket::new(NodeId::new(3), 8);
        p.needs_ack = false;
        assert!(u.try_send(p, now));
        let idx = u.pick_eligible().expect("bypass eligible");
        assert_eq!(u.pool[idx].dst, NodeId::new(3));
    }

    #[test]
    fn adaptive_rto_tracks_acked_round_trips() {
        let mut u = unit(
            NifdyConfig::mesh()
                .with_retx_timeout(2_500)
                .with_adaptive_rto(true),
        );
        let dst = NodeId::new(1);
        assert_eq!(u.fresh_rto(dst), 2_500, "no samples yet: initial RTO");
        assert!(u.try_send(OutboundPacket::new(dst, 8), Cycle::ZERO));
        let _ = u.launch(u.pick_eligible().expect("eligible"));
        u.now = Cycle::new(80);
        u.handle_ack(
            dst,
            AckInfo::Scalar {
                grant: BulkGrant::NotRequested,
                echo: true,
            },
        );
        assert_eq!(u.srtt(dst), Some(80));
        // rto = srtt + 4·rttvar = 80 + 4·40, within [rto_min, rto_max].
        assert_eq!(u.fresh_rto(dst), 240);
    }

    #[test]
    fn retransmitted_packets_do_not_feed_the_estimator() {
        // Karn's rule: an ack for a retransmitted packet is ambiguous.
        let mut u = unit(
            NifdyConfig::mesh()
                .with_retx_timeout(10)
                .with_adaptive_rto(true),
        );
        let dst = NodeId::new(1);
        assert!(u.try_send(OutboundPacket::new(dst, 8), Cycle::ZERO));
        let _ = u.launch(u.pick_eligible().expect("eligible"));
        u.now = Cycle::new(10);
        u.check_retx();
        assert_eq!(u.stats.retransmitted.get(), 1);
        u.now = Cycle::new(5_000);
        u.handle_ack(
            dst,
            AckInfo::Scalar {
                grant: BulkGrant::NotRequested,
                echo: true,
            },
        );
        assert_eq!(u.srtt(dst), None, "ambiguous sample must be discarded");
    }

    #[test]
    fn adaptive_backoff_grows_exponentially_to_the_cap() {
        let mut u = unit(
            NifdyConfig::mesh()
                .with_retx_timeout(100)
                .with_adaptive_rto(true)
                .with_rto_bounds(32, 1_000),
        );
        let dst = NodeId::new(1);
        let w1 = u.backoff_rto(dst, 1);
        assert!((200..=225).contains(&w1), "doubled plus jitter, got {w1}");
        let w9 = u.backoff_rto(dst, 9);
        assert!(
            (1_000..=1_125).contains(&w9),
            "capped at rto_max plus jitter, got {w9}"
        );
    }

    #[test]
    fn scalar_retry_budget_surfaces_a_typed_failure() {
        let mut u = unit(
            NifdyConfig::mesh()
                .with_retx_timeout(10)
                .with_retx_budget(2),
        );
        let dst = NodeId::new(2);
        assert!(u.try_send(OutboundPacket::new(dst, 8), Cycle::ZERO));
        let _ = u.launch(u.pick_eligible().expect("eligible"));
        for t in 1..=100u64 {
            u.now = Cycle::new(t * 10);
            u.check_retx();
        }
        assert_eq!(u.opt_occupancy(), 0, "entry abandoned, not retried forever");
        assert_eq!(u.stats.retransmitted.get(), 2, "budget bounds the retries");
        assert_eq!(u.stats.delivery_failures.get(), 1);
        let failures = u.take_failures();
        assert_eq!(failures.len(), 1);
        let f = failures[0];
        assert_eq!((f.dst, f.retries, f.kind), (dst, 2, FailureKind::Scalar));
        assert!(
            f.user.is_some(),
            "payload annotation travels with the failure"
        );
        assert!(u.take_failures().is_empty(), "failures drain exactly once");
    }

    #[test]
    fn bulk_budget_exhaustion_tears_down_and_poisons() {
        let mut u = unit(params(4, 4, 1, 4).with_retx_timeout(10).with_retx_budget(1));
        let peer = NodeId::new(3);
        let mut pkt = Packet::data(PacketId::new(9), NodeId::new(0), peer, 8);
        pkt.wire = Wire::Data {
            bulk_request: false,
            bulk_exit: false,
            bulk: Some(BulkTag { dialog: 0, seq: 1 }),
            needs_ack: true,
            dup_bit: false,
            piggy_ack: None,
        };
        u.out_dialog = Some(OutDialog {
            peer,
            dialog: 0,
            window: 4,
            next_seq: 3,
            acked: 1,
            exiting: false,
            copies: VecDeque::from([BulkCopy {
                seq: 1,
                pkt,
                first_sent: Cycle::ZERO,
                last_sent: Cycle::ZERO,
                retries: 1,
                wait: 10,
            }]),
        });
        u.now = Cycle::new(50);
        u.check_retx();
        assert!(u.out_dialog.is_none(), "dialog torn down");
        assert!(u.bulk_poisoned(peer), "peer downgraded to scalar-only");
        assert_eq!(u.stats.dialogs_torn_down.get(), 1);
        let failures = u.take_failures();
        assert_eq!(
            failures[0].kind,
            FailureKind::BulkDialog {
                dialog: 0,
                unacked: 2
            }
        );
    }

    #[test]
    fn poisoned_peers_fall_back_to_scalar() {
        let mut u = unit(params(8, 8, 1, 4).with_retx_timeout(10).with_retx_budget(1));
        let dst = NodeId::new(2);
        u.bulk_poisoned.insert(dst);
        for _ in 0..4 {
            assert!(u.try_send(OutboundPacket::new(dst, 8).with_bulk(true), Cycle::ZERO));
        }
        let pkt = u
            .launch(u.pick_eligible().expect("eligible"))
            .expect("index in range");
        assert!(
            matches!(
                pkt.wire,
                Wire::Data {
                    bulk_request: false,
                    ..
                }
            ),
            "poisoned peer must not be asked for a new dialog"
        );
        assert!(u.bulk_request_pending.is_none());
    }

    #[test]
    fn staging_queue_bound_defers_timer_firings() {
        let mut u = unit(
            NifdyConfig::mesh()
                .with_retx_timeout(10)
                .with_retx_queue_cap(1),
        );
        let mk = |n: usize| OptEntry {
            dst: NodeId::new(n),
            sent_at: Cycle::ZERO,
            first_sent: Cycle::ZERO,
            retries: 0,
            wait: 10,
            dup_bit: false,
            copy: Some(Packet::data(
                PacketId::new(n as u64),
                NodeId::new(0),
                NodeId::new(n),
                8,
            )),
        };
        u.opt.push(mk(1));
        u.opt.push(mk(2));
        u.now = Cycle::new(20);
        u.check_retx();
        assert_eq!(u.retx_queue.len(), 1, "cap enforced");
        assert_eq!(u.stats.retx_queue_overflow.get(), 1);
        let deferred = u.opt.iter().find(|e| e.retries == 0).expect("deferred");
        assert_eq!(deferred.sent_at, Cycle::ZERO, "deferred firing keeps state");
        // Once the queue drains, the deferred entry fires immediately.
        u.retx_queue.clear();
        u.check_retx();
        assert_eq!(u.stats.retransmitted.get(), 2);
    }

    #[test]
    fn silent_granted_dialog_is_reclaimed() {
        let mut u = unit(params(4, 4, 1, 4).with_retx_timeout(10).with_retx_budget(2));
        let peer = NodeId::new(3);
        assert!(matches!(
            u.decide_grant(true, peer),
            BulkGrant::Granted { .. }
        ));
        assert!(!u.is_idle(), "granted slot keeps the unit busy");
        u.now = Cycle::new(10 * (2 + 4)); // span · (budget + 4)
        u.reclaim_dialogs();
        assert!(u.dialogs.iter().all(|d| d.is_none()), "slot reclaimed");
        assert_eq!(u.stats.dialogs_reclaimed.get(), 1);
        assert!(u.closed[0].is_some(), "tombstone left for late duplicates");
        assert!(u.is_idle());
    }

    #[test]
    fn is_idle_reflects_every_queue() {
        let mut fab = fabric();
        let mut u = unit(NifdyConfig::mesh());
        assert!(u.is_idle());
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), fab.now()));
        assert!(!u.is_idle(), "pool occupancy must show");
        u.step(&mut fab);
        assert!(!u.is_idle(), "outstanding OPT entry must show");
    }

    #[test]
    fn next_event_is_quiescent_only_when_nothing_can_happen() {
        let u = unit(NifdyConfig::mesh());
        assert_eq!(u.next_event(Cycle::ZERO), Wakeup::Quiescent);
        // Pool work is immediate.
        let mut u = unit(NifdyConfig::mesh());
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), Cycle::ZERO));
        assert_eq!(u.next_event(Cycle::ZERO), Wakeup::Now);
        // A packet outstanding in the OPT without timers is purely
        // reactive: the unit waits on the fabric, not on a clock.
        let mut u = unit(NifdyConfig::mesh());
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), Cycle::ZERO));
        let mut fab = fabric();
        u.step(&mut fab);
        assert_eq!(u.opt_occupancy(), 1);
        assert_eq!(u.next_event(fab.now()), Wakeup::Quiescent);
    }

    #[test]
    fn next_event_exposes_retransmission_deadlines() {
        let mut u = unit(NifdyConfig::mesh().with_retx_timeout(500));
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), Cycle::ZERO));
        let _ = u.launch(u.pick_eligible().expect("eligible"));
        assert_eq!(
            u.next_event(Cycle::ZERO),
            Wakeup::At(Cycle::new(500)),
            "the OPT timer is the only pending deadline"
        );
        assert_eq!(
            u.next_event(Cycle::new(500)),
            Wakeup::Now,
            "a due deadline collapses to Now"
        );
    }

    #[test]
    fn next_event_exposes_ack_processing_deadlines() {
        let mut u = unit(NifdyConfig::mesh());
        u.now = Cycle::new(100);
        u.queue_ack(
            NodeId::new(2),
            AckInfo::Scalar {
                grant: BulkGrant::NotRequested,
                echo: false,
            },
        );
        u.wake_stale = true;
        let ready = Cycle::new(100 + u64::from(u.cfg.ack_proc_cycles));
        assert_eq!(u.next_event(Cycle::new(100)), Wakeup::At(ready));
    }

    #[test]
    fn next_event_latched_stall_waits_for_an_ack() {
        // OPT of one, two destinations queued: after the first launch the
        // second pool packet is blocked, and once the stall episode is
        // latched the unit has no self-driven work left.
        let mut u = unit(params(1, 4, 0, 2));
        let mut fab = fabric();
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), fab.now()));
        assert!(u.try_send(OutboundPacket::new(NodeId::new(2), 8), fab.now()));
        u.step(&mut fab); // launches the first packet
        assert_eq!(
            u.next_event(fab.now()),
            Wakeup::Now,
            "stall episode not latched yet: the trace event is still owed"
        );
        for _ in 0..100 {
            fab.step();
            u.step(&mut fab);
            if u.elig_stalled {
                break;
            }
        }
        assert!(u.elig_stalled, "stall episode latches once the lane frees");
        assert_eq!(u.next_event(fab.now()), Wakeup::Quiescent);
    }

    #[test]
    fn wakeup_cache_early_out_is_behaviour_preserving() {
        // Two identical 4-node replicas under a scripted random workload,
        // one with the sparse-stepping cache disabled. Every delivery (and
        // its cycle) plus the final counters must match exactly.
        let run = |cache: bool| {
            let cfg = NifdyConfig::mesh()
                .with_retx_timeout(400)
                .with_adaptive_rto(true)
                .with_retx_budget(6);
            let mut fab = fabric();
            let mut units: Vec<NifdyUnit> = (0..4usize)
                .map(|n| {
                    let mut u = NifdyUnit::new(NodeId::new(n), cfg.clone());
                    u.wake_cache_enabled = cache;
                    u
                })
                .collect();
            let mut rng = SimRng::from_seed_stream(7, 0);
            let mut deliveries: Vec<(u64, usize, usize)> = Vec::new();
            for t in 0..8_000u64 {
                if t % 61 == 0 {
                    let src = rng.gen_range_u64(0..4) as usize;
                    let dst = (src + 1 + rng.gen_range_u64(0..3) as usize) % 4;
                    let _ = units[src].try_send(
                        OutboundPacket::new(NodeId::new(dst), 8).with_bulk(t % 183 == 0),
                        fab.now(),
                    );
                }
                for u in units.iter_mut() {
                    u.step(&mut fab);
                }
                fab.step();
                for (n, u) in units.iter_mut().enumerate() {
                    if let Some(d) = u.poll(fab.now()) {
                        deliveries.push((fab.now().as_u64(), n, d.src.index()));
                    }
                }
            }
            let fps: Vec<u64> = units
                .iter()
                .map(|u| u.stats().progress_fingerprint())
                .collect();
            (deliveries, fps)
        };
        assert_eq!(run(true), run(false));
    }
}
