//! The NIFDY unit: admission control and in-order delivery at the network
//! edge.
//!
//! Protocol summary (§2 of the paper):
//!
//! * **Scalar mode.** At most one unacknowledged packet per destination.
//!   Destinations with an outstanding packet are held in the *outstanding
//!   packet table* (OPT, `O` entries). Outbound packets wait in a pool of
//!   `B` buffers; a packet is *eligible* when no earlier packet to the same
//!   destination is waiting or outstanding (the paper's rank/eligibility
//!   unit, realized here as FIFO-per-destination ordering — observably
//!   identical behaviour).
//! * **Bulk dialogs.** A sender piggybacks a bulk request on a scalar
//!   packet; the receiver grants at most `D` dialogs, each with `W` reorder
//!   buffers. Bulk packets carry `{seq, dialog}`; in-order packets stream
//!   through, out-of-order ones wait in the window. One combined ack per
//!   `W/2` delivered packets. The sender exits by flagging the last packet.
//! * **Acks** travel on the reply network and are consumed by the NIFDY
//!   unit. Scalar packets are acked when the processor *accepts* them
//!   (footnote 2's ack-on-insert variant is available for ablation).
//! * **§6.2 extension.** With a retransmission timeout configured, the unit
//!   keeps a copy and a timer per outstanding packet, retransmits on
//!   timeout, and receivers discard duplicates via an alternating header bit
//!   (scalar) or the window sequence numbers (bulk).

use std::collections::{BTreeMap, HashMap, VecDeque};

use nifdy_net::{AckInfo, BulkGrant, BulkTag, Fabric, Lane, Packet, Wire};
use nifdy_sim::{Cycle, NodeId, PacketId};

use crate::config::NifdyConfig;
use crate::nic::{Delivered, Nic, NicStats, OutboundPacket};

/// Sequence numbers travel on the wire modulo this space (the paper notes
/// they "need only be as large as W"; we carry a byte and document that
/// hardware would use `log2(2W)` bits).
const SEQ_SPACE: u64 = 256;

/// An entry in the outstanding packet table.
#[derive(Debug)]
struct OptEntry {
    dst: NodeId,
    sent_at: Cycle,
    /// Copy kept for retransmission (§6.2 only).
    copy: Option<Packet>,
}

/// Sender-side state of the single outgoing bulk dialog.
#[derive(Debug)]
struct OutDialog {
    peer: NodeId,
    dialog: u8,
    window: u8,
    /// Absolute count of bulk packets sent.
    next_seq: u64,
    /// Absolute count of bulk packets acknowledged.
    acked: u64,
    /// The exit packet has been sent; no further traffic to `peer` until the
    /// dialog fully drains (preserves pairwise order).
    exiting: bool,
    /// Unacked copies for retransmission: (abs seq, packet, last sent).
    copies: VecDeque<(u64, Packet, Cycle)>,
}

/// Receiver-side state of one granted dialog slot.
#[derive(Debug)]
struct InDialog {
    peer: NodeId,
    /// Absolute count of packets delivered in order (== next expected seq).
    expected: u64,
    /// Out-of-order packets buffered in the window, by absolute seq.
    buf: BTreeMap<u64, Packet>,
    /// Delivered count as of the last window ack sent.
    last_acked: u64,
}

/// Tombstone for a recently closed dialog slot (lossy-network robustness:
/// late retransmissions of the tail still get their final ack re-sent).
#[derive(Debug, Clone, Copy)]
struct ClosedDialog {
    peer: NodeId,
    final_count: u64,
    until: Cycle,
}

/// A queued acknowledgment, charged the NIFDY processing latency.
#[derive(Debug)]
struct PendingAck {
    dst: NodeId,
    info: AckInfo,
    ready_at: Cycle,
}

/// The NIFDY network interface unit.
///
/// # Examples
///
/// Two units exchanging a packet over a small mesh:
///
/// ```
/// use nifdy::{Nic, NifdyConfig, NifdyUnit, OutboundPacket};
/// use nifdy_net::topology::Mesh;
/// use nifdy_net::{Fabric, FabricConfig};
/// use nifdy_sim::NodeId;
///
/// let mut fab = Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default());
/// let mut a = NifdyUnit::new(NodeId::new(0), NifdyConfig::mesh());
/// let mut b = NifdyUnit::new(NodeId::new(3), NifdyConfig::mesh());
/// assert!(a.try_send(OutboundPacket::new(NodeId::new(3), 8), fab.now()));
/// let got = loop {
///     a.step(&mut fab);
///     b.step(&mut fab);
///     fab.step();
///     if let Some(d) = b.poll(fab.now()) {
///         break d;
///     }
///     assert!(fab.now().as_u64() < 10_000);
/// };
/// assert_eq!(got.src, NodeId::new(0));
/// ```
#[derive(Debug)]
pub struct NifdyUnit {
    node: NodeId,
    cfg: NifdyConfig,
    now: Cycle,
    pkt_counter: u64,

    // Sender side.
    pool: VecDeque<OutboundPacket>,
    opt: Vec<OptEntry>,
    out_dialog: Option<OutDialog>,
    bulk_request_pending: Option<NodeId>,
    retx_queue: VecDeque<Packet>,
    alt_bits: HashMap<NodeId, bool>,

    // Receiver side.
    arrivals: VecDeque<Packet>,
    dialogs: Vec<Option<InDialog>>,
    closed: Vec<Option<ClosedDialog>>,
    peer_dialog: HashMap<NodeId, u8>,
    ack_queue: VecDeque<PendingAck>,
    ack_delay: VecDeque<(Cycle, NodeId, AckInfo)>,
    last_insert_bit: HashMap<NodeId, bool>,
    last_acked_bit: HashMap<NodeId, bool>,

    stats: NicStats,
}

impl NifdyUnit {
    /// Creates a NIFDY unit for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`NifdyConfig::validate`].
    pub fn new(node: NodeId, cfg: NifdyConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid NIFDY config: {e}");
        }
        let d = cfg.max_dialogs as usize;
        NifdyUnit {
            node,
            now: Cycle::ZERO,
            pkt_counter: 0,
            pool: VecDeque::with_capacity(cfg.pool_entries as usize),
            opt: Vec::with_capacity(cfg.opt_entries as usize),
            out_dialog: None,
            bulk_request_pending: None,
            retx_queue: VecDeque::new(),
            alt_bits: HashMap::new(),
            arrivals: VecDeque::with_capacity(cfg.arrivals_capacity as usize),
            dialogs: (0..d).map(|_| None).collect(),
            closed: (0..d).map(|_| None).collect(),
            peer_dialog: HashMap::new(),
            ack_queue: VecDeque::new(),
            ack_delay: VecDeque::new(),
            last_insert_bit: HashMap::new(),
            last_acked_bit: HashMap::new(),
            stats: NicStats::default(),
            cfg,
        }
    }

    /// The configuration this unit runs with.
    pub fn config(&self) -> &NifdyConfig {
        &self.cfg
    }

    /// Number of scalar packets currently outstanding (OPT occupancy).
    pub fn opt_occupancy(&self) -> usize {
        self.opt.len()
    }

    /// Whether this unit currently holds an outgoing bulk dialog.
    pub fn in_bulk_dialog(&self) -> bool {
        self.out_dialog.is_some()
    }

    /// `(unacknowledged, window)` of the outgoing bulk dialog, if any.
    /// The protocol invariant `unacknowledged <= window` always holds.
    pub fn bulk_outstanding(&self) -> Option<(u64, u8)> {
        self.out_dialog
            .as_ref()
            .map(|d| (d.next_seq - d.acked, d.window))
    }

    fn next_packet_id(&mut self) -> PacketId {
        self.pkt_counter += 1;
        PacketId::new(((self.node.index() as u64) << 40) | self.pkt_counter)
    }

    fn opt_contains(&self, dst: NodeId) -> bool {
        self.opt.iter().any(|e| e.dst == dst)
    }

    /// Queued pool packets destined to `dst`, excluding index `skip`.
    fn backlog_for(&self, dst: NodeId, skip: usize) -> usize {
        self.pool
            .iter()
            .enumerate()
            .filter(|(i, p)| *i != skip && p.dst == dst)
            .count()
    }

    fn queue_ack(&mut self, dst: NodeId, info: AckInfo) {
        self.ack_queue.push_back(PendingAck {
            dst,
            info,
            ready_at: self.now + u64::from(self.cfg.ack_proc_cycles),
        });
    }

    /// Receiver-side bulk-grant decision for a scalar packet from `src` with
    /// the given request bit.
    fn decide_grant(&mut self, requested: bool, src: NodeId) -> BulkGrant {
        if !requested {
            return BulkGrant::NotRequested;
        }
        if let Some(&slot) = self.peer_dialog.get(&src) {
            // Idempotent re-grant (duplicate request after a lost ack).
            return BulkGrant::Granted {
                dialog: slot,
                window: self.cfg.window,
            };
        }
        let free = self.dialogs.iter().enumerate().find(|(i, d)| {
            d.is_none()
                && self.closed[*i].is_none_or(|c| c.until <= self.now)
        });
        match free {
            Some((slot, _)) => {
                self.dialogs[slot] = Some(InDialog {
                    peer: src,
                    expected: 0,
                    buf: BTreeMap::new(),
                    last_acked: 0,
                });
                self.closed[slot] = None;
                self.peer_dialog.insert(src, slot as u8);
                self.stats.dialogs_granted.incr();
                BulkGrant::Granted {
                    dialog: slot as u8,
                    window: self.cfg.window,
                }
            }
            None => BulkGrant::Rejected,
        }
    }

    /// Builds and queues the scalar ack for an accepted data packet.
    fn ack_scalar(&mut self, pkt: &Packet) {
        let Wire::Data {
            bulk_request,
            needs_ack,
            dup_bit,
            ..
        } = pkt.wire
        else {
            return;
        };
        if !needs_ack {
            return;
        }
        let grant = self.decide_grant(bulk_request, pkt.src);
        self.last_acked_bit.insert(pkt.src, dup_bit);
        self.queue_ack(pkt.src, AckInfo::Scalar { grant });
    }

    /// Processes a delayed acknowledgment (sender side).
    fn handle_ack(&mut self, from: NodeId, info: AckInfo) {
        self.stats.acks_received.incr();
        match info {
            AckInfo::Scalar { grant } => {
                if let Some(i) = self.opt.iter().position(|e| e.dst == from) {
                    self.opt.swap_remove(i);
                }
                match grant {
                    BulkGrant::Granted { dialog, window } => {
                        if self.bulk_request_pending == Some(from) && self.out_dialog.is_none() {
                            self.out_dialog = Some(OutDialog {
                                peer: from,
                                dialog,
                                window,
                                next_seq: 0,
                                acked: 0,
                                exiting: false,
                                copies: VecDeque::new(),
                            });
                        }
                        if self.bulk_request_pending == Some(from) {
                            self.bulk_request_pending = None;
                        }
                    }
                    BulkGrant::Rejected => {
                        if self.bulk_request_pending == Some(from) {
                            self.bulk_request_pending = None;
                            self.stats.dialogs_rejected.incr();
                        }
                    }
                    BulkGrant::NotRequested => {}
                }
            }
            AckInfo::Bulk {
                dialog,
                cum_seq,
                terminate,
            } => {
                let Some(d) = &mut self.out_dialog else {
                    return; // stale ack after the dialog closed
                };
                if d.peer != from || d.dialog != dialog {
                    return;
                }
                // Reconstruct the absolute delivered count from the wire
                // residue: the smallest count > acked congruent to cum+1.
                let target = (u64::from(cum_seq) + 1) % SEQ_SPACE;
                let delta = (target + SEQ_SPACE - (d.acked % SEQ_SPACE)) % SEQ_SPACE;
                let count = d.acked + delta;
                if count > d.next_seq {
                    return; // acknowledges packets never sent: ignore
                }
                if count > d.acked {
                    d.acked = count;
                    while d.copies.front().is_some_and(|(s, _, _)| *s < count) {
                        d.copies.pop_front();
                    }
                }
                if terminate || (d.exiting && d.acked == d.next_seq) {
                    self.out_dialog = None;
                }
            }
        }
    }

    /// Handles an arriving bulk-mode data packet (receiver side).
    fn receive_bulk(&mut self, pkt: Packet, tag: BulkTag) {
        let slot = tag.dialog as usize;
        if slot >= self.dialogs.len() || self.dialogs[slot].is_none() {
            // Late retransmission for a closed dialog: re-send the final ack.
            if let Some(c) = self.closed.get(slot).copied().flatten() {
                if c.final_count > 0 {
                    let cum = ((c.final_count - 1) % SEQ_SPACE) as u8;
                    self.queue_ack(
                        c.peer,
                        AckInfo::Bulk {
                            dialog: tag.dialog,
                            cum_seq: cum,
                            terminate: true,
                        },
                    );
                }
            }
            self.stats.duplicates_dropped.incr();
            return;
        }
        let d = self.dialogs[slot].as_mut().expect("checked above");
        let delta = (u64::from(tag.seq) + SEQ_SPACE - (d.expected % SEQ_SPACE)) % SEQ_SPACE;
        if delta >= u64::from(self.cfg.window) {
            // Duplicate or out-of-window: discard, refresh the cumulative ack.
            self.stats.duplicates_dropped.incr();
            if d.expected > 0 {
                let cum = ((d.expected - 1) % SEQ_SPACE) as u8;
                let (peer, dialog) = (d.peer, tag.dialog);
                self.queue_ack(
                    peer,
                    AckInfo::Bulk {
                        dialog,
                        cum_seq: cum,
                        terminate: false,
                    },
                );
            }
            return;
        }
        let abs = d.expected + delta;
        if delta > 0 {
            self.stats.bulk_out_of_order.incr();
        }
        d.buf.entry(abs).or_insert(pkt);
    }

    /// Streams in-order bulk packets to the arrivals FIFO and emits window
    /// acks at half-window boundaries and on dialog exit.
    fn drain_dialogs(&mut self) {
        for slot in 0..self.dialogs.len() {
            loop {
                if self.arrivals.len() >= self.cfg.arrivals_capacity as usize {
                    return;
                }
                let Some(d) = self.dialogs[slot].as_mut() else {
                    break;
                };
                let expected = d.expected;
                let Some(pkt) = d.buf.remove(&expected) else {
                    break;
                };
                d.expected += 1;
                let exit = matches!(pkt.wire, Wire::Data { bulk_exit: true, .. });
                let peer = d.peer;
                let delivered = d.expected;
                let half = if self.cfg.bulk_ack_every_packet {
                    1
                } else {
                    u64::from(self.cfg.window) / 2
                };
                let boundary = delivered - d.last_acked >= half;
                if boundary {
                    d.last_acked = delivered;
                }
                self.arrivals.push_back(pkt);
                if exit {
                    // Final cumulative ack; free the slot with a tombstone.
                    let cum = ((delivered - 1) % SEQ_SPACE) as u8;
                    self.queue_ack(
                        peer,
                        AckInfo::Bulk {
                            dialog: slot as u8,
                            cum_seq: cum,
                            terminate: false,
                        },
                    );
                    let linger = self.cfg.retx_timeout.map_or(0, |t| 4 * t);
                    self.closed[slot] = Some(ClosedDialog {
                        peer,
                        final_count: delivered,
                        until: self.now + linger,
                    });
                    self.dialogs[slot] = None;
                    self.peer_dialog.remove(&peer);
                    break;
                } else if boundary {
                    let cum = ((delivered - 1) % SEQ_SPACE) as u8;
                    self.queue_ack(
                        peer,
                        AckInfo::Bulk {
                            dialog: slot as u8,
                            cum_seq: cum,
                            terminate: false,
                        },
                    );
                }
            }
        }
    }

    /// Handles an arriving scalar data packet; returns `false` if the
    /// arrivals FIFO was full and the packet must stay in the fabric.
    fn receive_scalar(&mut self, pkt: Packet) -> bool {
        if self.arrivals.len() >= self.cfg.arrivals_capacity as usize {
            return false;
        }
        let Wire::Data {
            dup_bit, needs_ack, ..
        } = pkt.wire
        else {
            unreachable!("acks are consumed on the reply lane");
        };
        if self.cfg.retx_timeout.is_some() && needs_ack {
            if self.last_insert_bit.get(&pkt.src) == Some(&dup_bit) {
                // Duplicate of a packet already inserted; re-ack only if the
                // original was already accepted, otherwise stay silent (the
                // original's ack is still coming).
                self.stats.duplicates_dropped.incr();
                if self.last_acked_bit.get(&pkt.src) == Some(&dup_bit) {
                    let src = pkt.src;
                    let Wire::Data { bulk_request, .. } = pkt.wire else {
                        unreachable!()
                    };
                    let grant = self.decide_grant(bulk_request, src);
                    self.queue_ack(src, AckInfo::Scalar { grant });
                }
                return true;
            }
            self.last_insert_bit.insert(pkt.src, dup_bit);
        }
        if self.cfg.ack_on_insert {
            self.ack_scalar(&pkt);
        }
        self.arrivals.push_back(pkt);
        true
    }

    /// Index of the first eligible pool packet, if any.
    fn pick_eligible(&self) -> Option<usize> {
        'outer: for (i, p) in self.pool.iter().enumerate() {
            // FIFO per destination: an earlier queued packet to the same
            // destination blocks this one (the rank unit's job).
            for q in self.pool.iter().take(i) {
                if q.dst == p.dst {
                    continue 'outer;
                }
            }
            if let Some(d) = &self.out_dialog {
                if d.peer == p.dst {
                    if d.exiting {
                        continue; // preserve order across the dialog close
                    }
                    if d.next_seq - d.acked < u64::from(d.window) {
                        return Some(i);
                    }
                    continue;
                }
            }
            // Scalar path.
            if !p.needs_ack {
                return Some(i); // §6.1 bypass: no OPT interaction
            }
            if self.opt_contains(p.dst) || self.opt.len() >= self.cfg.opt_entries as usize {
                continue;
            }
            return Some(i);
        }
        None
    }

    /// Builds the wire packet for pool entry `i` and records protocol state.
    fn launch(&mut self, i: usize) -> Packet {
        let out = self.pool.remove(i).expect("index in range");
        let id = self.next_packet_id();
        let mut pkt = Packet::data(id, self.node, out.dst, out.size_words);
        pkt.user = out.user;
        pkt.stamp.created = self.now;

        // §6.1: carry a pending ack for this destination instead of sending
        // a standalone ack packet. No readiness check: the ack fields are
        // computed while the data packet serializes, which takes longer than
        // the NIFDY processing delay.
        let piggy = if self.cfg.piggyback_acks {
            self.ack_queue
                .iter()
                .position(|a| a.dst == out.dst)
                .and_then(|idx| self.ack_queue.remove(idx))
                .map(|a| {
                    self.stats.acks_piggybacked.incr();
                    a.info
                })
        } else {
            None
        };

        let bulk = self
            .out_dialog
            .as_ref()
            .is_some_and(|d| d.peer == out.dst && !d.exiting);
        if bulk {
            let d = self.out_dialog.as_mut().expect("checked above");
            let seq = (d.next_seq % SEQ_SPACE) as u8;
            d.next_seq += 1;
            let exit = self.pool.iter().all(|q| q.dst != out.dst);
            pkt.wire = Wire::Data {
                bulk_request: false,
                bulk_exit: exit,
                bulk: Some(BulkTag {
                    dialog: d.dialog,
                    seq,
                }),
                needs_ack: true,
                dup_bit: false,
                piggy_ack: piggy,
            };
            if exit {
                d.exiting = true;
            }
            if self.cfg.retx_timeout.is_some() {
                let d = self.out_dialog.as_mut().expect("still in dialog");
                d.copies.push_back((d.next_seq - 1, pkt.clone(), self.now));
            }
            self.stats.sent_bulk.incr();
        } else {
            let request = out.want_bulk
                && self.out_dialog.is_none()
                && self.bulk_request_pending.is_none()
                && self.backlog_for(out.dst, usize::MAX)
                    >= usize::from(self.cfg.bulk_request_min_backlog);
            let dup_bit = if self.cfg.retx_timeout.is_some() {
                let bit = self.alt_bits.entry(out.dst).or_insert(false);
                *bit = !*bit;
                *bit
            } else {
                false
            };
            pkt.wire = Wire::Data {
                bulk_request: request,
                bulk_exit: false,
                bulk: None,
                needs_ack: out.needs_ack,
                dup_bit,
                piggy_ack: piggy,
            };
            if out.needs_ack {
                self.opt.push(OptEntry {
                    dst: out.dst,
                    sent_at: self.now,
                    copy: self.cfg.retx_timeout.map(|_| pkt.clone()),
                });
            }
            if request {
                self.bulk_request_pending = Some(out.dst);
            }
        }
        self.stats.sent.incr();
        pkt
    }

    /// Fires retransmission timers (§6.2).
    fn check_retx(&mut self) {
        let Some(timeout) = self.cfg.retx_timeout else {
            return;
        };
        for e in &mut self.opt {
            if self.now.saturating_since(e.sent_at) >= timeout {
                if let Some(copy) = &e.copy {
                    self.retx_queue.push_back(copy.clone());
                    self.stats.retransmitted.incr();
                }
                e.sent_at = self.now;
            }
        }
        if let Some(d) = &mut self.out_dialog {
            for (_, copy, sent_at) in &mut d.copies {
                if self.now.saturating_since(*sent_at) >= timeout {
                    self.retx_queue.push_back(copy.clone());
                    self.stats.retransmitted.incr();
                    *sent_at = self.now;
                }
            }
        }
    }
}

impl Nic for NifdyUnit {
    fn node(&self) -> NodeId {
        self.node
    }

    fn try_send(&mut self, pkt: OutboundPacket, now: Cycle) -> bool {
        let _ = now;
        if self.pool.len() >= self.cfg.pool_entries as usize {
            self.stats.send_rejected.incr();
            return false;
        }
        self.pool.push_back(pkt);
        true
    }

    fn has_deliverable(&self) -> bool {
        !self.arrivals.is_empty()
    }

    fn poll(&mut self, now: Cycle) -> Option<Delivered> {
        self.now = now;
        let pkt = self.arrivals.pop_front()?;
        let is_scalar = matches!(pkt.wire, Wire::Data { bulk: None, .. });
        if is_scalar && !self.cfg.ack_on_insert {
            self.ack_scalar(&pkt);
        }
        self.stats.delivered.incr();
        Some(Delivered {
            src: pkt.src,
            size_words: pkt.size_words,
            user: pkt.user,
        })
    }

    fn step(&mut self, fab: &mut Fabric) {
        self.now = fab.now();

        // 1. Consume acknowledgments (reply lane) through the processing
        //    delay line.
        while let Some(ack) = fab.eject(self.node, Lane::Reply) {
            let ready = self.now + u64::from(self.cfg.ack_proc_cycles);
            if let Wire::Ack(info) = ack.wire {
                self.ack_delay.push_back((ready, ack.src, info));
            }
        }
        while self.ack_delay.front().is_some_and(|(r, _, _)| *r <= self.now) {
            let (_, from, info) = self.ack_delay.pop_front().expect("nonempty");
            self.handle_ack(from, info);
        }

        // 2. Pull data packets from the fabric.
        #[allow(clippy::while_let_loop)] // scalar branch breaks on backpressure
        loop {
            let Some(peek) = fab.peek_eject(self.node, Lane::Request) else {
                break;
            };
            match peek.wire {
                Wire::Data { bulk: Some(_), .. } => {
                    let pkt = fab.eject(self.node, Lane::Request).expect("peeked");
                    let Wire::Data {
                        bulk: Some(tag),
                        piggy_ack,
                        ..
                    } = pkt.wire
                    else {
                        unreachable!()
                    };
                    if let Some(info) = piggy_ack {
                        let ready = self.now + u64::from(self.cfg.ack_proc_cycles);
                        self.ack_delay.push_back((ready, pkt.src, info));
                    }
                    self.receive_bulk(pkt, tag);
                }
                Wire::Data { bulk: None, .. } => {
                    if self.arrivals.len() >= self.cfg.arrivals_capacity as usize {
                        break; // backpressure into the fabric
                    }
                    let pkt = fab.eject(self.node, Lane::Request).expect("peeked");
                    if let Wire::Data {
                        piggy_ack: Some(info),
                        ..
                    } = pkt.wire
                    {
                        let ready = self.now + u64::from(self.cfg.ack_proc_cycles);
                        self.ack_delay.push_back((ready, pkt.src, info));
                    }
                    let accepted = self.receive_scalar(pkt);
                    debug_assert!(accepted, "space was checked");
                }
                Wire::Ack(_) => {
                    // Acks never travel on the request lane.
                    let _ = fab.eject(self.node, Lane::Request);
                    debug_assert!(false, "ack on request lane");
                }
            }
        }

        // 3. Stream reorder buffers to the processor FIFO, emitting window
        //    acks.
        self.drain_dialogs();

        // 4. Retransmission timers.
        self.check_retx();

        // 5. Inject one standalone ack if the reply lane is free. With §6.1
        //    piggybacking, an ack whose destination has reverse data queued
        //    is held (briefly) so `launch` can carry it for free.
        if fab.can_inject(self.node, Lane::Reply) {
            let hold = self.cfg.piggyback_hold_cycles;
            let idx = self.ack_queue.iter().position(|a| {
                if a.ready_at > self.now {
                    return false;
                }
                if !self.cfg.piggyback_acks {
                    return true;
                }
                let reverse_data = self.pool.iter().any(|p| p.dst == a.dst);
                !reverse_data || self.now.saturating_since(a.ready_at) >= hold
            });
            if let Some(idx) = idx {
                let a = self.ack_queue.remove(idx).expect("index valid");
                let id = self.next_packet_id();
                let ack = Packet::ack(id, self.node, a.dst, a.info);
                fab.inject(self.node, ack);
                self.stats.acks_sent.incr();
            }
        }

        // 6. Inject one data packet if the request lane is free:
        //    retransmissions first, then the first eligible pool packet.
        if fab.can_inject(self.node, Lane::Request) {
            if let Some(copy) = self.retx_queue.pop_front() {
                fab.inject(self.node, copy);
            } else if let Some(i) = self.pick_eligible() {
                let pkt = self.launch(i);
                fab.inject(self.node, pkt);
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.pool.is_empty()
            && self.retx_queue.is_empty()
            && self.ack_queue.is_empty()
            && self.ack_delay.is_empty()
            && self.opt.is_empty()
            && self.out_dialog.is_none()
            && self.arrivals.is_empty()
            && self.dialogs.iter().all(|d| d.is_none())
    }

    fn stats(&self) -> &NicStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nifdy_net::{FabricConfig, UserData};
    use nifdy_net::topology::Mesh;

    fn unit(cfg: NifdyConfig) -> NifdyUnit {
        NifdyUnit::new(NodeId::new(0), cfg)
    }

    fn fabric() -> Fabric {
        Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default())
    }

    #[test]
    fn grant_is_idempotent_for_the_same_peer() {
        let mut u = unit(NifdyConfig::new(4, 4, 2, 4));
        let peer = NodeId::new(3);
        let g1 = u.decide_grant(true, peer);
        let g2 = u.decide_grant(true, peer);
        assert_eq!(g1, g2, "duplicate requests must re-grant the same slot");
        match g1 {
            BulkGrant::Granted { window, .. } => assert_eq!(window, 4),
            other => panic!("expected grant, got {other:?}"),
        }
        assert_eq!(u.stats.dialogs_granted.get(), 1, "only one real grant");
    }

    #[test]
    fn grants_stop_at_the_dialog_limit() {
        let mut u = unit(NifdyConfig::new(4, 4, 2, 4));
        assert!(matches!(
            u.decide_grant(true, NodeId::new(1)),
            BulkGrant::Granted { .. }
        ));
        assert!(matches!(
            u.decide_grant(true, NodeId::new(2)),
            BulkGrant::Granted { .. }
        ));
        assert_eq!(u.decide_grant(true, NodeId::new(3)), BulkGrant::Rejected);
        assert_eq!(u.decide_grant(false, NodeId::new(4)), BulkGrant::NotRequested);
    }

    #[test]
    fn bulk_ack_reconstruction_handles_wraparound() {
        let mut u = unit(NifdyConfig::new(4, 4, 1, 8));
        let peer = NodeId::new(2);
        u.out_dialog = Some(OutDialog {
            peer,
            dialog: 0,
            window: 8,
            next_seq: 300, // past the 256-value wire space
            acked: 252,
            exiting: false,
            copies: VecDeque::new(),
        });
        // Receiver acks through absolute 259: wire residue (259 - 1) % 256 = 2.
        u.handle_ack(
            peer,
            AckInfo::Bulk {
                dialog: 0,
                cum_seq: 2,
                terminate: false,
            },
        );
        assert_eq!(u.out_dialog.as_ref().expect("open").acked, 259);
        // A stale ack (older residue) must be ignored, not regress.
        u.handle_ack(
            peer,
            AckInfo::Bulk {
                dialog: 0,
                cum_seq: 250,
                terminate: false,
            },
        );
        assert_eq!(u.out_dialog.as_ref().expect("open").acked, 259);
    }

    #[test]
    fn bulk_ack_never_acknowledges_unsent_packets() {
        let mut u = unit(NifdyConfig::new(4, 4, 1, 8));
        let peer = NodeId::new(2);
        u.out_dialog = Some(OutDialog {
            peer,
            dialog: 0,
            window: 8,
            next_seq: 4,
            acked: 0,
            exiting: false,
            copies: VecDeque::new(),
        });
        // cum 9 would mean 10 delivered > 4 sent: bogus, ignored.
        u.handle_ack(
            peer,
            AckInfo::Bulk {
                dialog: 0,
                cum_seq: 9,
                terminate: false,
            },
        );
        assert_eq!(u.out_dialog.as_ref().expect("open").acked, 0);
    }

    #[test]
    fn exiting_dialog_closes_on_final_ack() {
        let mut u = unit(NifdyConfig::new(4, 4, 1, 4));
        let peer = NodeId::new(1);
        u.out_dialog = Some(OutDialog {
            peer,
            dialog: 0,
            window: 4,
            next_seq: 10,
            acked: 8,
            exiting: true,
            copies: VecDeque::new(),
        });
        u.handle_ack(
            peer,
            AckInfo::Bulk {
                dialog: 0,
                cum_seq: 9,
                terminate: false,
            },
        );
        assert!(u.out_dialog.is_none(), "dialog must close after the exit ack");
    }

    #[test]
    fn scalar_ack_clears_exactly_one_opt_entry() {
        let mut u = unit(NifdyConfig::mesh());
        u.opt.push(OptEntry {
            dst: NodeId::new(1),
            sent_at: Cycle::ZERO,
            copy: None,
        });
        u.opt.push(OptEntry {
            dst: NodeId::new(2),
            sent_at: Cycle::ZERO,
            copy: None,
        });
        u.handle_ack(
            NodeId::new(1),
            AckInfo::Scalar {
                grant: BulkGrant::NotRequested,
            },
        );
        assert_eq!(u.opt_occupancy(), 1);
        assert_eq!(u.opt[0].dst, NodeId::new(2));
        // A stale duplicate ack is harmless.
        u.handle_ack(
            NodeId::new(1),
            AckInfo::Scalar {
                grant: BulkGrant::NotRequested,
            },
        );
        assert_eq!(u.opt_occupancy(), 1);
    }

    #[test]
    fn out_of_window_bulk_arrivals_are_dropped_and_reacked() {
        let mut u = unit(NifdyConfig::new(4, 4, 1, 4));
        let peer = NodeId::new(3);
        let grant = u.decide_grant(true, peer);
        let BulkGrant::Granted { dialog, .. } = grant else {
            panic!("grant expected");
        };
        // Deliver packet 0 in order.
        let mk = |seq: u8| {
            let mut p = Packet::data(PacketId::new(1), peer, NodeId::new(0), 8);
            p.wire = Wire::Data {
                bulk_request: false,
                bulk_exit: false,
                bulk: Some(BulkTag { dialog, seq }),
                needs_ack: true,
                dup_bit: false,
                piggy_ack: None,
            };
            p.user = UserData::default();
            p
        };
        u.receive_bulk(mk(0), BulkTag { dialog, seq: 0 });
        u.drain_dialogs();
        assert_eq!(u.arrivals.len(), 1);
        // A duplicate of seq 0 (now below the window) is discarded and the
        // cumulative ack refreshed.
        let acks_before = u.ack_queue.len();
        u.receive_bulk(mk(0), BulkTag { dialog, seq: 0 });
        assert_eq!(u.arrivals.len(), 1, "duplicate delivered");
        assert_eq!(u.stats.duplicates_dropped.get(), 1);
        assert!(u.ack_queue.len() > acks_before, "no re-ack queued");
    }

    #[test]
    fn pool_rejects_when_full_and_counts_it() {
        let mut u = unit(NifdyConfig::new(2, 2, 0, 2));
        let now = Cycle::ZERO;
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), now));
        assert!(u.try_send(OutboundPacket::new(NodeId::new(2), 8), now));
        assert!(!u.try_send(OutboundPacket::new(NodeId::new(3), 8), now));
        assert_eq!(u.stats().send_rejected.get(), 1);
    }

    #[test]
    fn eligibility_respects_fifo_per_destination() {
        let mut u = unit(NifdyConfig::new(4, 4, 0, 2));
        let now = Cycle::ZERO;
        // Two packets to node 1, one to node 2.
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), now));
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), now));
        assert!(u.try_send(OutboundPacket::new(NodeId::new(2), 8), now));
        // First eligible is pool[0] (first to node 1).
        assert_eq!(u.pick_eligible(), Some(0));
        // Simulate launching it: node 1 now outstanding.
        let pkt = u.launch(0);
        assert_eq!(pkt.dst, NodeId::new(1));
        // The second node-1 packet is blocked; node 2 is next eligible.
        let idx = u.pick_eligible().expect("node 2 eligible");
        assert_eq!(u.pool[idx].dst, NodeId::new(2));
    }

    #[test]
    fn no_ack_packets_are_always_eligible() {
        let mut u = unit(NifdyConfig::new(1, 4, 0, 2));
        let now = Cycle::ZERO;
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), now));
        let _ = u.launch(u.pick_eligible().expect("first"));
        // OPT (size 1) is now full; an acked packet to node 2 is blocked...
        assert!(u.try_send(OutboundPacket::new(NodeId::new(2), 8), now));
        assert_eq!(u.pick_eligible(), None);
        // ...but a no-ack packet bypasses the OPT entirely.
        let mut p = OutboundPacket::new(NodeId::new(3), 8);
        p.needs_ack = false;
        assert!(u.try_send(p, now));
        let idx = u.pick_eligible().expect("bypass eligible");
        assert_eq!(u.pool[idx].dst, NodeId::new(3));
    }

    #[test]
    fn is_idle_reflects_every_queue() {
        let mut fab = fabric();
        let mut u = unit(NifdyConfig::mesh());
        assert!(u.is_idle());
        assert!(u.try_send(OutboundPacket::new(NodeId::new(1), 8), fab.now()));
        assert!(!u.is_idle(), "pool occupancy must show");
        u.step(&mut fab);
        assert!(!u.is_idle(), "outstanding OPT entry must show");
    }
}
