//! The paper's analytic performance model (§2.4, Table 1, Equations 1–3).
//!
//! Symbols follow Table 1 of the paper:
//!
//! | symbol | meaning |
//! |---|---|
//! | `N` | number of nodes |
//! | `d` | distance to destination in hops |
//! | `L` | packet payload in bytes |
//! | `T_send` | processor software overhead to send a packet |
//! | `T_receive` | processor software overhead to receive a packet |
//! | `T_link` | time for one packet to cross a link without contention |
//! | `T_ackproc` | latency to generate and process an ack (both ends) |
//! | `T_roundtrip` | header departure to ack processed |
//!
//! These functions are used to derive the per-network NIFDY parameters of
//! §2.4.3 and are unit-tested against the worked examples in the paper.

/// Software/hardware timing characteristics of one network + host pair
/// (Table 1).
///
/// # Examples
///
/// The paper's running example: `T_ackproc = 4`, `T_send = 40`,
/// `T_receive = 60`.
///
/// ```
/// use nifdy::analysis::Timing;
///
/// let t = Timing {
///     t_send: 40,
///     t_receive: 60,
///     t_link: 32,
///     t_ackproc: 4,
/// };
/// assert_eq!(t.bottleneck(), 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// `T_send`: total cycles for the processor to send a packet.
    pub t_send: u64,
    /// `T_receive`: total cycles for the processor to receive a packet.
    pub t_receive: u64,
    /// `T_link`: cycles for one packet to cross a link along the path,
    /// absent contention (the hardware limit on inter-packet arrival).
    pub t_link: u64,
    /// `T_ackproc`: total ack generation + processing latency (both ends).
    pub t_ackproc: u64,
}

impl Timing {
    /// The per-packet bottleneck `max(T_send, T_receive, T_link)` that
    /// appears in the denominator of Equation 1.
    pub fn bottleneck(&self) -> u64 {
        self.t_send.max(self.t_receive).max(self.t_link)
    }
}

/// Equation 1: maximum pairwise bandwidth without a NIFDY unit, in payload
/// bytes per cycle: `L / max(T_send, T_receive, T_link)`.
///
/// # Examples
///
/// ```
/// use nifdy::analysis::{pairwise_bandwidth, Timing};
///
/// let t = Timing { t_send: 40, t_receive: 60, t_link: 32, t_ackproc: 4 };
/// let bw = pairwise_bandwidth(24, t);
/// assert!((bw - 0.4).abs() < 1e-12); // 24 bytes / 60 cycles
/// ```
///
/// # Panics
///
/// Panics if all three overheads are zero.
pub fn pairwise_bandwidth(payload_bytes: u64, t: Timing) -> f64 {
    let b = t.bottleneck();
    assert!(b > 0, "at least one overhead must be nonzero");
    payload_bytes as f64 / b as f64
}

/// Equation 2: `T_roundtrip(d) = 2·T_lat(d) + T_ackproc` — the time from
/// when a packet starts leaving until its ack has been processed.
///
/// # Examples
///
/// The paper's mesh example: `T_lat(d) = 4d + 14`, maximum distance 14 hops,
/// `T_ackproc = 4` gives a 144-cycle round trip.
///
/// ```
/// use nifdy::analysis::roundtrip;
///
/// assert_eq!(roundtrip(4 * 14 + 14, 4), 144);
/// ```
pub fn roundtrip(t_lat: u64, t_ackproc: u64) -> u64 {
    2 * t_lat + t_ackproc
}

/// Scalar-mode full-bandwidth criterion (§2.4.1): the basic protocol
/// sustains full pairwise bandwidth iff
/// `T_roundtrip(d) <= max(T_send, T_receive, T_link)`.
///
/// # Examples
///
/// ```
/// use nifdy::analysis::{scalar_mode_sufficient, Timing};
///
/// let t = Timing { t_send: 40, t_receive: 60, t_link: 32, t_ackproc: 4 };
/// // Fat tree: T_lat = 5·6 + 2 = 32, round trip 68 > 60: marginal.
/// assert!(!scalar_mode_sufficient(68, t));
/// assert!(scalar_mode_sufficient(60, t));
/// ```
pub fn scalar_mode_sufficient(t_roundtrip: u64, t: Timing) -> bool {
    t_roundtrip <= t.bottleneck()
}

/// Equation 3: minimum even window size for the combined-ack sliding-window
/// protocol (one ack per `W/2` packets):
/// `W >= 2·(T_roundtrip / T_limit - 1)`, where `T_limit` is the per-packet
/// bottleneck.
///
/// Returns the smallest *even* window at least 2.
///
/// # Examples
///
/// The paper's mesh: hiding the maximum 144-cycle round trip against a
/// 60-cycle receive overhead needs `W >= 2·(144/60 − 1) = 2.8`, i.e. 4
/// buffers rounded to the next even integer ("at least 2 packets, possibly
/// 3 or 4 if we can afford to be generous").
///
/// ```
/// use nifdy::analysis::min_window_combined_acks;
///
/// assert_eq!(min_window_combined_acks(144, 60), 4);
/// assert_eq!(min_window_combined_acks(68, 60), 2);
/// ```
///
/// # Panics
///
/// Panics if `t_limit` is zero.
pub fn min_window_combined_acks(t_roundtrip: u64, t_limit: u64) -> u16 {
    assert!(t_limit > 0, "bottleneck time must be nonzero");
    let w = 2.0 * (t_roundtrip as f64 / t_limit as f64 - 1.0);
    let w = w.max(2.0).ceil() as u16;
    if w.is_multiple_of(2) {
        w
    } else {
        w + 1
    }
}

/// Per-packet-ack sliding-window sizing (§2.4.2's alternative): every packet
/// is acknowledged individually, so the window must cover a full
/// bandwidth-delay product: `W >= ceil(T_roundtrip / T_limit)`.
///
/// # Examples
///
/// ```
/// use nifdy::analysis::min_window_per_packet_acks;
///
/// assert_eq!(min_window_per_packet_acks(144, 60), 3);
/// ```
///
/// # Panics
///
/// Panics if `t_limit` is zero.
pub fn min_window_per_packet_acks(t_roundtrip: u64, t_limit: u64) -> u16 {
    assert!(t_limit > 0, "bottleneck time must be nonzero");
    (t_roundtrip as f64 / t_limit as f64).ceil().max(1.0) as u16
}

/// Linear latency model `T_lat(d) = slope·d + intercept`, the form the paper
/// fits to each simulated network (mesh: `4d + 14`; full fat tree:
/// `5d + 2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Cycles per hop.
    pub slope: u64,
    /// Fixed cycles (injection, interface crossing).
    pub intercept: u64,
}

impl LatencyModel {
    /// One-way latency at distance `d` hops.
    pub fn latency(&self, d: u64) -> u64 {
        self.slope * d + self.intercept
    }

    /// Round-trip time at distance `d` (Equation 2).
    pub fn roundtrip(&self, d: u64, t_ackproc: u64) -> u64 {
        roundtrip(self.latency(d), t_ackproc)
    }
}

/// The paper's simulated-mesh latency fit, `T_lat(d) = 4d + 14`.
pub const MESH_LATENCY: LatencyModel = LatencyModel {
    slope: 4,
    intercept: 14,
};

/// The paper's simulated full-fat-tree latency fit, `T_lat(d) = 5d + 2`.
pub const FAT_TREE_LATENCY: LatencyModel = LatencyModel {
    slope: 5,
    intercept: 2,
};

#[cfg(test)]
mod tests {
    use super::*;

    const T: Timing = Timing {
        t_send: 40,
        t_receive: 60,
        t_link: 32,
        t_ackproc: 4,
    };

    #[test]
    fn equation_1_picks_the_bottleneck() {
        // Receive overhead dominates at 60 cycles.
        assert_eq!(T.bottleneck(), 60);
        let bw = pairwise_bandwidth(32, T);
        assert!((bw - 32.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn mesh_worked_example_matches_the_paper() {
        // "Our simulated mesh had a one-way latency of TLat(d) = 4d + 14.
        // ... maximum and average internode distances are 14 and 6 hops;
        // hence Equation 2 gives maximum and average roundtrip latencies of
        // 144 and 80 cycles respectively."
        assert_eq!(MESH_LATENCY.roundtrip(14, 4), 144);
        assert_eq!(MESH_LATENCY.roundtrip(6, 4), 80);
        // "we will need a bulk window size of W >= 2(144/60 - 1)", i.e.
        // "at least 2 packets, possibly 3 or 4".
        assert_eq!(min_window_combined_acks(144, 60), 4);
        assert_eq!(min_window_combined_acks(80, 60), 2);
    }

    #[test]
    fn fat_tree_worked_example_matches_the_paper() {
        // "In this case Tlat = 5d + 2, giving a round-trip latency of
        // 32 + 32 + 4 = 68 cycles. Thus it appears that the basic NIFDY
        // protocol may be sufficient."
        assert_eq!(FAT_TREE_LATENCY.latency(6), 32);
        assert_eq!(FAT_TREE_LATENCY.roundtrip(6, 4), 68);
        // 68 is barely above the 60-cycle receive bottleneck: bulk dialogs
        // "will help only marginally".
        assert!(!scalar_mode_sufficient(68, T));
        assert_eq!(min_window_combined_acks(68, 60), 2);
    }

    #[test]
    fn per_packet_acks_need_a_full_bdp() {
        assert_eq!(min_window_per_packet_acks(144, 60), 3);
        assert_eq!(min_window_per_packet_acks(60, 60), 1);
        assert!(min_window_per_packet_acks(1, 60) >= 1);
    }

    #[test]
    fn window_is_always_even_and_at_least_two() {
        for rt in [1u64, 10, 59, 60, 61, 144, 1000] {
            let w = min_window_combined_acks(rt, 60);
            assert!(w >= 2 && w.is_multiple_of(2), "rt={rt} w={w}");
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bottleneck_rejected() {
        let _ = min_window_combined_acks(100, 0);
    }
}
