//! The processor-facing network-interface abstraction.
//!
//! All three interface models the paper compares — no-NIFDY
//! ([`PlainNic`](crate::PlainNic)), buffering-only
//! ([`BufferedNic`](crate::BufferedNic)), and the NIFDY unit itself
//! ([`NifdyUnit`](crate::NifdyUnit)) — implement [`Nic`]. The processor
//! model drives them identically: offer outbound packets with
//! [`Nic::try_send`], poll for arrivals with [`Nic::poll`], and give the
//! interface its per-cycle slice of work with [`Nic::step`].

use nifdy_net::{NetPort, UserData};
use nifdy_sim::metrics::Counter;
use nifdy_sim::{Cycle, NodeId, Wakeup};
use nifdy_trace::TraceHandle;

/// A packet the processor wants transmitted, before the NIC adds protocol
/// headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutboundPacket {
    /// Destination node.
    pub dst: NodeId,
    /// Packet length in words, including the header word.
    pub size_words: u16,
    /// Software requests a bulk dialog for this transfer (§2.2: "the
    /// processor must initiate bulk mode requests; NIFDY won't attempt bulk
    /// mode on its own").
    pub want_bulk: bool,
    /// Cleared to bypass the protocol entirely (§6.1 no-ack extension).
    pub needs_ack: bool,
    /// Workload annotation carried to the receiver.
    pub user: UserData,
}

impl OutboundPacket {
    /// A plain scalar packet of `size_words` words to `dst`.
    pub fn new(dst: NodeId, size_words: u16) -> Self {
        OutboundPacket {
            dst,
            size_words,
            want_bulk: false,
            needs_ack: true,
            user: UserData::default(),
        }
    }

    /// Sets the bulk-request preference.
    pub fn with_bulk(mut self, want: bool) -> Self {
        self.want_bulk = want;
        self
    }

    /// Attaches workload metadata.
    pub fn with_user(mut self, user: UserData) -> Self {
        self.user = user;
        self
    }
}

/// Why a [`DeliveryFailure`] was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A scalar packet exhausted its retry budget without an acknowledgment.
    Scalar,
    /// A bulk dialog exhausted its retry budget mid-window and was torn
    /// down; `unacked` packets of the dialog were never confirmed.
    BulkDialog {
        /// The wire dialog id of the torn-down dialog.
        dialog: u8,
        /// Packets sent but never acknowledged when the dialog was closed.
        unacked: u64,
    },
}

/// A typed, surfaced delivery failure: the interface abandoned a transfer
/// after exhausting its retry budget instead of retrying forever.
///
/// Collected from the unit with [`Nic::take_failures`]. Exactly the §6.2
/// robustness question the seed left open: a persistent link outage now
/// produces one of these rather than a silent livelock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryFailure {
    /// The node that gave up (the sender).
    pub src: NodeId,
    /// The unreachable destination.
    pub dst: NodeId,
    /// Cycle at which the budget was exhausted.
    pub at: Cycle,
    /// Retransmissions attempted before giving up.
    pub retries: u32,
    /// Scalar packet or bulk dialog.
    pub kind: FailureKind,
    /// Workload annotation of the failed packet (scalar failures only).
    pub user: Option<UserData>,
}

/// A packet delivered to the processor by [`Nic::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// Sending node — exposed to receive handlers from the packet header, so
    /// "the source node never needs to be included in the data portion".
    pub src: NodeId,
    /// Packet length in words.
    pub size_words: u16,
    /// Workload annotation from the sender.
    pub user: UserData,
}

/// Counters every NIC model keeps.
#[derive(Debug, Clone, Default)]
pub struct NicStats {
    /// Data packets handed to the fabric.
    pub sent: Counter,
    /// Data packets sent inside bulk dialogs.
    pub sent_bulk: Counter,
    /// Acknowledgments transmitted.
    pub acks_sent: Counter,
    /// Acknowledgments consumed.
    pub acks_received: Counter,
    /// Data packets delivered to the processor.
    pub delivered: Counter,
    /// Packets refused by [`Nic::try_send`] because buffering was full.
    pub send_rejected: Counter,
    /// Retransmissions triggered by the §6.2 timeout extension.
    pub retransmitted: Counter,
    /// Duplicate packets discarded at the receiver (§6.2).
    pub duplicates_dropped: Counter,
    /// Bulk dialogs granted to remote senders (receiver side).
    pub dialogs_granted: Counter,
    /// Acknowledgments delivered by piggybacking on data packets (§6.1).
    pub acks_piggybacked: Counter,
    /// Bulk packets that arrived out of order and waited in the reorder
    /// window (receiver side) — evidence the fabric actually reordered.
    pub bulk_out_of_order: Counter,
    /// Bulk-mode requests this node had rejected by receivers.
    pub dialogs_rejected: Counter,
    /// Transfers abandoned after exhausting the retry budget (each one
    /// surfaced as a [`DeliveryFailure`]).
    pub delivery_failures: Counter,
    /// Retransmission-timer firings deferred because the staging queue was
    /// at [`retx_queue_cap`](crate::NifdyConfig::retx_queue_cap).
    pub retx_queue_overflow: Counter,
    /// Outgoing bulk dialogs torn down mid-window by the retry budget.
    pub dialogs_torn_down: Counter,
    /// Granted (receiver-side) dialog slots reclaimed after their sender
    /// went silent (sender-side teardown or failure).
    pub dialogs_reclaimed: Counter,
}

impl NicStats {
    /// A progress fingerprint: changes whenever the interface does any
    /// observable work. Drivers feed this to a
    /// [`StallWatchdog`](nifdy_sim::StallWatchdog) — a busy interface whose
    /// fingerprint stops moving is livelocked.
    pub fn progress_fingerprint(&self) -> u64 {
        [
            &self.sent,
            &self.sent_bulk,
            &self.acks_sent,
            &self.acks_received,
            &self.delivered,
            &self.send_rejected,
            &self.retransmitted,
            &self.duplicates_dropped,
            &self.dialogs_granted,
            &self.acks_piggybacked,
            &self.bulk_out_of_order,
            &self.dialogs_rejected,
            &self.delivery_failures,
            &self.retx_queue_overflow,
            &self.dialogs_torn_down,
            &self.dialogs_reclaimed,
        ]
        .iter()
        .fold(0u64, |acc, c| acc.wrapping_add(c.get()))
    }
}

/// A point-in-time snapshot of an interface's queue occupancies, sampled
/// by drivers into telemetry gauges (OPT, buffer pool, retransmission
/// staging queue, bulk-window outstanding count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicOccupancy {
    /// Outbound packets waiting in the buffer pool.
    pub pool: u32,
    /// Scalar packets outstanding in the OPT.
    pub opt: u32,
    /// Retransmission copies staged for injection.
    pub retx_queue: u32,
    /// Unacknowledged packets of the outgoing bulk dialog, if any.
    pub window_outstanding: u64,
}

/// A network interface attached to one node of a packet carrier (the
/// cycle-accurate fabric or a byte transport — any [`NetPort`]).
///
/// Call order within a simulated cycle: the processor first interacts
/// ([`try_send`](Nic::try_send) / [`poll`](Nic::poll)), then the NIC runs
/// [`step`](Nic::step), then the fabric steps.
///
/// `Send` is a supertrait so a fully assembled simulation replica (driver,
/// fabric, boxed NICs) can be moved onto a worker thread by the parallel
/// experiment executor. Implementations are plain owned state, so this
/// costs nothing.
pub trait Nic: Send {
    /// The node this interface serves.
    fn node(&self) -> NodeId;

    /// Offers a packet for transmission. Returns `false` (and leaves the
    /// packet with the caller) when the interface's outgoing buffering is
    /// full; the processor retries later.
    fn try_send(&mut self, pkt: OutboundPacket, now: Cycle) -> bool;

    /// True when [`poll`](Nic::poll) would return a packet. Processors use
    /// this to charge the cheap "poll, no message" overhead instead of the
    /// full receive overhead.
    fn has_deliverable(&self) -> bool;

    /// Removes and returns the next packet for the processor, in the order
    /// the interface guarantees (NIFDY: sender order per source).
    fn poll(&mut self, now: Cycle) -> Option<Delivered>;

    /// One cycle of interface work: drain ejections, process acks, choose
    /// and inject eligible packets. The port is the node's attachment to
    /// whatever carries the packets — the simulated fabric or a real
    /// transport; the interface is transport-agnostic.
    fn step(&mut self, port: &mut dyn NetPort);

    /// True when the interface holds no queued outbound work (used by
    /// drain/termination checks; in-flight fabric packets are tracked by the
    /// fabric itself).
    fn is_idle(&self) -> bool;

    /// When this interface next needs a stepped cycle, under the
    /// [`Wakeup`] contract: `Now` when stepping this cycle may do
    /// observable work, `At(t)` when stepping is a no-op until `t`
    /// (absent new input from the processor or the fabric), `Quiescent`
    /// when the interface will never act again without such input.
    ///
    /// The default is maximally conservative — a non-idle interface
    /// always wants stepping — which is correct for any implementation.
    /// Interfaces with real timer state override this to let an
    /// event-driven driver skip their quiet stretches.
    fn next_event(&self, now: Cycle) -> Wakeup {
        let _ = now;
        if self.is_idle() {
            Wakeup::Quiescent
        } else {
            Wakeup::Now
        }
    }

    /// Interface counters.
    fn stats(&self) -> &NicStats;

    /// Drains delivery failures surfaced since the last call. Interfaces
    /// without a retry budget never fail and return an empty list (the
    /// default).
    fn take_failures(&mut self) -> Vec<DeliveryFailure> {
        Vec::new()
    }

    /// Connects this interface to a flight recorder. Interfaces without
    /// protocol state to narrate (the baselines) ignore the handle — the
    /// default.
    fn attach_trace(&mut self, trace: TraceHandle) {
        let _ = trace;
    }

    /// Current queue occupancies for telemetry gauges. Baselines report
    /// zeros (the default); the NIFDY unit reports its real state.
    fn occupancy(&self) -> NicOccupancy {
        NicOccupancy::default()
    }
}
