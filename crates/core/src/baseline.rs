//! Baseline network interfaces the paper compares NIFDY against.
//!
//! * [`PlainNic`] — "no NIFDY": a minimal interface with one outgoing slot
//!   and a small arrivals queue. No protocol, no acks; packets are injected
//!   as soon as the fabric accepts them and delivered in whatever order the
//!   network produces.
//! * [`BufferedNic`] — "buffering only": the NIFDY units are "included but
//!   disabled", so their buffering is still available. For a fair
//!   comparison the same *total* amount of buffering is used, redistributed
//!   to be most effective: "without the protocol, best performance results
//!   from allocating at least half of the total buffering resources to the
//!   arrivals queue" (§3).

use std::collections::VecDeque;

use nifdy_net::{Lane, NetPort, Packet, Wire};
use nifdy_sim::{Cycle, NodeId, PacketId, Wakeup};

use crate::nic::{Delivered, Nic, NicStats, OutboundPacket};

/// Shared machinery for the two protocol-free interfaces.
#[derive(Debug)]
struct FifoNic {
    node: NodeId,
    out_cap: usize,
    arr_cap: usize,
    outgoing: VecDeque<OutboundPacket>,
    arrivals: VecDeque<Packet>,
    pkt_counter: u64,
    stats: NicStats,
}

impl FifoNic {
    fn new(node: NodeId, out_cap: usize, arr_cap: usize) -> Self {
        assert!(out_cap > 0, "need at least one outgoing slot");
        assert!(arr_cap > 0, "need at least one arrivals slot");
        FifoNic {
            node,
            out_cap,
            arr_cap,
            outgoing: VecDeque::with_capacity(out_cap),
            arrivals: VecDeque::with_capacity(arr_cap),
            pkt_counter: 0,
            stats: NicStats::default(),
        }
    }

    fn try_send(&mut self, pkt: OutboundPacket) -> bool {
        if self.outgoing.len() >= self.out_cap {
            self.stats.send_rejected.incr();
            return false;
        }
        self.outgoing.push_back(pkt);
        true
    }

    fn poll(&mut self) -> Option<Delivered> {
        let pkt = self.arrivals.pop_front()?;
        self.stats.delivered.incr();
        Some(Delivered {
            src: pkt.src,
            size_words: pkt.size_words,
            user: pkt.user,
        })
    }

    fn step(&mut self, fab: &mut dyn NetPort) {
        // Drain arrivals while there is room; otherwise backpressure holds
        // packets in the fabric.
        while self.arrivals.len() < self.arr_cap {
            let Some(pkt) = fab.eject(self.node, Lane::Request) else {
                break;
            };
            debug_assert!(matches!(pkt.wire, Wire::Data { .. }));
            self.arrivals.push_back(pkt);
        }
        // Head-of-line injection: strict FIFO, no per-destination logic.
        if fab.can_inject(self.node, Lane::Request) {
            if let Some(out) = self.outgoing.pop_front() {
                self.pkt_counter += 1;
                let id = PacketId::new(((self.node.index() as u64) << 40) | self.pkt_counter);
                let mut pkt = Packet::data(id, self.node, out.dst, out.size_words);
                pkt.user = out.user;
                pkt.wire = Wire::Data {
                    bulk_request: false,
                    bulk_exit: false,
                    bulk: None,
                    needs_ack: false,
                    dup_bit: false,
                    piggy_ack: None,
                };
                fab.inject(self.node, pkt);
                self.stats.sent.incr();
            }
        }
    }
}

/// The "no NIFDY" baseline: one outgoing slot, two arrival slots, no
/// protocol.
///
/// # Examples
///
/// ```
/// use nifdy::{Nic, OutboundPacket, PlainNic};
/// use nifdy_sim::{Cycle, NodeId};
///
/// let mut nic = PlainNic::new(NodeId::new(0));
/// assert!(nic.try_send(OutboundPacket::new(NodeId::new(1), 8), Cycle::ZERO));
/// // The single outgoing slot is now full.
/// assert!(!nic.try_send(OutboundPacket::new(NodeId::new(2), 8), Cycle::ZERO));
/// ```
#[derive(Debug)]
pub struct PlainNic(FifoNic);

impl PlainNic {
    /// Creates the minimal interface for `node`.
    pub fn new(node: NodeId) -> Self {
        PlainNic(FifoNic::new(node, 1, 2))
    }
}

/// The "buffering only" baseline: NIFDY's buffer budget without its
/// protocol, split evenly between the outgoing queue and the arrivals queue.
///
/// # Examples
///
/// ```
/// use nifdy::{BufferedNic, NifdyConfig};
/// use nifdy_sim::NodeId;
///
/// let budget = NifdyConfig::mesh().total_buffers();
/// let nic = BufferedNic::new(NodeId::new(0), budget);
/// assert_eq!(nic.outgoing_capacity() + nic.arrivals_capacity(), budget as usize);
/// ```
#[derive(Debug)]
pub struct BufferedNic(FifoNic);

impl BufferedNic {
    /// Creates a buffered interface with `total_buffers` packet buffers,
    /// split half outgoing / half arrivals (arrivals keep the odd buffer).
    ///
    /// # Panics
    ///
    /// Panics if `total_buffers < 2`.
    pub fn new(node: NodeId, total_buffers: u16) -> Self {
        assert!(total_buffers >= 2, "need at least two buffers to split");
        let out = usize::from(total_buffers) / 2;
        let arr = usize::from(total_buffers) - out;
        BufferedNic(FifoNic::new(node, out, arr))
    }

    /// Outgoing queue capacity in packets.
    pub fn outgoing_capacity(&self) -> usize {
        self.0.out_cap
    }

    /// Arrivals queue capacity in packets.
    pub fn arrivals_capacity(&self) -> usize {
        self.0.arr_cap
    }
}

macro_rules! delegate_nic {
    ($ty:ty) => {
        impl Nic for $ty {
            fn node(&self) -> NodeId {
                self.0.node
            }
            fn try_send(&mut self, pkt: OutboundPacket, _now: Cycle) -> bool {
                self.0.try_send(pkt)
            }
            fn has_deliverable(&self) -> bool {
                !self.0.arrivals.is_empty()
            }
            fn poll(&mut self, _now: Cycle) -> Option<Delivered> {
                self.0.poll()
            }
            fn step(&mut self, fab: &mut dyn NetPort) {
                self.0.step(fab)
            }
            fn is_idle(&self) -> bool {
                self.0.outgoing.is_empty() && self.0.arrivals.is_empty()
            }
            fn next_event(&self, _now: Cycle) -> Wakeup {
                // Stateless FIFO: stepping only does work when there is
                // something to inject. Arrivals are drained by the
                // processor's poll, and ejection-ready fabric packets keep
                // the *fabric* reporting `Now`, which forces a step anyway.
                if self.0.outgoing.is_empty() {
                    Wakeup::Quiescent
                } else {
                    Wakeup::Now
                }
            }
            fn stats(&self) -> &NicStats {
                &self.0.stats
            }
        }
    };
}

delegate_nic!(PlainNic);
delegate_nic!(BufferedNic);

#[cfg(test)]
mod tests {
    use super::*;
    use nifdy_net::topology::Mesh;
    use nifdy_net::{Fabric, FabricConfig};

    #[test]
    fn plain_nic_round_trip() {
        let mut fab = Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default());
        let mut a = PlainNic::new(NodeId::new(0));
        let mut b = PlainNic::new(NodeId::new(3));
        assert!(a.try_send(OutboundPacket::new(NodeId::new(3), 8), Cycle::ZERO));
        for _ in 0..5_000 {
            a.step(&mut fab);
            b.step(&mut fab);
            fab.step();
            if let Some(d) = b.poll(fab.now()) {
                assert_eq!(d.src, NodeId::new(0));
                assert!(a.is_idle());
                return;
            }
        }
        panic!("packet never delivered");
    }

    #[test]
    fn buffered_nic_splits_budget() {
        let nic = BufferedNic::new(NodeId::new(0), 9);
        assert_eq!(nic.outgoing_capacity(), 4);
        assert_eq!(nic.arrivals_capacity(), 5);
    }

    #[test]
    fn buffered_nic_accepts_up_to_capacity() {
        let mut nic = BufferedNic::new(NodeId::new(0), 8);
        for i in 0..4 {
            assert!(nic.try_send(OutboundPacket::new(NodeId::new(1 + i), 8), Cycle::ZERO));
        }
        assert!(!nic.try_send(OutboundPacket::new(NodeId::new(9), 8), Cycle::ZERO));
        assert_eq!(nic.stats().send_rejected.get(), 1);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn buffered_nic_rejects_tiny_budget() {
        let _ = BufferedNic::new(NodeId::new(0), 1);
    }
}
