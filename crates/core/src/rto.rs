//! Adaptive retransmission-timeout estimation (RFC 6298 style).

/// Smoothed round-trip estimator for one destination.
///
/// Maintains an exponentially weighted moving average of the round trip
/// (`srtt`) and its mean deviation (`rttvar`) in integer cycles, exactly as
/// TCP's retransmission-timer computation does: the first sample sets
/// `srtt = r, rttvar = r/2`; subsequent samples use gains of 1/8 and 1/4.
/// The suggested timeout is `srtt + 4·rttvar`.
///
/// Karn's rule is the *caller's* job: never feed a sample measured from a
/// packet that was retransmitted (its ack is ambiguous).
///
/// # Examples
///
/// ```
/// use nifdy::RttEstimator;
///
/// let mut est = RttEstimator::default();
/// assert_eq!(est.rto(), None); // no samples yet
/// est.sample(100);
/// assert_eq!(est.rto(), Some(300)); // 100 + 4 * 50
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RttEstimator {
    /// Smoothed RTT in cycles; `None` until the first sample.
    srtt: Option<u64>,
    /// Mean deviation of the RTT in cycles.
    rttvar: u64,
}

impl RttEstimator {
    /// Feeds one round-trip measurement of `rtt` cycles.
    pub fn sample(&mut self, rtt: u64) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let dev = srtt.abs_diff(rtt);
                // rttvar = 3/4 rttvar + 1/4 dev ; srtt = 7/8 srtt + 1/8 rtt
                self.rttvar = (3 * self.rttvar + dev) / 4;
                self.srtt = Some((7 * srtt + rtt) / 8);
            }
        }
    }

    /// The suggested timeout `srtt + 4·rttvar`, or `None` before the first
    /// sample (callers fall back to their configured initial RTO).
    pub fn rto(&self) -> Option<u64> {
        self.srtt.map(|s| s + 4 * self.rttvar)
    }

    /// The smoothed round trip, if any sample has arrived.
    pub fn srtt(&self) -> Option<u64> {
        self.srtt
    }

    /// The current mean deviation of the round trip (zero before the first
    /// sample).
    pub fn rttvar(&self) -> u64 {
        self.rttvar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes_srtt_and_var() {
        let mut est = RttEstimator::default();
        est.sample(200);
        assert_eq!(est.srtt(), Some(200));
        assert_eq!(est.rto(), Some(200 + 4 * 100));
    }

    #[test]
    fn steady_samples_converge_and_tighten() {
        let mut est = RttEstimator::default();
        for _ in 0..100 {
            est.sample(120);
        }
        let srtt = est.srtt().expect("sampled");
        assert!((115..=125).contains(&srtt), "srtt {srtt}");
        // Constant samples drive the deviation toward zero, so the RTO
        // approaches the RTT itself.
        assert!(est.rto().expect("sampled") < 160);
    }

    #[test]
    fn jittery_samples_widen_the_timeout() {
        let mut steady = RttEstimator::default();
        let mut jittery = RttEstimator::default();
        for i in 0..100u64 {
            steady.sample(150);
            jittery.sample(if i % 2 == 0 { 50 } else { 250 });
        }
        assert!(
            jittery.rto().expect("sampled") > steady.rto().expect("sampled"),
            "variance must widen the RTO"
        );
    }

    #[test]
    fn adapts_downward_after_an_outlier() {
        let mut est = RttEstimator::default();
        est.sample(2_000);
        for _ in 0..200 {
            est.sample(100);
        }
        assert!(est.rto().expect("sampled") < 400, "rto {:?}", est.rto());
    }
}
