//! NIFDY — *Network Interface with Flow-control and in-order Delivery*.
//!
//! A production-quality reproduction of the network interface proposed by
//! Callahan & Goldstein, **"NIFDY: A Low Overhead, High Throughput Network
//! Interface"**, ISCA 1995. NIFDY performs *admission control at the edges
//! of the network*: a packet is injected only if the destination is expected
//! to be able to accept it, and packets are presented to each processor in
//! the order they were sent even when the underlying fabric reorders them.
//!
//! The crate provides:
//!
//! * [`NifdyUnit`] — the full protocol engine (OPT, outgoing buffer pool
//!   with rank/eligibility, bulk dialogs with sliding-window reorder
//!   buffers, ack generation, the §6.2 retransmission extension and the
//!   §6.1 no-ack bypass),
//! * [`PlainNic`] / [`BufferedNic`] — the paper's "no NIFDY" and
//!   "buffering only" baselines,
//! * [`NifdyConfig`] — the `O`/`B`/`D`/`W` parameters with per-network
//!   presets from §2.4.3 and Table 3,
//! * [`analysis`] — the §2.4 analytic model (Equations 1–3), tested against
//!   the paper's worked examples,
//! * the [`Nic`] trait through which processor models drive any of the
//!   three interfaces interchangeably.
//!
//! # Examples
//!
//! ```
//! use nifdy::{Nic, NifdyConfig, NifdyUnit, OutboundPacket};
//! use nifdy_net::topology::FatTree;
//! use nifdy_net::{Fabric, FabricConfig, SwitchingPolicy};
//! use nifdy_sim::NodeId;
//!
//! let cfg = FabricConfig::default()
//!     .with_policy(SwitchingPolicy::CutThrough)
//!     .with_vc_buf_flits(8);
//! let mut fab = Fabric::new(Box::new(FatTree::new(16)), cfg);
//! let mut nics: Vec<NifdyUnit> = (0..16)
//!     .map(|i| NifdyUnit::new(NodeId::new(i), NifdyConfig::fat_tree()))
//!     .collect();
//!
//! // Node 0 sends three packets to node 9; NIFDY keeps them in order.
//! for _ in 0..3 {
//!     assert!(nics[0].try_send(OutboundPacket::new(NodeId::new(9), 6), fab.now()));
//! }
//! let mut got = 0;
//! while got < 3 {
//!     for nic in &mut nics {
//!         nic.step(&mut fab);
//!     }
//!     fab.step();
//!     if nics[9].poll(fab.now()).is_some() {
//!         got += 1;
//!     }
//!     assert!(fab.now().as_u64() < 50_000);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod baseline;
mod config;
mod nic;
mod rto;
mod unit;

pub use baseline::{BufferedNic, PlainNic};
pub use config::{ConfigError, NifdyConfig, NifdyConfigBuilder};
pub use nic::{
    Delivered, DeliveryFailure, FailureKind, Nic, NicOccupancy, NicStats, OutboundPacket,
};
pub use rto::RttEstimator;
pub use unit::NifdyUnit;
