//! Property-based tests: the NIFDY delivery invariants must hold for
//! arbitrary message schedules, fabrics, parameters, and loss rates.
//!
//! Invariants checked:
//! 1. **Exactly-once**: every offered packet is delivered exactly once.
//! 2. **In-order per pair**: packets from sender S arrive at receiver R in
//!    the order S sent them.
//! 3. **Window safety**: a sender never has more than `W` unacknowledged
//!    bulk packets.
//! 4. **OPT safety**: never more than `O` outstanding scalar packets.

use nifdy::{Nic, NifdyConfig, NifdyUnit, OutboundPacket};
use nifdy_net::topology::{Butterfly, FatTree, Mesh, Topology, Torus};
use nifdy_net::{Fabric, FabricConfig, FaultConfig, GilbertElliott, SwitchingPolicy, UserData};
use nifdy_sim::NodeId;
use proptest::prelude::*;

/// One sender's workload: destination and packet count, bulk preference.
#[derive(Debug, Clone)]
struct Stream {
    src: usize,
    dst: usize,
    count: u32,
    bulk: bool,
}

#[derive(Debug, Clone)]
struct Scenario {
    topo: u8,
    streams: Vec<Stream>,
    o: u8,
    b: u8,
    w: u8,
    drop: bool,
    /// Gilbert–Elliott bursty loss, mean percent (fault plane), plus an
    /// independent ack-lane drop probability in percent.
    burst_pct: u8,
    ack_drop_pct: u8,
    /// Exercise the adaptive RTO instead of the fixed timeout.
    adaptive: bool,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        0u8..4,
        proptest::collection::vec((0usize..16, 0usize..16, 1u32..25, any::<bool>()), 1..5),
        1u8..6,
        1u8..6,
        prop_oneof![Just(2u8), Just(4), Just(8)],
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(|(topo, raw, o, b, w, drop, seed)| Scenario {
            topo,
            streams: map_streams(raw),
            o,
            b,
            w,
            drop,
            burst_pct: 0,
            ack_drop_pct: 0,
            adaptive: false,
            seed,
        })
}

fn map_streams(raw: Vec<(usize, usize, u32, bool)>) -> Vec<Stream> {
    raw.into_iter()
        .map(|(src, dst, count, bulk)| Stream {
            src,
            dst: if dst == src { (dst + 1) % 16 } else { dst },
            count,
            bulk,
        })
        .collect()
}

/// Scenarios for the fault plane: bursty (Gilbert–Elliott) loss that also
/// hits acknowledgments, an independent ack-lane lottery, and either RTO
/// flavor. Restricted to the order-preserving fabrics (mesh, torus): the
/// §6.2 alternating-bit duplicate filter assumes the fabric never reorders
/// packets of one (src, dst) pair, which the reordering fat tree and
/// multibutterfly do not guarantee.
fn lossy_scenario() -> impl Strategy<Value = Scenario> {
    (
        0u8..2,
        proptest::collection::vec((0usize..16, 0usize..16, 1u32..20, any::<bool>()), 1..4),
        1u8..6,
        1u8..6,
        prop_oneof![Just(2u8), Just(4), Just(8)],
        2u8..15,
        0u8..8,
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(
            |(topo, raw, o, b, w, burst_pct, ack_drop_pct, adaptive, seed)| Scenario {
                topo,
                streams: map_streams(raw),
                o,
                b,
                w,
                drop: false,
                burst_pct,
                ack_drop_pct,
                adaptive,
                seed,
            },
        )
}

fn build_fabric(sc: &Scenario) -> Fabric {
    let topo: Box<dyn Topology> = match sc.topo {
        0 => Box::new(Mesh::d2(4, 4)),
        1 => Box::new(Torus::d2(4, 4)),
        2 => Box::new(FatTree::new(16)),
        _ => Box::new(Butterfly::new(16, 2, sc.seed)),
    };
    let mut cfg = FabricConfig::default().with_seed(sc.seed);
    if sc.topo == 1 {
        cfg = cfg.with_vcs_per_lane(2);
    }
    if sc.topo == 2 {
        cfg = cfg
            .with_policy(SwitchingPolicy::CutThrough)
            .with_vc_buf_flits(8);
    }
    if sc.drop {
        cfg = cfg.with_drop_prob(0.08);
    }
    if sc.burst_pct > 0 || sc.ack_drop_pct > 0 {
        let mut fault = FaultConfig::default();
        if sc.burst_pct > 0 {
            fault = fault.with_burst(GilbertElliott::with_mean_loss(
                f64::from(sc.burst_pct) / 100.0,
            ));
        }
        if sc.ack_drop_pct > 0 {
            fault = fault.with_ack_drop_prob(f64::from(sc.ack_drop_pct) / 100.0);
        }
        cfg = cfg.with_fault(fault);
    }
    Fabric::new(topo, cfg)
}

fn run_scenario(sc: Scenario) {
    let mut fab = build_fabric(&sc);
    let mut nic_cfg = NifdyConfig::builder()
        .opt_entries(sc.o)
        .pool_entries(sc.b)
        .max_dialogs(1)
        .window(sc.w)
        .build()
        .expect("generated scenario parameters must be valid");
    if sc.drop || sc.burst_pct > 0 || sc.ack_drop_pct > 0 {
        nic_cfg = nic_cfg.with_retx_timeout(2_500);
    }
    if sc.adaptive {
        nic_cfg = nic_cfg.with_adaptive_rto(true);
    }
    let mut nics: Vec<NifdyUnit> = (0..16)
        .map(|i| NifdyUnit::new(NodeId::new(i), nic_cfg.clone()))
        .collect();

    let total: u32 = sc.streams.iter().map(|s| s.count).sum();
    let mut cursors = vec![0u32; sc.streams.len()];
    let mut received: Vec<Vec<(usize, u64, u32)>> = vec![Vec::new(); 16]; // (src, msg, idx)
    let mut delivered = 0u32;
    let o_limit = usize::from(sc.o);

    let limit = 2_000_000u64;
    while delivered < total {
        for (k, st) in sc.streams.iter().enumerate() {
            if cursors[k] < st.count {
                let pkt = OutboundPacket::new(NodeId::new(st.dst), 8)
                    .with_bulk(st.bulk)
                    .with_user(UserData {
                        msg_id: k as u64,
                        pkt_index: cursors[k],
                        msg_packets: st.count,
                        user_words: 6,
                    });
                if nics[st.src].try_send(pkt, fab.now()) {
                    cursors[k] += 1;
                }
            }
        }
        for nic in &mut nics {
            nic.step(&mut fab);
            // Invariants 3 and 4.
            assert!(nic.opt_occupancy() <= o_limit, "OPT overflow");
            if let Some((unacked, window)) = nic.bulk_outstanding() {
                assert!(unacked <= u64::from(window), "window overflow");
            }
        }
        fab.step();
        for (i, nic) in nics.iter_mut().enumerate() {
            if let Some(d) = nic.poll(fab.now()) {
                received[i].push((d.src.index(), d.user.msg_id, d.user.pkt_index));
                delivered += 1;
            }
        }
        assert!(
            fab.now().as_u64() < limit,
            "deadlock/livelock: {delivered}/{total} delivered in {:?}",
            sc
        );
    }

    // Invariant 1: exactly once (counts match per stream).
    for (k, st) in sc.streams.iter().enumerate() {
        let n = received[st.dst]
            .iter()
            .filter(|(s, m, _)| *s == st.src && *m == k as u64)
            .count();
        assert_eq!(n, st.count as usize, "stream {k} miscounted");
    }
    // Invariant 2: per-(src,dst) order. All streams from the same src to the
    // same dst must interleave in offered order; since each stream has its
    // own msg_id and streams from one src are offered round-robin, we check
    // order *within* each stream (global pairwise order across streams of
    // the same pair is covered by the protocol tests).
    for (k, st) in sc.streams.iter().enumerate() {
        let idxs: Vec<u32> = received[st.dst]
            .iter()
            .filter(|(s, m, _)| *s == st.src && *m == k as u64)
            .map(|(_, _, i)| *i)
            .collect();
        assert!(
            idxs.windows(2).all(|w| w[0] < w[1]),
            "stream {k} delivered out of order: {idxs:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 40,
    })]

    #[test]
    fn delivery_invariants_hold(sc in scenario()) {
        run_scenario(sc);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 40,
    })]

    /// Exactly-once, in-order delivery survives the fault plane: bursty
    /// losses that take out data packets *and* their acknowledgments, an
    /// independent ack-lane lottery, retransmission with either the fixed
    /// or the adaptive RTO, scalar and bulk streams.
    #[test]
    fn delivery_invariants_hold_under_bursty_loss(sc in lossy_scenario()) {
        run_scenario(sc);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 20,
    })]

    /// The analytic window formula is monotone and safe: longer round trips
    /// never shrink the required window, and the result is always even.
    #[test]
    fn window_formula_is_monotone(rt1 in 1u64..2_000, rt2 in 1u64..2_000, tl in 1u64..500) {
        let (lo, hi) = (rt1.min(rt2), rt1.max(rt2));
        let w_lo = nifdy::analysis::min_window_combined_acks(lo, tl);
        let w_hi = nifdy::analysis::min_window_combined_acks(hi, tl);
        prop_assert!(w_lo <= w_hi);
        prop_assert!(w_lo.is_multiple_of(2) && w_lo >= 2);
    }
}
