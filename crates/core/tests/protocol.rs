#![allow(clippy::needless_range_loop)] // index loops mirror node ids

//! Protocol-level integration tests for the NIFDY unit over real fabrics.

use nifdy::{BufferedNic, Nic, NifdyConfig, NifdyUnit, OutboundPacket, PlainNic};
use nifdy_net::topology::{Butterfly, FatTree, Mesh};
use nifdy_net::{Fabric, FabricConfig, SwitchingPolicy, UserData};
use nifdy_sim::NodeId;

/// A minimal test rig: one NIC per node, all stepped together with the
/// fabric, polling every node every cycle.
struct Bed<N: Nic> {
    fab: Fabric,
    nics: Vec<N>,
}

impl<N: Nic> Bed<N> {
    fn new(fab: Fabric, mk: impl Fn(NodeId) -> N) -> Self {
        let nics = (0..fab.num_nodes()).map(|i| mk(NodeId::new(i))).collect();
        Bed { fab, nics }
    }

    /// One cycle: NICs step, fabric steps, every node polls once; received
    /// packets are appended to `sink[node]`.
    fn step(&mut self, sink: &mut [Vec<(NodeId, UserData)>]) {
        for nic in &mut self.nics {
            nic.step(&mut self.fab);
        }
        self.fab.step();
        for (i, nic) in self.nics.iter_mut().enumerate() {
            if let Some(d) = nic.poll(self.fab.now()) {
                sink[i].push((d.src, d.user));
            }
        }
    }

    fn run_until<F: Fn(&[Vec<(NodeId, UserData)>]) -> bool>(
        &mut self,
        sink: &mut [Vec<(NodeId, UserData)>],
        limit: u64,
        done: F,
    ) {
        while !done(sink) {
            self.step(sink);
            assert!(
                self.fab.now().as_u64() < limit,
                "timed out at {} (delivered so far: {:?})",
                self.fab.now(),
                sink.iter().map(Vec::len).collect::<Vec<_>>()
            );
        }
    }
}

fn msg(dst: usize, idx: u32, total: u32, bulk: bool) -> OutboundPacket {
    OutboundPacket::new(NodeId::new(dst), 8)
        .with_bulk(bulk)
        .with_user(UserData {
            msg_id: 1,
            pkt_index: idx,
            msg_packets: total,
            user_words: 6,
        })
}

fn sink(n: usize) -> Vec<Vec<(NodeId, UserData)>> {
    vec![Vec::new(); n]
}

#[test]
fn scalar_traffic_arrives_in_order_and_opt_stays_bounded() {
    let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
    let cfg = NifdyConfig::mesh();
    let o = cfg.opt_entries as usize;
    let mut bed = Bed::new(fab, |n| NifdyUnit::new(n, NifdyConfig::mesh()));
    let mut got = sink(16);

    // Node 0 streams 20 scalar packets to node 15, interleaved with 10 to
    // node 12 — the pool must interleave without breaking per-pair order.
    for i in 0..20 {
        while !bed.nics[0].try_send(msg(15, i, 20, false), bed.fab.now()) {
            bed.step(&mut got);
        }
        if i < 10 {
            while !bed.nics[0].try_send(msg(12, i, 10, false), bed.fab.now()) {
                bed.step(&mut got);
            }
        }
        assert!(bed.nics[0].opt_occupancy() <= o, "OPT overflow");
    }
    bed.run_until(&mut got, 2_000_000, |s| {
        s[15].len() == 20 && s[12].len() == 10
    });
    for (k, (src, u)) in got[15].iter().enumerate() {
        assert_eq!(*src, NodeId::new(0));
        assert_eq!(u.pkt_index, k as u32, "out-of-order delivery at {k}");
    }
    for (k, (_, u)) in got[12].iter().enumerate() {
        assert_eq!(u.pkt_index, k as u32);
    }
}

#[test]
fn bulk_dialog_keeps_order_over_a_reordering_multibutterfly() {
    let fab = Fabric::new(
        Box::new(Butterfly::new(16, 2, 11)),
        FabricConfig::default().with_seed(3),
    );
    let mut bed = Bed::new(fab, |n| NifdyUnit::new(n, NifdyConfig::fat_tree()));
    let mut got = sink(16);

    let total = 60u32;
    let mut queued = 0u32;
    while got[9].len() < total as usize {
        while queued < total && bed.nics[0].try_send(msg(9, queued, total, true), bed.fab.now()) {
            queued += 1;
        }
        if let Some((unacked, window)) = bed.nics[0].bulk_outstanding() {
            assert!(unacked <= u64::from(window), "window violated");
        }
        bed.step(&mut got);
        assert!(bed.fab.now().as_u64() < 1_000_000, "timed out");
    }
    for (k, (src, u)) in got[9].iter().enumerate() {
        assert_eq!(*src, NodeId::new(0));
        assert_eq!(u.pkt_index, k as u32, "bulk reordering leaked through");
    }
    let s = bed.nics[0].stats();
    assert!(s.sent_bulk.get() > 0, "bulk mode never engaged");
    assert_eq!(bed.nics[9].stats().dialogs_granted.get(), 1);
    // Combined acks: far fewer acks than packets once bulk mode engages.
    assert!(
        bed.nics[9].stats().acks_sent.get() < u64::from(total),
        "bulk acks were not combined"
    );
}

#[test]
fn dialog_slots_are_limited_and_rejections_fall_back_to_scalar() {
    // D = 1 at the receiver; two senders both request bulk.
    let fab = Fabric::new(
        Box::new(FatTree::new(16)),
        FabricConfig::default()
            .with_policy(SwitchingPolicy::CutThrough)
            .with_vc_buf_flits(8),
    );
    let mut bed = Bed::new(fab, |n| NifdyUnit::new(n, NifdyConfig::fat_tree()));
    let mut got = sink(16);

    let total = 30u32;
    let mut queued = [0u32; 2];
    while got[5].len() < 2 * total as usize {
        for (s, node) in [(0usize, 1usize), (1, 2)] {
            while queued[s] < total
                && bed.nics[node].try_send(msg(5, queued[s], total, true), bed.fab.now())
            {
                queued[s] += 1;
            }
        }
        bed.step(&mut got);
        assert!(bed.fab.now().as_u64() < 2_000_000, "timed out");
    }
    // Per-sender order must hold even for the rejected (scalar) sender.
    for src_node in [1usize, 2] {
        let seq: Vec<u32> = got[5]
            .iter()
            .filter(|(s, _)| *s == NodeId::new(src_node))
            .map(|(_, u)| u.pkt_index)
            .collect();
        assert_eq!(seq.len(), total as usize);
        assert!(
            seq.windows(2).all(|w| w[0] < w[1]),
            "order broken for {src_node}"
        );
    }
    let rejections: u64 = [1, 2]
        .iter()
        .map(|&n| bed.nics[n].stats().dialogs_rejected.get())
        .sum();
    let granted = bed.nics[5].stats().dialogs_granted.get();
    assert!(granted >= 1, "nobody got the dialog");
    assert!(
        rejections >= 1 || granted >= 2,
        "with D=1 and concurrent requests, someone is rejected (or the slot \
         was reused sequentially: granted={granted} rejections={rejections})"
    );
}

#[test]
fn dialogs_are_regranted_after_exit() {
    let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
    let mut bed = Bed::new(fab, |n| NifdyUnit::new(n, NifdyConfig::mesh()));
    let mut got = sink(16);

    for round in 0..3u32 {
        for i in 0..12 {
            while !bed.nics[0].try_send(msg(15, round * 12 + i, 12, true), bed.fab.now()) {
                bed.step(&mut got);
            }
        }
        let want = ((round + 1) * 12) as usize;
        bed.run_until(&mut got, 3_000_000, |s| s[15].len() >= want);
        // Dialog must fully close between rounds.
        while bed.nics[0].in_bulk_dialog() {
            bed.step(&mut got);
            assert!(bed.fab.now().as_u64() < 3_000_000, "dialog never closed");
        }
    }
    assert!(
        bed.nics[15].stats().dialogs_granted.get() >= 2,
        "dialog was not re-granted: {}",
        bed.nics[15].stats().dialogs_granted.get()
    );
    let seq: Vec<u32> = got[15].iter().map(|(_, u)| u.pkt_index).collect();
    assert!(
        seq.windows(2).all(|w| w[0] < w[1]),
        "order broken across dialogs"
    );
}

#[test]
fn retransmission_delivers_exactly_once_in_order_over_a_lossy_fabric() {
    let fab = Fabric::new(
        Box::new(Mesh::d2(4, 4)),
        FabricConfig::default().with_drop_prob(0.15).with_seed(7),
    );
    let cfg = NifdyConfig::mesh().with_retx_timeout(3_000);
    let mut bed = Bed::new(fab, move |n| NifdyUnit::new(n, cfg.clone()));
    let mut got = sink(16);

    let total = 25u32;
    let mut queued = 0u32;
    while got[10].len() < total as usize {
        while queued < total && bed.nics[3].try_send(msg(10, queued, total, false), bed.fab.now()) {
            queued += 1;
        }
        bed.step(&mut got);
        assert!(bed.fab.now().as_u64() < 5_000_000, "lossy run timed out");
    }
    // Run on a while to let late duplicates arrive — none may be delivered.
    for _ in 0..50_000 {
        bed.step(&mut got);
    }
    assert_eq!(got[10].len(), total as usize, "duplicate delivered");
    for (k, (_, u)) in got[10].iter().enumerate() {
        assert_eq!(u.pkt_index, k as u32, "order broken under loss");
    }
    assert!(
        bed.nics[3].stats().retransmitted.get() > 0,
        "loss at 15% must trigger retransmissions"
    );
}

#[test]
fn bulk_retransmission_survives_loss() {
    let fab = Fabric::new(
        Box::new(Mesh::d2(4, 4)),
        FabricConfig::default().with_drop_prob(0.10).with_seed(13),
    );
    let cfg = NifdyConfig::mesh().with_retx_timeout(4_000);
    let mut bed = Bed::new(fab, move |n| NifdyUnit::new(n, cfg.clone()));
    let mut got = sink(16);

    let total = 40u32;
    let mut queued = 0u32;
    while got[12].len() < total as usize {
        while queued < total && bed.nics[1].try_send(msg(12, queued, total, true), bed.fab.now()) {
            queued += 1;
        }
        bed.step(&mut got);
        assert!(
            bed.fab.now().as_u64() < 10_000_000,
            "bulk lossy run timed out"
        );
    }
    for _ in 0..80_000 {
        bed.step(&mut got);
    }
    assert_eq!(got[12].len(), total as usize, "duplicate bulk delivery");
    for (k, (_, u)) in got[12].iter().enumerate() {
        assert_eq!(u.pkt_index, k as u32);
    }
}

#[test]
fn no_ack_bypass_sends_without_protocol_state() {
    let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
    let mut bed = Bed::new(fab, |n| NifdyUnit::new(n, NifdyConfig::mesh()));
    let mut got = sink(16);

    for i in 0..10 {
        let mut p = msg(15, i, 10, false);
        p.needs_ack = false;
        while !bed.nics[0].try_send(p, bed.fab.now()) {
            bed.step(&mut got);
        }
        assert_eq!(
            bed.nics[0].opt_occupancy(),
            0,
            "no-ack packets must skip the OPT"
        );
    }
    bed.run_until(&mut got, 1_000_000, |s| s[15].len() == 10);
    assert_eq!(bed.nics[15].stats().acks_sent.get(), 0, "no acks expected");
    assert_eq!(bed.nics[0].stats().acks_received.get(), 0);
}

#[test]
fn ack_on_insert_variant_still_preserves_order() {
    let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
    let cfg = NifdyConfig::mesh().with_ack_on_insert(true);
    let mut bed = Bed::new(fab, move |n| NifdyUnit::new(n, cfg.clone()));
    let mut got = sink(16);

    let mut queued = 0u32;
    while got[15].len() < 15 {
        while queued < 15 && bed.nics[0].try_send(msg(15, queued, 15, false), bed.fab.now()) {
            queued += 1;
        }
        bed.step(&mut got);
        assert!(bed.fab.now().as_u64() < 1_000_000);
    }
    for (k, (_, u)) in got[15].iter().enumerate() {
        assert_eq!(u.pkt_index, k as u32);
    }
}

#[test]
fn nifdy_keeps_sending_to_ready_destinations_past_a_slow_receiver() {
    // The paper (§2): "if backpressure is the only way of telling when to
    // slow down, a sender will continue injecting packets to a slow receiver
    // until its entrance to the network is blocked, at which point it is
    // usually blocked from sending to any other destination."
    //
    // Six senders each queue a 4-packet message to a slow receiver (node 5,
    // polls every 400 cycles) followed by a long message to a fast receiver
    // in their own column (disjoint first hop under XY routing). Without the
    // protocol, 24 packets converge on node 5, wedge the senders' injection
    // channels, and the fast traffic stalls behind them. With NIFDY, each
    // sender keeps at most one packet outstanding to node 5 and its fast
    // stream flows.
    const SENDERS: [usize; 6] = [0, 2, 3, 8, 10, 11];
    const SLOW: usize = 5;
    const CYCLES: u64 = 8_000;

    fn run(use_nifdy: bool) -> usize {
        let mut fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let mut nics: Vec<Box<dyn Nic>> = (0..16)
            .map(|i| -> Box<dyn Nic> {
                if use_nifdy {
                    Box::new(NifdyUnit::new(NodeId::new(i), NifdyConfig::mesh()))
                } else {
                    Box::new(BufferedNic::new(
                        NodeId::new(i),
                        NifdyConfig::mesh().total_buffers(),
                    ))
                }
            })
            .collect();
        // Per-sender script: 4 packets to SLOW, then 30 to the fast column
        // target, offered strictly in order.
        let mut scripts: Vec<Vec<usize>> = Vec::new();
        for &s in &SENDERS {
            let fast = 12 + s % 4; // (x_s, 3): same column, disjoint first hop
            let mut script = vec![SLOW; 4];
            script.extend(std::iter::repeat_n(fast, 30));
            scripts.push(script);
        }
        let mut cursor = vec![0usize; SENDERS.len()];
        let mut fast_received = 0usize;
        for cycle in 0..CYCLES {
            for (k, &s) in SENDERS.iter().enumerate() {
                if cursor[k] < scripts[k].len() {
                    let dst = scripts[k][cursor[k]];
                    if nics[s].try_send(msg(dst, cursor[k] as u32, 34, false), fab.now()) {
                        cursor[k] += 1;
                    }
                }
            }
            for nic in &mut nics {
                nic.step(&mut fab);
            }
            fab.step();
            for i in 0..16 {
                if i == SLOW {
                    // Unresponsive receiver: polls rarely.
                    if cycle % 2_000 == 0 {
                        let _ = nics[i].poll(fab.now());
                    }
                    continue;
                }
                if nics[i].poll(fab.now()).is_some() && i >= 12 {
                    fast_received += 1;
                }
            }
        }
        fast_received
    }

    let with_nifdy = run(true);
    let with_fifo = run(false);
    assert!(
        with_nifdy >= 2 * with_fifo.max(1),
        "NIFDY ({with_nifdy}) should far outpace the buffered FIFO ({with_fifo}) \
         to the ready receivers"
    );
}

#[test]
fn plain_nic_delivers_everything_eventually() {
    let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
    let mut bed = Bed::new(fab, PlainNic::new);
    let mut got = sink(16);
    let mut queued = 0u32;
    while got[15].len() < 20 {
        while queued < 20 && bed.nics[0].try_send(msg(15, queued, 20, false), bed.fab.now()) {
            queued += 1;
        }
        bed.step(&mut got);
        assert!(bed.fab.now().as_u64() < 1_000_000);
    }
}

#[test]
fn nifdy_units_go_idle_after_a_burst() {
    let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
    let mut bed = Bed::new(fab, |n| NifdyUnit::new(n, NifdyConfig::mesh()));
    let mut got = sink(16);
    for i in 0..8 {
        while !bed.nics[2].try_send(msg(13, i, 8, true), bed.fab.now()) {
            bed.step(&mut got);
        }
    }
    bed.run_until(&mut got, 1_000_000, |s| s[13].len() == 8);
    for _ in 0..20_000 {
        bed.step(&mut got);
    }
    for (i, nic) in bed.nics.iter().enumerate() {
        assert!(nic.is_idle(), "nic {i} not idle after drain");
    }
}

#[test]
fn piggybacked_acks_ride_replies_in_request_reply_traffic() {
    // §6.1: "if the sender is waiting for a reply it probably won't have any
    // other packets for the destination until the reply is received" — so
    // the ack can ride the reply. Ping-pong between two nodes: each receive
    // immediately queues a response, which is exactly when the ack for the
    // received packet is pending.
    fn run(piggyback: bool) -> (u64, u64) {
        let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
        let cfg = NifdyConfig::mesh().with_piggyback_acks(piggyback);
        let mut bed = Bed::new(fab, move |n| NifdyUnit::new(n, cfg.clone()));
        let mut got = sink(16);
        let rounds = 60usize;
        bed.nics[15].try_send(msg(0, 0, 1, false), bed.fab.now());
        let mut owed = [0usize; 16]; // responses each node still owes
        let mut exchanged = 0usize;
        let mut seen = [0usize; 16];
        while exchanged < rounds {
            bed.step(&mut got);
            for node in [0usize, 15] {
                if got[node].len() > seen[node] {
                    owed[node] += got[node].len() - seen[node];
                    seen[node] = got[node].len();
                }
                while owed[node] > 0 {
                    let peer = if node == 0 { 15 } else { 0 };
                    if bed.nics[node].try_send(msg(peer, exchanged as u32, 1, false), bed.fab.now())
                    {
                        owed[node] -= 1;
                        exchanged += 1;
                    } else {
                        break;
                    }
                }
            }
            assert!(bed.fab.now().as_u64() < 3_000_000, "ping-pong timed out");
        }
        let standalone: u64 = [0, 15]
            .iter()
            .map(|&n| bed.nics[n].stats().acks_sent.get())
            .sum();
        let piggybacked: u64 = [0, 15]
            .iter()
            .map(|&n| bed.nics[n].stats().acks_piggybacked.get())
            .sum();
        (standalone, piggybacked)
    }

    let (plain_acks, plain_piggy) = run(false);
    let (piggy_acks, piggy_piggy) = run(true);
    assert_eq!(plain_piggy, 0);
    assert!(piggy_piggy > 0, "piggybacking never engaged");
    assert!(
        piggy_acks < plain_acks,
        "standalone acks should drop: {piggy_acks} vs {plain_acks}"
    );
}

#[test]
fn piggybacked_acks_preserve_order_and_exactly_once_under_loss() {
    let fab = Fabric::new(
        Box::new(Mesh::d2(4, 4)),
        FabricConfig::default().with_drop_prob(0.1).with_seed(21),
    );
    let cfg = NifdyConfig::mesh()
        .with_piggyback_acks(true)
        .with_retx_timeout(3_000);
    let mut bed = Bed::new(fab, move |n| NifdyUnit::new(n, cfg.clone()));
    let mut got = sink(16);
    let total = 30u32;
    let mut q = [0u32; 2];
    while got[2].len() < total as usize || got[13].len() < total as usize {
        for (k, (src, dst)) in [(13usize, 2usize), (2, 13)].iter().enumerate() {
            while q[k] < total
                && bed.nics[*src].try_send(msg(*dst, q[k], total, true), bed.fab.now())
            {
                q[k] += 1;
            }
        }
        bed.step(&mut got);
        assert!(bed.fab.now().as_u64() < 10_000_000, "timed out");
    }
    for _ in 0..50_000 {
        bed.step(&mut got);
    }
    for node in [2usize, 13] {
        assert_eq!(got[node].len(), total as usize, "node {node}");
        for (k, (_, u)) in got[node].iter().enumerate() {
            assert_eq!(u.pkt_index, k as u32, "order broken at node {node}");
        }
    }
}

#[test]
fn bulk_dialog_longer_than_the_wire_sequence_space_stays_correct() {
    // 600 packets through one dialog: absolute sequence numbers exceed the
    // 256-value wire space several times over, exercising the modulo
    // reconstruction at both ends.
    let fab = Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default());
    let mut bed = Bed::new(fab, |n| NifdyUnit::new(n, NifdyConfig::fat_tree()));
    let mut got = sink(4);
    let total = 600u32;
    let mut queued = 0u32;
    while got[3].len() < total as usize {
        while queued < total && bed.nics[0].try_send(msg(3, queued, total, true), bed.fab.now()) {
            queued += 1;
        }
        bed.step(&mut got);
        assert!(bed.fab.now().as_u64() < 3_000_000, "timed out");
    }
    for (k, (_, u)) in got[3].iter().enumerate() {
        assert_eq!(u.pkt_index, k as u32, "wraparound corrupted ordering");
    }
    assert_eq!(bed.nics[3].stats().dialogs_granted.get(), 1);
}

#[test]
fn opt_full_blocks_new_destinations_until_acks_return() {
    // O = 1: a second destination may not launch while the first is
    // unacknowledged, but must launch afterwards.
    let fab = Fabric::new(Box::new(Mesh::d2(4, 4)), FabricConfig::default());
    let cfg = NifdyConfig::builder()
        .opt_entries(1)
        .pool_entries(4)
        .max_dialogs(0)
        .window(2)
        .build()
        .expect("valid test config");
    let mut bed = Bed::new(fab, move |n| NifdyUnit::new(n, cfg.clone()));
    let mut got = sink(16);
    assert!(bed.nics[0].try_send(msg(15, 0, 1, false), bed.fab.now()));
    assert!(bed.nics[0].try_send(msg(12, 0, 1, false), bed.fab.now()));
    // Step until the first packet is in flight.
    while bed.nics[0].opt_occupancy() == 0 {
        bed.step(&mut got);
    }
    assert_eq!(bed.nics[0].opt_occupancy(), 1, "O=1 exceeded");
    bed.run_until(&mut got, 500_000, |s| s[15].len() == 1 && s[12].len() == 1);
}

#[test]
fn bulk_mode_is_never_entered_without_backlog() {
    // A lone want_bulk packet (no queued follow-up) must not put a request
    // on the wire, so no dialog slot is wasted at the receiver.
    let fab = Fabric::new(Box::new(Mesh::d2(2, 2)), FabricConfig::default());
    let mut bed = Bed::new(fab, |n| NifdyUnit::new(n, NifdyConfig::mesh()));
    let mut got = sink(4);
    assert!(bed.nics[0].try_send(msg(3, 0, 1, true), bed.fab.now()));
    bed.run_until(&mut got, 100_000, |s| s[3].len() == 1);
    for _ in 0..5_000 {
        bed.step(&mut got);
    }
    assert_eq!(bed.nics[3].stats().dialogs_granted.get(), 0);
    assert!(!bed.nics[0].in_bulk_dialog());
}

#[test]
fn reorder_window_is_genuinely_exercised_on_the_fat_tree() {
    // Cross traffic into the same quadrant makes the adaptive fat tree
    // deliver a bulk stream out of order; NIFDY's window must both absorb
    // the reordering (counter > 0) and still present packets in order.
    let fab = Fabric::new(
        Box::new(FatTree::new(64)),
        FabricConfig::default()
            .with_policy(SwitchingPolicy::CutThrough)
            .with_vc_buf_flits(8)
            .with_seed(3),
    );
    let mut bed = Bed::new(fab, |n| {
        NifdyUnit::new(
            n,
            NifdyConfig::builder()
                .opt_entries(8)
                .pool_entries(8)
                .max_dialogs(1)
                .window(8)
                .build()
                .expect("valid test config"),
        )
    });
    let mut got = sink(64);
    let total = 150u32;
    let mut queued = 0u32;
    let mut bg = vec![0u32; 64];
    while got[63].iter().filter(|(s, _)| *s == NodeId::new(0)).count() < total as usize {
        while queued < total && bed.nics[0].try_send(msg(63, queued, total, true), bed.fab.now()) {
            queued += 1;
        }
        for s in 1..32 {
            if bg[s] < 60 {
                let dst = 60 + (s % 4);
                if bed.nics[s].try_send(msg(dst, bg[s], 60, false), bed.fab.now()) {
                    bg[s] += 1;
                }
            }
        }
        bed.step(&mut got);
        assert!(bed.fab.now().as_u64() < 2_000_000, "timed out");
    }
    let stream: Vec<u32> = got[63]
        .iter()
        .filter(|(s, _)| *s == NodeId::new(0))
        .map(|(_, u)| u.pkt_index)
        .collect();
    assert!(stream.windows(2).all(|w| w[0] < w[1]), "order leaked");
    assert!(
        bed.nics[63].stats().bulk_out_of_order.get() > 0,
        "the network never reordered — this test exercises nothing"
    );
}
