//! End-to-end crash recovery: a supervised endpoint is killed mid-run —
//! losing every byte of protocol state — restarts after a bounded backoff,
//! and the two-node rotation workload still completes. Recovery must be
//! *visible*: the flight recorder has to show the restart, the survivor's
//! epoch-based detection, and the typed teardown of state entangled with
//! the dead incarnation.

use std::collections::BTreeSet;

use nifdy::{NifdyConfig, OutboundPacket};
use nifdy_net::UserData;
use nifdy_sim::{Cycle, NodeId, Wakeup};
use nifdy_trace::{TraceConfig, TraceHandle};
use nifdy_wire::{LoopbackHub, SupervisedEndpoint, Supervisor, SupervisorConfig, WireEndpoint};

const MESSAGES: u64 = 3;
const PACKETS_PER_MESSAGE: u32 = 4;
const SIZE_WORDS: u16 = 6;

fn node(i: usize) -> NodeId {
    NodeId::new(i)
}

fn workload(src: usize) -> Vec<UserData> {
    let mut users = Vec::new();
    for m in 0..MESSAGES {
        for p in 0..PACKETS_PER_MESSAGE {
            users.push(UserData {
                msg_id: ((src as u64) << 32) | m,
                pkt_index: p,
                msg_packets: PACKETS_PER_MESSAGE,
                user_words: SIZE_WORDS.saturating_sub(2),
            });
        }
    }
    users
}

fn protocol_config() -> NifdyConfig {
    NifdyConfig::mesh()
        .with_retx_timeout(64)
        .with_adaptive_rto(true)
        .with_retx_budget(6)
}

/// The application-level reliability shim a real system would run above
/// the interface: anything not confirmed delivered gets re-offered after a
/// failure. The test's "omniscient" confirmation (reading the receiver's
/// delivered set directly) stands in for an app-level acknowledgment.
fn refill(remaining: &mut Vec<UserData>, all: &[UserData], delivered: &BTreeSet<(u64, u32)>) {
    remaining.clear();
    remaining.extend(
        all.iter()
            .filter(|u| !delivered.contains(&(u.msg_id, u.pkt_index)))
            .copied(),
    );
    remaining.reverse(); // feed via pop() in send order
}

#[test]
fn killed_endpoint_recovers_and_the_rotation_completes() {
    let hub = LoopbackHub::new(2, 1);
    let sup_cfg = SupervisorConfig::default()
        .with_heartbeat_every(16)
        .with_peer_timeout(100)
        // Backoff longer than the peer timeout so the survivor visibly
        // flags the peer down before the new incarnation announces itself.
        .with_backoff(200, 512, 8);
    let trace = TraceHandle::recording(TraceConfig::new().with_capacity_per_node(1 << 16));

    // Node 0 survives the whole run.
    let mut n0 = SupervisedEndpoint::new(
        WireEndpoint::new(node(0), protocol_config(), hub.endpoint(node(0))),
        sup_cfg,
        0,
    );
    n0.watch(node(1));
    n0.attach_trace(trace.clone());

    // Node 1 runs under a supervisor and will be killed mid-run.
    let hub_for_factory = hub.clone();
    let mut sup = Supervisor::new(
        sup_cfg,
        vec![node(0)],
        move || {
            WireEndpoint::new(
                node(1),
                protocol_config(),
                hub_for_factory.endpoint(node(1)),
            )
        },
        42,
    );
    sup.attach_trace(trace.clone());

    let all0 = workload(0); // node 0 -> node 1
    let all1 = workload(1); // node 1 -> node 0
    let mut remaining0: Vec<UserData> = all0.iter().rev().copied().collect();
    let mut remaining1: Vec<UserData> = all1.iter().rev().copied().collect();
    let mut delivered_at_1 = BTreeSet::new();
    let mut delivered_at_0 = BTreeSet::new();
    let mut n0_failures = 0usize;
    let mut killed = false;
    let mut last_epoch = 0;

    let total = all0.len();
    for cycle in 0..120_000u64 {
        // Crash node 1 once real traffic is flowing in both directions.
        if !killed && delivered_at_1.len() >= 4 && delivered_at_0.len() >= 4 {
            sup.kill(hub.now());
            killed = true;
        }

        // Node 0: feed, step, poll, and re-offer anything that failed.
        if let Some(user) = remaining0.last().copied() {
            let pkt = OutboundPacket::new(node(1), SIZE_WORDS)
                .with_bulk(true)
                .with_user(user);
            if n0.endpoint_mut().try_send(pkt) {
                remaining0.pop();
            }
        }
        n0.step();
        while let Some(d) = n0.endpoint_mut().poll() {
            delivered_at_0.insert((d.user.msg_id, d.user.pkt_index));
        }
        let failures = n0.endpoint_mut().take_failures();
        if !failures.is_empty() {
            n0_failures += failures.len();
            refill(&mut remaining0, &all0, &delivered_at_1);
        }

        // Node 1: under supervision; a fresh incarnation knows nothing, so
        // its send queue is rebuilt from what provably arrived.
        sup.step(hub.now());
        if sup.epoch() > last_epoch {
            last_epoch = sup.epoch();
            refill(&mut remaining1, &all1, &delivered_at_0);
            // The survivor's outbound state may already be poisoned against
            // the dead incarnation; re-offer its remainder too.
            refill(&mut remaining0, &all0, &delivered_at_1);
        }
        if let Some(ep) = sup.endpoint_mut() {
            if let Some(user) = remaining1.last().copied() {
                let pkt = OutboundPacket::new(node(0), SIZE_WORDS)
                    .with_bulk(true)
                    .with_user(user);
                if ep.endpoint_mut().try_send(pkt) {
                    remaining1.pop();
                }
            }
            while let Some(d) = ep.endpoint_mut().poll() {
                delivered_at_1.insert((d.user.msg_id, d.user.pkt_index));
            }
            let _ = ep.endpoint_mut().take_failures();
        }

        hub.tick();

        if delivered_at_1.len() == total && delivered_at_0.len() == total && killed {
            assert!(cycle > 0);
            break;
        }
    }

    assert!(killed, "the crash was never triggered — workload too small");
    assert_eq!(sup.restarts(), 1, "exactly one restart");
    assert_eq!(sup.epoch(), 1);
    assert_eq!(
        delivered_at_1.len(),
        total,
        "rotation leg 0->1 did not complete after the crash"
    );
    assert_eq!(
        delivered_at_0.len(),
        total,
        "rotation leg 1->0 did not complete after the crash"
    );
    assert!(
        n0_failures > 0,
        "the survivor must surface typed failures for state lost with the peer"
    );

    // Recovery must be visible in the flight recorder as typed events.
    #[cfg(feature = "trace")]
    {
        let names: BTreeSet<&'static str> =
            trace.snapshot().iter().map(|ev| ev.kind.name()).collect();
        for required in [
            "heartbeat",
            "peer_down",
            "endpoint_restart",
            "peer_restart",
            "dialog_close",
        ] {
            assert!(
                names.contains(required),
                "recovery left no {required:?} event in the trace; saw {names:?}"
            );
        }
    }
    #[cfg(not(feature = "trace"))]
    let _ = trace;
}

/// The same crash-and-recover rotation, driven event-style: instead of
/// stepping every hub cycle, the driver asks each component when it next
/// needs work ([`SupervisedEndpoint::next_event`], [`Supervisor::next_event`],
/// [`LoopbackHub::next_delivery`]) and jumps the clock to the earliest
/// deadline. Under the [`Wakeup`] contract the skipped cycles are no-ops,
/// so the run must still complete — through a kill, a backoff window, and
/// a restart — while stepping far fewer rounds than cycles elapse.
#[test]
fn event_driven_driver_recovers_with_fewer_stepped_rounds() {
    let hub = LoopbackHub::new(2, 1);
    let sup_cfg = SupervisorConfig::default()
        .with_heartbeat_every(16)
        .with_peer_timeout(100)
        .with_backoff(200, 512, 8);
    let trace = TraceHandle::recording(TraceConfig::new().with_capacity_per_node(1 << 16));

    let mut n0 = SupervisedEndpoint::new(
        WireEndpoint::new(node(0), protocol_config(), hub.endpoint(node(0))),
        sup_cfg,
        0,
    );
    n0.watch(node(1));
    n0.attach_trace(trace.clone());

    let hub_for_factory = hub.clone();
    let mut sup = Supervisor::new(
        sup_cfg,
        vec![node(0)],
        move || {
            WireEndpoint::new(
                node(1),
                protocol_config(),
                hub_for_factory.endpoint(node(1)),
            )
        },
        42,
    );
    sup.attach_trace(trace.clone());

    let all0 = workload(0);
    let all1 = workload(1);
    let mut remaining0: Vec<UserData> = all0.iter().rev().copied().collect();
    let mut remaining1: Vec<UserData> = all1.iter().rev().copied().collect();
    let mut delivered_at_1 = BTreeSet::new();
    let mut delivered_at_0 = BTreeSet::new();
    let mut killed = false;
    let mut last_epoch = 0;
    let mut stepped = 0u64;

    let total = all0.len();
    let bound = Cycle::new(120_000);
    let mut done = false;
    while hub.now() < bound {
        stepped += 1;
        // `active` records whether this round performed external input the
        // components cannot predict (a fed packet, a consumed delivery, a
        // failure-driven re-offer); only then must the very next cycle be
        // stepped too. Otherwise the components' own wakeups are trusted.
        let mut active = false;
        if !killed && delivered_at_1.len() >= 4 && delivered_at_0.len() >= 4 {
            sup.kill(hub.now());
            killed = true;
            active = true;
        }

        if let Some(user) = remaining0.last().copied() {
            let pkt = OutboundPacket::new(node(1), SIZE_WORDS)
                .with_bulk(true)
                .with_user(user);
            if n0.endpoint_mut().try_send(pkt) {
                remaining0.pop();
                active = true;
            }
        }
        n0.step();
        while let Some(d) = n0.endpoint_mut().poll() {
            delivered_at_0.insert((d.user.msg_id, d.user.pkt_index));
            active = true;
        }
        if !n0.endpoint_mut().take_failures().is_empty() {
            refill(&mut remaining0, &all0, &delivered_at_1);
            active = true;
        }

        sup.step(hub.now());
        if sup.epoch() > last_epoch {
            last_epoch = sup.epoch();
            refill(&mut remaining1, &all1, &delivered_at_0);
            refill(&mut remaining0, &all0, &delivered_at_1);
            active = true;
        }
        if let Some(ep) = sup.endpoint_mut() {
            if let Some(user) = remaining1.last().copied() {
                let pkt = OutboundPacket::new(node(0), SIZE_WORDS)
                    .with_bulk(true)
                    .with_user(user);
                if ep.endpoint_mut().try_send(pkt) {
                    remaining1.pop();
                    active = true;
                }
            }
            while let Some(d) = ep.endpoint_mut().poll() {
                delivered_at_1.insert((d.user.msg_id, d.user.pkt_index));
                active = true;
            }
            let _ = ep.endpoint_mut().take_failures();
        }

        hub.tick();
        if delivered_at_1.len() == total && delivered_at_0.len() == total && killed {
            done = true;
            break;
        }

        // Skip ahead: the earliest of both components' wakeups and the
        // hub's next frame delivery. `WireEndpoint::next_event` cannot see
        // frames still inside the transport, so the hub's clock is folded
        // in explicitly, exactly as its docs demand.
        let now = hub.now();
        let mut wake = n0.next_event().earliest(sup.next_event(now));
        // A deadline already in the past is a frame addressed to the down
        // node: every live endpoint is stepped at each deliverable cycle,
        // so only a dead destination can leave one behind. It stays
        // undeliverable until the restart, whose deadline the supervisor's
        // wakeup above already carries.
        if let Some(at) = hub.next_delivery() {
            if at >= now.as_u64() {
                wake = wake.earliest(Wakeup::at_or_now(Cycle::new(at), now));
            }
        }
        if active {
            wake = Wakeup::Now;
        }
        let target = wake.deadline_or(now, bound);
        while hub.now() < target {
            hub.tick();
        }
    }

    let elapsed = hub.now().as_u64();
    assert!(done, "rotation did not complete by cycle {elapsed}");
    assert!(killed, "the crash was never triggered");
    assert_eq!(sup.restarts(), 1, "exactly one restart");
    assert_eq!(sup.epoch(), 1);
    assert!(
        stepped * 2 < elapsed,
        "skip-ahead stepped {stepped} rounds over {elapsed} cycles — \
         the backoff and retransmission windows were not skipped"
    );

    #[cfg(feature = "trace")]
    {
        let names: BTreeSet<&'static str> =
            trace.snapshot().iter().map(|ev| ev.kind.name()).collect();
        for required in ["endpoint_restart", "peer_restart"] {
            assert!(
                names.contains(required),
                "recovery left no {required:?} event in the trace; saw {names:?}"
            );
        }
    }
    #[cfg(not(feature = "trace"))]
    let _ = trace;
}
