//! Differential chaos conformance: the same seeded workload driven through
//! the simulated fabric's flit-level fault plane and through the byte
//! stack's [`FaultyTransport`] chaos plane must uphold the same protocol
//! guarantees — identical per-destination delivery orders, zero misordered
//! or corrupted deliveries ever, and matching typed [`DeliveryFailure`]
//! accounting when retry budgets exhaust.
//!
//! The two planes draw from independent RNG streams, so *which* frame each
//! one drops differs; the point of the suite is that this difference is
//! invisible above the retransmission layer.
//!
//! [`DeliveryFailure`]: nifdy::DeliveryFailure

use nifdy_net::{FaultConfig, GilbertElliott, LinkWindow};
use nifdy_sim::NodeId;
use nifdy_wire::conformance::{run_fabric_chaos, run_loopback_chaos, ChaosReport, WorkloadSpec};
use nifdy_wire::WireFaultConfig;

const SEEDS: [u64; 3] = [1, 7, 23];

fn spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        nodes: 4,
        messages: 2,
        packets_per_message: 6,
        size_words: 6,
        want_bulk: true,
        seed,
        max_cycles: 400_000,
    }
}

/// Moderate recoverable chaos: bursty loss on both planes; the wire plane
/// additionally corrupts, duplicates, delays, and reorders frames.
fn recoverable_wire_faults() -> WireFaultConfig {
    WireFaultConfig::default()
        .with_burst(GilbertElliott::with_mean_loss(0.02))
        .with_corrupt_prob(0.05)
        .with_duplicate_prob(0.05)
        .with_delay(0.05, 8)
        .with_reorder_prob(0.05)
}

fn recoverable_fabric_faults() -> FaultConfig {
    FaultConfig::default().with_burst(GilbertElliott::with_mean_loss(0.02))
}

#[test]
fn recoverable_chaos_delivers_the_exact_clean_log() {
    for seed in SEEDS {
        let spec = spec(seed);
        let budget = 30;
        let expected = spec.expected_log();

        let fabric = run_fabric_chaos(&spec, recoverable_fabric_faults(), budget);
        assert_eq!(
            fabric.log, expected,
            "seed {seed}: fabric chaos must deliver the clean log"
        );
        assert!(
            fabric.failures.is_empty(),
            "seed {seed}: recoverable fabric loss must not fail deliveries: {:?}",
            fabric.failures
        );

        let wire = run_loopback_chaos(&spec, 2, 1, &recoverable_wire_faults(), budget);
        assert_eq!(
            wire.log, expected,
            "seed {seed}: wire chaos must deliver the clean log"
        );
        assert!(
            wire.failures.is_empty(),
            "seed {seed}: recoverable wire faults must not fail deliveries: {:?}",
            wire.failures
        );
        // The checksum trailer is what keeps corrupted frames out of the
        // log above: every corruption must have been caught, never decoded
        // into a plausible frame.
        let corrupted = wire
            .fault_counts
            .iter()
            .find(|(label, _)| *label == "corrupt")
            .map(|&(_, n)| n)
            .unwrap_or(0);
        assert!(
            corrupted > 0,
            "seed {seed}: the corruption model never fired — weak test"
        );
        assert!(
            wire.decode_errors >= corrupted,
            "seed {seed}: {corrupted} corruptions but only {} codec rejects — \
             a corrupted frame decoded successfully",
            wire.decode_errors
        );

        fabric.assert_matches(&wire, &format!("recoverable chaos, seed {seed}"));
    }
}

/// A permanent partition with a tight retry budget: deliveries to the
/// blackholed node become typed failures, and the silent side's own sends
/// fail too (its acks are swallowed). Both planes judge partitions
/// deterministically against the destination, so the reports must agree
/// exactly — same surviving log, same per-pair failure kinds and counts.
#[test]
fn partition_failure_accounting_is_carrier_independent() {
    for seed in SEEDS {
        let spec = spec(seed);
        let budget = 3;
        let dead = spec.partner(0);
        let window = LinkWindow::edge(NodeId::new(dead), 0, u64::MAX);

        let fabric = run_fabric_chaos(
            &spec,
            FaultConfig::default().with_link_window(window.clone()),
            budget,
        );
        let wire = run_loopback_chaos(
            &spec,
            2,
            1,
            &WireFaultConfig::default().with_partition(window),
            budget,
        );

        fabric.assert_matches(&wire, &format!("partition parity, seed {seed}"));

        // The blackholed pair must be wholly absent from the log…
        assert!(
            !wire.log.contains_key(&(0, dead)),
            "seed {seed}: packets crossed a permanent partition"
        );
        // …and surface as typed scalar failures at the sender (bulk never
        // opens: the grant would have to cross the partition).
        let to_dead = wire
            .failures
            .get(&(0, dead))
            .unwrap_or_else(|| panic!("seed {seed}: no failures recorded toward the dead node"));
        assert_eq!(
            to_dead.get("scalar").copied().unwrap_or(0),
            spec.messages * u64::from(spec.packets_per_message),
            "seed {seed}: every packet toward the partition must fail scalar"
        );
        // Pairs not touching the dead node deliver cleanly.
        for src in 0..spec.nodes {
            let dst = spec.partner(src);
            if src == 0 || dst == dead {
                continue;
            }
            let expected = spec.expected_log();
            assert_eq!(
                wire.log.get(&(src, dst)),
                expected.get(&(src, dst)),
                "seed {seed}: untouched pair ({src},{dst}) must deliver in clean order"
            );
        }
    }
}

/// The same chaos run twice is bit-identical: the whole plane — drops,
/// corruption positions, delays, reorders — is a pure function of the seed.
#[test]
fn chaos_runs_are_deterministic_per_seed() {
    let spec = spec(7);
    let run = || run_loopback_chaos(&spec, 2, 1, &recoverable_wire_faults(), 30);
    let a: ChaosReport = run();
    let b: ChaosReport = run();
    assert_eq!(a.log, b.log);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.decode_errors, b.decode_errors);
    assert_eq!(a.fault_counts, b.fault_counts);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.retransmitted, b.retransmitted);
}

/// Journey-level sim/wire equivalence: the offline analyzer reconstructs
/// a journey for every delivered packet on *both* carriers, the
/// conservation invariants hold on both, and the per-flow journey
/// populations agree — same packet counts completed on the same flows,
/// whatever each carrier's chaos plane did along the way.
#[cfg(feature = "trace")]
#[test]
fn journey_reconstruction_is_carrier_equivalent() {
    use nifdy_analyze::{analyze, AnomalyConfig, ExternalCounts};
    use nifdy_trace::{TraceConfig, TraceHandle};
    use nifdy_wire::conformance::{run_fabric_chaos_traced, run_loopback_chaos_traced};

    // Unsampled, amply sized: journey stitching wants the whole story.
    let recorder = || TraceHandle::recording(TraceConfig::new().with_capacity_per_node(1 << 16));

    for seed in SEEDS {
        let spec = spec(seed);
        let budget = 30;

        let fab_trace = recorder();
        let fabric =
            run_fabric_chaos_traced(&spec, recoverable_fabric_faults(), budget, &fab_trace);
        let fab_report = analyze(
            &fab_trace.snapshot(),
            &fab_trace.loss(),
            &ExternalCounts {
                delivered: Some(fabric.delivered()),
                retransmitted: Some(fabric.retransmitted),
                delivery_failures: Some(fabric.failure_total()),
                fabric_drops: Some(fabric.fabric_dropped),
                wire_faults: None,
            },
            &AnomalyConfig::default(),
        );
        assert!(
            fab_report.ok(),
            "seed {seed}: fabric invariants violated:\n{}",
            fab_report.table()
        );

        let wire_trace = recorder();
        let wire =
            run_loopback_chaos_traced(&spec, 2, 1, &recoverable_wire_faults(), budget, &wire_trace);
        let wire_report = analyze(
            &wire_trace.snapshot(),
            &wire_trace.loss(),
            &ExternalCounts {
                delivered: Some(wire.delivered()),
                retransmitted: Some(wire.retransmitted),
                delivery_failures: Some(wire.failure_total()),
                fabric_drops: None,
                wire_faults: Some(wire.wire_fault_total()),
            },
            &AnomalyConfig::default(),
        );
        assert!(
            wire_report.ok(),
            "seed {seed}: wire invariants violated:\n{}",
            wire_report.table()
        );

        // 100% reconstruction on both carriers…
        assert_eq!(
            fab_report.set.accepted(),
            fabric.delivered(),
            "seed {seed}: fabric journeys must cover every delivery"
        );
        assert_eq!(
            wire_report.set.accepted(),
            wire.delivered(),
            "seed {seed}: wire journeys must cover every delivery"
        );

        // …and the same per-flow completed-journey populations: the
        // carriers retransmit differently, but what *arrives* (and on
        // which flow) is protocol-determined.
        let flow_counts = |report: &nifdy_analyze::AnalysisReport| -> Vec<((usize, usize), u64)> {
            report.flows.iter().map(|f| (f.flow, f.completed)).collect()
        };
        assert_eq!(
            flow_counts(&fab_report),
            flow_counts(&wire_report),
            "seed {seed}: per-flow completed-journey populations diverge"
        );
    }
}
