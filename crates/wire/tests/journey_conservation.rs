//! Journey-conservation property: across seeded rotation workloads under
//! randomized recoverable chaos, the offline analyzer reconstructs
//! exactly one accepted journey per delivered packet on both carriers,
//! and its retransmit/drop/fault accounting reconciles with the ground
//! truth the NICs and fault planes counted ([`FabricStats`]/
//! [`WireFaultStats`]) — the conservation invariants the report encodes
//! all hold, for *any* seed, not just the conformance suite's.
//!
//! [`FabricStats`]: nifdy_net::FabricStats
//! [`WireFaultStats`]: nifdy_wire::WireFaultStats
#![cfg(feature = "trace")]

use nifdy_analyze::{analyze, AnalysisReport, AnomalyConfig, ExternalCounts};
use nifdy_net::{FaultConfig, GilbertElliott};
use nifdy_trace::{TraceConfig, TraceHandle};
use nifdy_wire::conformance::{
    run_fabric_chaos_traced, run_loopback_chaos_traced, ChaosReport, WorkloadSpec,
};
use nifdy_wire::WireFaultConfig;
use proptest::prelude::*;

const BUDGET: u32 = 30;

fn spec(nodes: usize, messages: u64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        nodes,
        messages,
        packets_per_message: 5,
        size_words: 6,
        want_bulk: true,
        seed,
        max_cycles: 600_000,
    }
}

fn recorder() -> TraceHandle {
    // Unsampled and amply sized: the invariants need the whole story.
    TraceHandle::recording(TraceConfig::new().with_capacity_per_node(1 << 16))
}

/// The invariant bundle both carriers must satisfy against their own
/// ground truth.
fn assert_conserved(label: &str, report: &AnalysisReport, chaos: &ChaosReport) {
    assert!(
        report.ok(),
        "{label}: conservation invariants violated:\n{}",
        report.table()
    );
    assert_eq!(
        report.set.accepted(),
        chaos.delivered(),
        "{label}: every delivered packet must map to exactly one accepted journey"
    );
    assert_eq!(
        report.set.retx_events, chaos.retransmitted,
        "{label}: traced retransmits must reconcile with NicStats"
    );
    assert_eq!(
        report.set.delivery_fail_events,
        chaos.failure_total(),
        "{label}: traced failures must reconcile with the typed failure log"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    #[test]
    fn every_delivered_packet_is_one_accepted_journey(
        seed in 0u64..1_000,
        nodes in prop_oneof![Just(4usize), Just(6usize)],
        messages in 1u64..3,
        loss_pct in prop_oneof![Just(0u32), Just(1), Just(2), Just(4)],
    ) {
        let spec = spec(nodes, messages, seed);
        let mean_loss = f64::from(loss_pct) / 100.0;

        let fab_faults = if loss_pct == 0 {
            FaultConfig::default()
        } else {
            FaultConfig::default().with_burst(GilbertElliott::with_mean_loss(mean_loss))
        };
        let fab_trace = recorder();
        let fab = run_fabric_chaos_traced(&spec, fab_faults, BUDGET, &fab_trace);
        let fab_report = analyze(
            &fab_trace.snapshot(),
            &fab_trace.loss(),
            &ExternalCounts {
                delivered: Some(fab.delivered()),
                retransmitted: Some(fab.retransmitted),
                delivery_failures: Some(fab.failure_total()),
                fabric_drops: Some(fab.fabric_dropped),
                wire_faults: None,
            },
            &AnomalyConfig::default(),
        );
        assert_conserved("fabric", &fab_report, &fab);
        // Fabric drops reconcile: every FabricStats drop left a Drop event.
        prop_assert_eq!(fab_report.set.drop_events, fab.fabric_dropped);

        let wire_faults = if loss_pct == 0 {
            WireFaultConfig::default()
        } else {
            WireFaultConfig::default()
                .with_burst(GilbertElliott::with_mean_loss(mean_loss))
                .with_corrupt_prob(mean_loss)
                .with_duplicate_prob(mean_loss)
                .with_reorder_prob(mean_loss)
        };
        let wire_trace = recorder();
        let wire = run_loopback_chaos_traced(&spec, 2, 1, &wire_faults, BUDGET, &wire_trace);
        let wire_report = analyze(
            &wire_trace.snapshot(),
            &wire_trace.loss(),
            &ExternalCounts {
                delivered: Some(wire.delivered()),
                retransmitted: Some(wire.retransmitted),
                delivery_failures: Some(wire.failure_total()),
                fabric_drops: None,
                wire_faults: Some(wire.wire_fault_total()),
            },
            &AnomalyConfig::default(),
        );
        assert_conserved("wire", &wire_report, &wire);
        // Wire faults reconcile: every injector count left a WireFault event.
        prop_assert_eq!(wire_report.set.wire_fault_events, wire.wire_fault_total());
    }
}
