//! Chaos-plane properties: wrapping a transport in an *inactive*
//! [`FaultyTransport`] is observationally free — byte-identical delivery to
//! the bare transport for any seed, any payload, any lane mix — because an
//! inactive plane never draws from its generator at all.

use nifdy_net::Lane;
use nifdy_sim::NodeId;
use nifdy_wire::{FaultyTransport, LoopbackHub, Transport, WireFaultConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn rate_zero_is_byte_identical_to_clean_for_any_seed(
        seed in any::<u64>(),
        jitter_seed in any::<u64>(),
        frames in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..40), any::<bool>()),
            1..40,
        ),
    ) {
        let drive = |fault_seed: Option<u64>| -> Vec<(usize, Vec<u8>)> {
            let hub = LoopbackHub::new(2, 1).with_jitter(jitter_seed, 3);
            let tx = hub.endpoint(NodeId::new(0));
            let mut tx: Box<dyn Transport> = match fault_seed {
                Some(s) => Box::new(FaultyTransport::new(tx, WireFaultConfig::default(), s)),
                None => Box::new(tx),
            };
            let mut rx = hub.endpoint(NodeId::new(1));
            let mut got = Vec::new();
            for (frame, reply_lane) in &frames {
                let lane = if *reply_lane { Lane::Reply } else { Lane::Request };
                tx.send(NodeId::new(1), lane, frame.clone());
                hub.tick();
                tx.tick();
                rx.tick();
                for lane in Lane::ALL {
                    while let Some(f) = rx.recv(lane) {
                        got.push((lane.index(), f));
                    }
                }
            }
            for _ in 0..8 {
                hub.tick();
                for lane in Lane::ALL {
                    while let Some(f) = rx.recv(lane) {
                        got.push((lane.index(), f));
                    }
                }
            }
            got
        };
        let clean = drive(None);
        let wrapped = drive(Some(seed));
        prop_assert_eq!(clean, wrapped, "inactive chaos plane perturbed delivery");
    }
}
