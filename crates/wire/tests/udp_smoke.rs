//! Two-node UDP smoke test: real datagrams on localhost, one thread per
//! node, each driving a full [`WireEndpoint`]. The operating system is free
//! to reorder or drop datagrams; the protocol's sequencing plus the §6.2
//! retransmission machinery must still deliver every packet exactly once,
//! in sender order.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nifdy::{NifdyConfig, OutboundPacket};
use nifdy_net::UserData;
use nifdy_sim::NodeId;
use nifdy_wire::{UdpTransport, WireEndpoint};

const TOTAL: u32 = 200;
const SIZE_WORDS: u16 = 6;

fn config() -> NifdyConfig {
    // Real sockets can drop; give the unit a retransmission timeout. It is
    // measured in endpoint cycles — each loop iteration yields, so a few
    // thousand cycles is milliseconds of wall clock.
    NifdyConfig::mesh().with_retx_timeout(5_000)
}

#[test]
fn two_nodes_deliver_in_order_over_localhost() {
    let n0 = NodeId::new(0);
    let n1 = NodeId::new(1);
    let mut t0 = UdpTransport::bind(n0, "127.0.0.1:0").expect("bind sender");
    let mut t1 = UdpTransport::bind(n1, "127.0.0.1:0").expect("bind receiver");
    t0.add_peer(n1, t1.local_addr().expect("receiver addr"));
    t1.add_peer(n0, t0.local_addr().expect("sender addr"));

    // The sender raises `drained` once every packet is sent *and* every
    // acknowledgment has come back; the receiver keeps stepping (re-acking
    // any retransmissions) until then.
    let drained = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_secs(60);

    let sender_flag = Arc::clone(&drained);
    let sender = std::thread::spawn(move || {
        let mut ep = WireEndpoint::new(n0, config(), t0);
        let mut sent = 0u32;
        loop {
            if sent < TOTAL {
                let pkt = OutboundPacket::new(n1, SIZE_WORDS)
                    .with_bulk(true)
                    .with_user(UserData {
                        msg_id: 1,
                        pkt_index: sent,
                        msg_packets: TOTAL,
                        user_words: SIZE_WORDS - 2,
                    });
                if ep.try_send(pkt) {
                    sent += 1;
                }
            }
            ep.step();
            assert!(
                ep.take_failures().is_empty(),
                "sender gave up on a delivery"
            );
            if sent == TOTAL && ep.is_idle() {
                sender_flag.store(true, Ordering::Release);
                return;
            }
            assert!(Instant::now() < deadline, "sender wedged at {sent}/{TOTAL}");
            std::thread::yield_now();
        }
    });

    let receiver_flag = Arc::clone(&drained);
    let receiver = std::thread::spawn(move || {
        let mut ep = WireEndpoint::new(n1, config(), t1);
        let mut next = 0u32;
        loop {
            ep.step();
            while let Some(d) = ep.poll() {
                assert_eq!(d.src, n0);
                assert_eq!(
                    d.user.pkt_index, next,
                    "out-of-order or duplicated delivery"
                );
                next += 1;
            }
            if next == TOTAL && receiver_flag.load(Ordering::Acquire) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "receiver wedged at {next}/{TOTAL} \
                 (decode_errors={}, foreign={})",
                ep.port().decode_errors(),
                ep.port().foreign()
            );
            std::thread::yield_now();
        }
        assert_eq!(ep.port().decode_errors(), 0, "corrupt frame on loopback");
        assert_eq!(ep.port().foreign(), 0, "misrouted datagram");
        ep.stats().delivered.get()
    });

    sender.join().expect("sender thread");
    let delivered = receiver.join().expect("receiver thread");
    assert_eq!(delivered, u64::from(TOTAL));
}
