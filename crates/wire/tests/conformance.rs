//! Differential conformance: the same seeded workload through the
//! cycle-accurate fabric and through the loopback byte transport must
//! produce identical per-destination delivery orders and identical dialog
//! lifecycles — the headline equivalence claim of the wire stack.

use nifdy_wire::conformance::{run_fabric, run_loopback, WorkloadSpec};

#[test]
fn bulk_workload_matches_across_stacks() {
    let spec = WorkloadSpec {
        nodes: 4,
        messages: 3,
        packets_per_message: 10,
        want_bulk: true,
        seed: 11,
        ..WorkloadSpec::default()
    };
    let expected = spec.expected_log();
    let sim = run_fabric(&spec);
    assert_eq!(sim.log, expected, "fabric run violates send order");
    let wire = run_loopback(&spec, 4, 0);
    assert_eq!(wire.log, expected, "loopback run violates send order");
    sim.assert_matches(&wire, "bulk sim vs loopback");
}

#[test]
fn scalar_workload_matches_across_stacks() {
    let spec = WorkloadSpec {
        nodes: 4,
        messages: 4,
        packets_per_message: 3,
        want_bulk: false,
        seed: 3,
        ..WorkloadSpec::default()
    };
    let expected = spec.expected_log();
    let sim = run_fabric(&spec);
    assert_eq!(sim.log, expected);
    let wire = run_loopback(&spec, 2, 0);
    assert_eq!(wire.log, expected);
    sim.assert_matches(&wire, "scalar sim vs loopback");
}

#[test]
fn jitter_reordering_does_not_change_delivery_order() {
    // The loopback hub's jitter deliberately reorders frames in flight; the
    // protocol's own sequencing (OPT + bulk window) must still deliver every
    // pair's packets in send order, identically to the jitter-free run.
    let spec = WorkloadSpec {
        nodes: 6,
        messages: 2,
        packets_per_message: 12,
        want_bulk: true,
        seed: 42,
        ..WorkloadSpec::default()
    };
    let expected = spec.expected_log();
    let calm = run_loopback(&spec, 3, 0);
    assert_eq!(calm.log, expected);
    for jitter in [5u64, 35, 65] {
        let jittered = run_loopback(&spec, 3, jitter);
        assert_eq!(
            jittered.log, expected,
            "reordering transport broke send order (jitter {jitter})"
        );
    }
}

#[test]
fn seeds_vary_the_permutation_but_never_the_invariant() {
    for seed in [0u64, 1, 2, 9, 77] {
        let spec = WorkloadSpec {
            nodes: 4,
            messages: 2,
            packets_per_message: 6,
            want_bulk: true,
            seed,
            ..WorkloadSpec::default()
        };
        let sim = run_fabric(&spec);
        let wire = run_loopback(&spec, 1, 2);
        assert_eq!(sim.log, spec.expected_log(), "seed {seed} fabric");
        assert_eq!(wire.log, spec.expected_log(), "seed {seed} loopback");
        sim.assert_matches(&wire, "seed sweep");
    }
}

#[cfg(feature = "trace")]
#[test]
fn dialog_lifecycle_traces_are_nonempty_and_equal() {
    // With tracing compiled in, the lifecycle projection must actually
    // record the dialog machinery (not just trivially match as empty).
    let spec = WorkloadSpec {
        nodes: 4,
        messages: 2,
        packets_per_message: 8,
        want_bulk: true,
        seed: 5,
        ..WorkloadSpec::default()
    };
    let sim = run_fabric(&spec);
    let wire = run_loopback(&spec, 2, 0);
    assert!(
        sim.lifecycle
            .iter()
            .any(|n| n.sender.contains(&"dialog_open")),
        "bulk workload must open dialogs"
    );
    assert!(
        sim.lifecycle
            .iter()
            .any(|n| n.receiver.contains(&"dialog_grant")),
        "expected at least one dialog_grant event"
    );
    sim.assert_matches(&wire, "lifecycle");
}
