//! Codec properties: the wire format is a bijection on valid frames and
//! total on garbage.
//!
//! 1. **Round-trip**: `decode(encode(p)) == p` for every encodable packet,
//!    across the full `{seq mod W, dialog}` space (wraparound sequence
//!    numbers, the maximum dialog id) and every ack shape.
//! 2. **Canonical**: `encode(decode(bytes)) == bytes` whenever decode
//!    succeeds — each frame has exactly one byte representation.
//! 3. **Total**: `decode` never panics, whatever the bytes — arbitrary
//!    garbage, truncations of valid frames, and oversized extensions all
//!    return typed errors.

use nifdy_net::{AckInfo, BulkGrant, BulkTag, Lane, UserData, Wire};
use nifdy_sim::NodeId;
use nifdy_wire::{decode, encode, WirePacket, WireSource};
use proptest::prelude::*;

fn ack_info() -> impl Strategy<Value = AckInfo> {
    (0u8..4, any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(kind, a, b, flag)| match kind {
        0 => AckInfo::Scalar {
            grant: BulkGrant::NotRequested,
            echo: flag,
        },
        1 => AckInfo::Scalar {
            grant: BulkGrant::Granted {
                dialog: a,
                window: b,
            },
            echo: flag,
        },
        2 => AckInfo::Scalar {
            grant: BulkGrant::Rejected,
            echo: flag,
        },
        _ => AckInfo::Bulk {
            dialog: a,
            cum_seq: b,
            terminate: flag,
        },
    })
}

fn user_data() -> impl Strategy<Value = UserData> {
    (any::<u64>(), any::<u32>(), any::<u32>(), any::<u16>()).prop_map(
        |(msg_id, pkt_index, msg_packets, user_words)| UserData {
            msg_id,
            pkt_index,
            msg_packets,
            user_words,
        },
    )
}

/// Any encodable data frame. Bulk frames draw `{seq, dialog}` over the full
/// u8 × u8 space, which covers every wraparound of a `seq mod W` counter for
/// every window size the protocol allows, and the maximum dialog id 255.
fn data_packet() -> impl Strategy<Value = WirePacket> {
    (
        any::<u16>(),                   // src or (seq, dialog)
        any::<u16>(),                   // dst
        any::<bool>(),                  // lane
        1u16..=64,                      // size_words
        (any::<bool>(), any::<bool>()), // bulk_request, bulk_exit
        any::<bool>(),                  // in-dialog?
        (any::<bool>(), any::<bool>()), // needs_ack, dup_bit
        (any::<bool>(), ack_info()),    // piggyback?
        user_data(),
    )
        .prop_map(
            |(
                srcish,
                dst,
                lane,
                size_words,
                (breq, bexit),
                in_dialog,
                (needs, dup),
                (pig, pack),
                user,
            )| {
                let [seq, dialog] = srcish.to_le_bytes();
                let (src, bulk) = if in_dialog {
                    (WireSource::Dialog, Some(BulkTag { dialog, seq }))
                } else {
                    (WireSource::Node(NodeId::new(usize::from(srcish))), None)
                };
                WirePacket {
                    src,
                    dst: NodeId::new(usize::from(dst)),
                    lane: Lane::from_index(usize::from(lane)).expect("bit"),
                    size_words,
                    wire: Wire::Data {
                        bulk_request: breq,
                        bulk_exit: bexit,
                        bulk,
                        needs_ack: needs,
                        dup_bit: dup,
                        piggy_ack: pig.then_some(pack),
                    },
                    user,
                }
            },
        )
}

/// Any encodable ack frame (acks travel only on the reply lane).
fn ack_packet() -> impl Strategy<Value = WirePacket> {
    (any::<u16>(), any::<u16>(), ack_info()).prop_map(|(src, dst, info)| WirePacket {
        src: WireSource::Node(NodeId::new(usize::from(src))),
        dst: NodeId::new(usize::from(dst)),
        lane: Lane::Reply,
        size_words: nifdy_net::ACK_WORDS,
        wire: Wire::Ack(info),
        user: UserData::default(),
    })
}

fn wire_packet() -> impl Strategy<Value = WirePacket> {
    prop_oneof![data_packet(), ack_packet()]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 512,
        .. ProptestConfig::default()
    })]

    #[test]
    fn round_trip_is_identity(wp in wire_packet()) {
        let bytes = encode(&wp);
        prop_assert_eq!(bytes.len(), wp.encoded_len());
        prop_assert_eq!(decode(&bytes), Ok(wp), "frame: {:02x?}", bytes);
    }

    #[test]
    fn encoding_is_canonical(wp in wire_packet()) {
        let bytes = encode(&wp);
        let decoded = decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(encode(&decoded), bytes);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        // Totality is the property; the result itself is unconstrained.
        let _ = decode(&bytes);
    }

    #[test]
    fn truncations_of_valid_frames_fail_cleanly(wp in wire_packet(), cut in any::<usize>()) {
        let bytes = encode(&wp);
        let cut = cut % bytes.len();
        prop_assert!(decode(&bytes[..cut]).is_err(), "prefix of length {} decoded", cut);
    }

    #[test]
    fn oversized_frames_fail_cleanly(wp in wire_packet(), extra in 1usize..32) {
        let mut bytes = encode(&wp);
        bytes.resize(bytes.len() + extra, 0);
        prop_assert!(decode(&bytes).is_err(), "oversized frame decoded");
    }

    #[test]
    fn every_single_byte_corruption_is_rejected(
        wp in wire_packet(),
        pos in any::<usize>(),
        flip in 1u8..=255,
    ) {
        // CRC-16 detects every burst error up to 16 bits, so *any* one-byte
        // change — flags, fields, padding, or the trailer itself — must be
        // rejected outright: a corrupted frame can never decode, let alone
        // decode into a frame that differs from the original.
        let mut bytes = encode(&wp);
        let at = pos % bytes.len();
        bytes[at] ^= flip;
        prop_assert!(
            decode(&bytes).is_err(),
            "corruption at byte {} (mask {:#04x}) decoded", at, flip
        );
    }
}

/// Deterministic W-wraparound coverage on top of the random sweep: a bulk
/// stream's `seq mod W` passes 255→0 for every power-of-two window.
#[test]
fn wraparound_sequences_round_trip_exactly() {
    for window in [2u16, 4, 8, 16, 32, 64, 128, 256] {
        for step in 0u16..(2 * window) {
            let seq = ((250 + step) % 256) as u8;
            let wp = WirePacket {
                src: WireSource::Dialog,
                dst: NodeId::new(1),
                lane: Lane::Request,
                size_words: 6,
                wire: Wire::Data {
                    bulk_request: false,
                    bulk_exit: step == 2 * window - 1,
                    bulk: Some(BulkTag { dialog: 255, seq }),
                    needs_ack: true,
                    dup_bit: step % 2 == 1,
                    piggy_ack: None,
                },
                user: UserData::default(),
            };
            let bytes = encode(&wp);
            assert_eq!(bytes[3], seq, "seq occupies the source bytes");
            assert_eq!(bytes[4], 255, "max dialog id survives");
            assert_eq!(decode(&bytes), Ok(wp));
        }
    }
}
