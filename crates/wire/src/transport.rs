//! Frame carriers: the [`Transport`] trait and the deterministic in-process
//! loopback backend.
//!
//! A transport moves *encoded frames* (byte strings from
//! [`codec::encode`](crate::codec::encode)) between nodes on the two lanes.
//! It makes no ordering promise beyond best effort: NIFDY itself tolerates
//! reordering (that is the point of the protocol), and the loopback backend
//! can be configured with seeded delivery jitter precisely to exercise the
//! reorder machinery while staying bit-for-bit reproducible.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use nifdy_net::Lane;
use nifdy_sim::{Cycle, NodeId, SimRng};

/// One node's attachment to a frame carrier.
///
/// The transport also owns the node's notion of time: the loopback backend
/// shares one hub clock across all endpoints (cycle-synchronous, like the
/// simulator), while the UDP backend free-runs a local cycle counter per
/// node (each node is its own clock domain, like real hardware).
pub trait Transport: Send {
    /// The local node this endpoint serves.
    fn node(&self) -> NodeId;

    /// The endpoint's current cycle.
    fn now(&self) -> Cycle;

    /// One tick of endpoint-local work: advance a free-running clock, pump
    /// sockets. The loopback backend does nothing here — its shared hub
    /// clock advances via [`LoopbackHub::tick`].
    fn tick(&mut self);

    /// Queues an encoded frame for delivery to `dst` on `lane`. Best
    /// effort: a transport may drop (UDP) or delay (loopback jitter), never
    /// corrupt.
    fn send(&mut self, dst: NodeId, lane: Lane, frame: Vec<u8>);

    /// The next frame delivered to this node on `lane`, if any.
    fn recv(&mut self, lane: Lane) -> Option<Vec<u8>>;
}

/// In-flight frames for one destination: ordered by (delivery cycle, global
/// send sequence), so iteration order is deterministic even under jitter.
type DeliveryQueue = BTreeMap<(u64, u64), Vec<u8>>;

#[derive(Debug)]
struct HubInner {
    now: Cycle,
    latency: u64,
    jitter: Option<(SimRng, u64)>,
    seq: u64,
    /// `queues[node][lane]`.
    queues: Vec<[DeliveryQueue; 2]>,
}

/// A deterministic in-process frame exchange shared by N [`LoopbackTransport`]
/// endpoints.
///
/// Every frame sent at hub cycle `t` is deliverable at `t + latency`
/// (plus seeded jitter when configured). With the same seed and the same
/// sequence of sends, delivery order is bit-for-bit reproducible — the
/// property the sim-vs-wire differential conformance suite rests on.
///
/// # Examples
///
/// ```
/// use nifdy_net::Lane;
/// use nifdy_sim::NodeId;
/// use nifdy_wire::{LoopbackHub, Transport};
///
/// let hub = LoopbackHub::new(2, 3);
/// let mut a = hub.endpoint(NodeId::new(0));
/// let mut b = hub.endpoint(NodeId::new(1));
/// a.send(NodeId::new(1), Lane::Request, vec![1, 2, 3]);
/// assert!(b.recv(Lane::Request).is_none(), "still in flight");
/// for _ in 0..3 {
///     hub.tick();
/// }
/// assert_eq!(b.recv(Lane::Request), Some(vec![1, 2, 3]));
/// ```
#[derive(Debug, Clone)]
pub struct LoopbackHub {
    inner: Arc<Mutex<HubInner>>,
}

impl LoopbackHub {
    /// Creates a hub for `nodes` endpoints with a fixed `latency` in cycles
    /// from send to earliest delivery.
    pub fn new(nodes: usize, latency: u64) -> Self {
        LoopbackHub {
            inner: Arc::new(Mutex::new(HubInner {
                now: Cycle::ZERO,
                latency,
                jitter: None,
                seq: 0,
                queues: (0..nodes)
                    .map(|_| [BTreeMap::new(), BTreeMap::new()])
                    .collect(),
            })),
        }
    }

    /// Adds seeded delivery jitter: each frame's latency is extended by a
    /// uniform draw from `0..=max_extra` cycles. Different frames to the
    /// same destination can overtake each other — deliberate, deterministic
    /// reordering to exercise the protocol's window machinery.
    pub fn with_jitter(self, seed: u64, max_extra: u64) -> Self {
        {
            let mut inner = self.lock();
            inner.jitter =
                (max_extra > 0).then(|| (SimRng::from_seed_stream(seed, 0x17e), max_extra));
        }
        self
    }

    /// Advances the shared hub clock by one cycle.
    pub fn tick(&self) {
        self.lock().now += 1;
    }

    /// The shared hub clock.
    pub fn now(&self) -> Cycle {
        self.lock().now
    }

    /// Frames currently in flight or awaiting [`Transport::recv`], across
    /// all nodes (drain/termination checks).
    pub fn in_flight(&self) -> usize {
        self.lock()
            .queues
            .iter()
            .map(|lanes| lanes[0].len() + lanes[1].len())
            .sum()
    }

    /// Creates the endpoint for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the hub's node range.
    pub fn endpoint(&self, node: NodeId) -> LoopbackTransport {
        assert!(
            node.index() < self.lock().queues.len(),
            "node {node} outside the hub's range"
        );
        LoopbackTransport {
            node,
            inner: Arc::clone(&self.inner),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// One node's endpoint on a [`LoopbackHub`].
#[derive(Debug)]
pub struct LoopbackTransport {
    node: NodeId,
    inner: Arc<Mutex<HubInner>>,
}

impl LoopbackTransport {
    fn lock(&self) -> std::sync::MutexGuard<'_, HubInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl Transport for LoopbackTransport {
    fn node(&self) -> NodeId {
        self.node
    }

    fn now(&self) -> Cycle {
        self.lock().now
    }

    fn tick(&mut self) {
        // Time is the hub's: LoopbackHub::tick advances all endpoints at once.
    }

    fn send(&mut self, dst: NodeId, lane: Lane, frame: Vec<u8>) {
        let mut inner = self.lock();
        let mut deliver_at = inner.now.as_u64() + inner.latency;
        if let Some((rng, max_extra)) = &mut inner.jitter {
            deliver_at += rng.next_u64() % (*max_extra + 1);
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.queues[dst.index()][lane.index()].insert((deliver_at, seq), frame);
    }

    fn recv(&mut self, lane: Lane) -> Option<Vec<u8>> {
        let mut inner = self.lock();
        let now = inner.now.as_u64();
        let queue = &mut inner.queues[self.node.index()][lane.index()];
        let (&key, _) = queue.first_key_value()?;
        if key.0 > now {
            return None;
        }
        queue.remove(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_holds_frames_until_due() {
        let hub = LoopbackHub::new(2, 5);
        let mut a = hub.endpoint(NodeId::new(0));
        let mut b = hub.endpoint(NodeId::new(1));
        a.send(NodeId::new(1), Lane::Request, vec![42]);
        for _ in 0..4 {
            hub.tick();
            assert!(b.recv(Lane::Request).is_none());
        }
        hub.tick();
        assert_eq!(b.recv(Lane::Request), Some(vec![42]));
        assert_eq!(hub.in_flight(), 0);
    }

    #[test]
    fn lanes_are_independent() {
        let hub = LoopbackHub::new(2, 0);
        let mut a = hub.endpoint(NodeId::new(0));
        let mut b = hub.endpoint(NodeId::new(1));
        a.send(NodeId::new(1), Lane::Reply, vec![1]);
        hub.tick();
        assert!(b.recv(Lane::Request).is_none());
        assert_eq!(b.recv(Lane::Reply), Some(vec![1]));
    }

    #[test]
    fn jitter_is_deterministic_and_can_reorder() {
        let run = |seed: u64| {
            let hub = LoopbackHub::new(2, 2).with_jitter(seed, 16);
            let mut a = hub.endpoint(NodeId::new(0));
            let mut b = hub.endpoint(NodeId::new(1));
            for i in 0..32u8 {
                a.send(NodeId::new(1), Lane::Request, vec![i]);
            }
            let mut got = Vec::new();
            for _ in 0..64 {
                hub.tick();
                while let Some(f) = b.recv(Lane::Request) {
                    got.push(f[0]);
                }
            }
            assert_eq!(got.len(), 32, "everything eventually delivers");
            got
        };
        let first = run(7);
        assert_eq!(first, run(7), "same seed, same delivery order");
        let sorted: Vec<u8> = (0..32).collect();
        assert_ne!(first, sorted, "jitter actually reorders");
    }
}
