//! Frame carriers: the [`Transport`] trait and the deterministic in-process
//! loopback backend.
//!
//! A transport moves *encoded frames* (byte strings from
//! [`codec::encode`](crate::codec::encode)) between nodes on the two lanes.
//! It makes no ordering promise beyond best effort: NIFDY itself tolerates
//! reordering (that is the point of the protocol), and the loopback backend
//! can be configured with seeded delivery jitter precisely to exercise the
//! reorder machinery while staying bit-for-bit reproducible.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use nifdy_net::Lane;
use nifdy_sim::{Cycle, NodeId, SimRng};

/// One node's attachment to a frame carrier.
///
/// The transport also owns the node's notion of time: the loopback backend
/// shares one hub clock across all endpoints (cycle-synchronous, like the
/// simulator), while the UDP backend free-runs a local cycle counter per
/// node (each node is its own clock domain, like real hardware).
pub trait Transport: Send {
    /// The local node this endpoint serves.
    fn node(&self) -> NodeId;

    /// The endpoint's current cycle.
    fn now(&self) -> Cycle;

    /// One tick of endpoint-local work: advance a free-running clock, pump
    /// sockets. The loopback backend does nothing here — its shared hub
    /// clock advances via [`LoopbackHub::tick`].
    fn tick(&mut self);

    /// Queues an encoded frame for delivery to `dst` on `lane`. Best
    /// effort: a transport may drop (UDP) or delay (loopback jitter), never
    /// corrupt.
    fn send(&mut self, dst: NodeId, lane: Lane, frame: Vec<u8>);

    /// The next frame delivered to this node on `lane`, if any.
    fn recv(&mut self, lane: Lane) -> Option<Vec<u8>>;
}

/// Batched frame I/O for carriers that serve many logical endpoints at
/// once (the `nifdy-node` daemon's poll loop).
///
/// The default methods are plain loops over [`Transport::recv`] and
/// [`Transport::send`], so every transport gets the batched interface for
/// free and tests share one code path with production carriers. Backends
/// override them when a real economy exists: the loopback hub takes its
/// lock once per batch instead of once per frame, and the UDP transport
/// coalesces the peer-address lookup across consecutive frames to the same
/// destination.
pub trait BatchTransport: Transport {
    /// Drains up to `max` frames delivered to this node on `lane` into
    /// `out`, returning how many were appended. A bounded batch keeps one
    /// busy socket from starving the rest of a daemon's poll round.
    fn recv_batch(&mut self, lane: Lane, max: usize, out: &mut Vec<Vec<u8>>) -> usize {
        let mut n = 0;
        while n < max {
            match self.recv(lane) {
                Some(frame) => {
                    out.push(frame);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Sends every queued `(dst, lane, frame)` in order, draining the
    /// vector (so callers can reuse its allocation round after round).
    fn send_batch(&mut self, frames: &mut Vec<(NodeId, Lane, Vec<u8>)>) {
        for (dst, lane, frame) in frames.drain(..) {
            self.send(dst, lane, frame);
        }
    }
}

/// In-flight frames for one destination: ordered by (delivery cycle, global
/// send sequence), so iteration order is deterministic even under jitter.
type DeliveryQueue = BTreeMap<(u64, u64), Vec<u8>>;

#[derive(Debug)]
struct HubInner {
    now: Cycle,
    latency: u64,
    jitter: Option<(SimRng, u64)>,
    seq: u64,
    /// `queues[node][lane]`.
    queues: Vec<[DeliveryQueue; 2]>,
}

/// A deterministic in-process frame exchange shared by N [`LoopbackTransport`]
/// endpoints.
///
/// Every frame sent at hub cycle `t` is deliverable at `t + latency`
/// (plus seeded jitter when configured). With the same seed and the same
/// sequence of sends, delivery order is bit-for-bit reproducible — the
/// property the sim-vs-wire differential conformance suite rests on.
///
/// # Examples
///
/// ```
/// use nifdy_net::Lane;
/// use nifdy_sim::NodeId;
/// use nifdy_wire::{LoopbackHub, Transport};
///
/// let hub = LoopbackHub::new(2, 3);
/// let mut a = hub.endpoint(NodeId::new(0));
/// let mut b = hub.endpoint(NodeId::new(1));
/// a.send(NodeId::new(1), Lane::Request, vec![1, 2, 3]);
/// assert!(b.recv(Lane::Request).is_none(), "still in flight");
/// for _ in 0..3 {
///     hub.tick();
/// }
/// assert_eq!(b.recv(Lane::Request), Some(vec![1, 2, 3]));
/// ```
#[derive(Debug, Clone)]
pub struct LoopbackHub {
    inner: Arc<Mutex<HubInner>>,
}

impl LoopbackHub {
    /// Creates a hub for `nodes` endpoints with a fixed `latency` in cycles
    /// from send to earliest delivery.
    pub fn new(nodes: usize, latency: u64) -> Self {
        LoopbackHub {
            inner: Arc::new(Mutex::new(HubInner {
                now: Cycle::ZERO,
                latency,
                jitter: None,
                seq: 0,
                queues: (0..nodes)
                    .map(|_| [BTreeMap::new(), BTreeMap::new()])
                    .collect(),
            })),
        }
    }

    /// Adds seeded delivery jitter: each frame's latency is extended by a
    /// uniform draw from `0..=max_extra` cycles. Different frames to the
    /// same destination can overtake each other — deliberate, deterministic
    /// reordering to exercise the protocol's window machinery.
    pub fn with_jitter(self, seed: u64, max_extra: u64) -> Self {
        {
            let mut inner = self.lock();
            inner.jitter =
                (max_extra > 0).then(|| (SimRng::from_seed_stream(seed, 0x17e), max_extra));
        }
        self
    }

    /// Advances the shared hub clock by one cycle.
    pub fn tick(&self) {
        self.lock().now += 1;
    }

    /// The shared hub clock.
    pub fn now(&self) -> Cycle {
        self.lock().now
    }

    /// The earliest cycle at which any in-flight frame becomes deliverable,
    /// if one exists. An event-driven driver folds this into its wakeup
    /// computation: [`WireEndpoint::next_event`](crate::WireEndpoint::next_event)
    /// cannot see frames still inside the transport, so the hub must be
    /// consulted for them.
    pub fn next_delivery(&self) -> Option<u64> {
        self.lock()
            .queues
            .iter()
            .flat_map(|lanes| lanes.iter())
            .filter_map(|q| q.first_key_value().map(|(&(at, _), _)| at))
            .min()
    }

    /// Frames currently in flight or awaiting [`Transport::recv`], across
    /// all nodes (drain/termination checks).
    pub fn in_flight(&self) -> usize {
        self.lock()
            .queues
            .iter()
            .map(|lanes| lanes[0].len() + lanes[1].len())
            .sum()
    }

    /// Creates the endpoint for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the hub's node range.
    pub fn endpoint(&self, node: NodeId) -> LoopbackTransport {
        assert!(
            node.index() < self.lock().queues.len(),
            "node {node} outside the hub's range"
        );
        LoopbackTransport {
            node,
            inner: Arc::clone(&self.inner),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// One node's endpoint on a [`LoopbackHub`].
#[derive(Debug)]
pub struct LoopbackTransport {
    node: NodeId,
    inner: Arc<Mutex<HubInner>>,
}

impl LoopbackTransport {
    fn lock(&self) -> std::sync::MutexGuard<'_, HubInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl Transport for LoopbackTransport {
    fn node(&self) -> NodeId {
        self.node
    }

    fn now(&self) -> Cycle {
        self.lock().now
    }

    fn tick(&mut self) {
        // Time is the hub's: LoopbackHub::tick advances all endpoints at once.
    }

    fn send(&mut self, dst: NodeId, lane: Lane, frame: Vec<u8>) {
        let mut inner = self.lock();
        let mut deliver_at = inner.now.as_u64() + inner.latency;
        if let Some((rng, max_extra)) = &mut inner.jitter {
            deliver_at += rng.next_u64() % (*max_extra + 1);
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.queues[dst.index()][lane.index()].insert((deliver_at, seq), frame);
    }

    fn recv(&mut self, lane: Lane) -> Option<Vec<u8>> {
        let mut inner = self.lock();
        let now = inner.now.as_u64();
        let queue = &mut inner.queues[self.node.index()][lane.index()];
        let (&key, _) = queue.first_key_value()?;
        if key.0 > now {
            return None;
        }
        queue.remove(&key)
    }
}

impl BatchTransport for LoopbackTransport {
    /// Lock-once batch drain: one hub-mutex acquisition per batch instead
    /// of one per frame.
    fn recv_batch(&mut self, lane: Lane, max: usize, out: &mut Vec<Vec<u8>>) -> usize {
        let mut inner = self.lock();
        let now = inner.now.as_u64();
        let queue = &mut inner.queues[self.node.index()][lane.index()];
        let mut n = 0;
        while n < max {
            match queue.first_key_value() {
                Some((&key, _)) if key.0 <= now => {
                    if let Some(frame) = queue.remove(&key) {
                        out.push(frame);
                        n += 1;
                    }
                }
                _ => break,
            }
        }
        n
    }

    /// Lock-once coalesced flush of a whole send batch.
    fn send_batch(&mut self, frames: &mut Vec<(NodeId, Lane, Vec<u8>)>) {
        let mut inner = self.lock();
        for (dst, lane, frame) in frames.drain(..) {
            let mut deliver_at = inner.now.as_u64() + inner.latency;
            if let Some((rng, max_extra)) = &mut inner.jitter {
                deliver_at += rng.next_u64() % (*max_extra + 1);
            }
            let seq = inner.seq;
            inner.seq += 1;
            inner.queues[dst.index()][lane.index()].insert((deliver_at, seq), frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_holds_frames_until_due() {
        let hub = LoopbackHub::new(2, 5);
        let mut a = hub.endpoint(NodeId::new(0));
        let mut b = hub.endpoint(NodeId::new(1));
        a.send(NodeId::new(1), Lane::Request, vec![42]);
        for _ in 0..4 {
            hub.tick();
            assert!(b.recv(Lane::Request).is_none());
        }
        hub.tick();
        assert_eq!(b.recv(Lane::Request), Some(vec![42]));
        assert_eq!(hub.in_flight(), 0);
    }

    #[test]
    fn lanes_are_independent() {
        let hub = LoopbackHub::new(2, 0);
        let mut a = hub.endpoint(NodeId::new(0));
        let mut b = hub.endpoint(NodeId::new(1));
        a.send(NodeId::new(1), Lane::Reply, vec![1]);
        hub.tick();
        assert!(b.recv(Lane::Request).is_none());
        assert_eq!(b.recv(Lane::Reply), Some(vec![1]));
    }

    #[test]
    fn batch_recv_is_bounded_and_batch_send_delivers() {
        let hub = LoopbackHub::new(2, 1);
        let mut a = hub.endpoint(NodeId::new(0));
        let mut b = hub.endpoint(NodeId::new(1));
        let mut batch: Vec<(NodeId, Lane, Vec<u8>)> = (0..5u8)
            .map(|i| (NodeId::new(1), Lane::Request, vec![i]))
            .collect();
        a.send_batch(&mut batch);
        assert!(batch.is_empty(), "send_batch drains the queue");
        hub.tick();
        let mut out = Vec::new();
        assert_eq!(b.recv_batch(Lane::Request, 3, &mut out), 3, "bounded");
        assert_eq!(b.recv_batch(Lane::Request, 8, &mut out), 2, "remainder");
        let got: Vec<u8> = out.iter().map(|f| f[0]).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4], "send order preserved");
    }

    #[test]
    fn next_delivery_reports_the_earliest_in_flight_frame() {
        let hub = LoopbackHub::new(2, 5);
        let mut a = hub.endpoint(NodeId::new(0));
        assert_eq!(hub.next_delivery(), None, "empty hub has no deadline");
        a.send(NodeId::new(1), Lane::Request, vec![1]);
        hub.tick();
        a.send(NodeId::new(1), Lane::Reply, vec![2]);
        assert_eq!(hub.next_delivery(), Some(5), "earliest across lanes");
        let mut b = hub.endpoint(NodeId::new(1));
        for _ in 0..5 {
            hub.tick();
        }
        assert!(b.recv(Lane::Request).is_some());
        assert_eq!(hub.next_delivery(), Some(6), "remaining frame's deadline");
    }

    #[test]
    fn jitter_is_deterministic_and_can_reorder() {
        let run = |seed: u64| {
            let hub = LoopbackHub::new(2, 2).with_jitter(seed, 16);
            let mut a = hub.endpoint(NodeId::new(0));
            let mut b = hub.endpoint(NodeId::new(1));
            for i in 0..32u8 {
                a.send(NodeId::new(1), Lane::Request, vec![i]);
            }
            let mut got = Vec::new();
            for _ in 0..64 {
                hub.tick();
                while let Some(f) = b.recv(Lane::Request) {
                    got.push(f[0]);
                }
            }
            assert_eq!(got.len(), 32, "everything eventually delivers");
            got
        };
        let first = run(7);
        assert_eq!(first, run(7), "same seed, same delivery order");
        let sorted: Vec<u8> = (0..32).collect();
        assert_ne!(first, sorted, "jitter actually reorders");
    }
}
