//! Byte encoding of the paper's packet and acknowledgment formats.
//!
//! The header the paper fixes in §3 travels here as real bytes: the source
//! node identifier (16 bits, "allowing 65536 different nodes"), the
//! *bulk-request* and *bulk-exit* bits, the alternating duplicate bit of the
//! §6.2 retransmission extension, and — for packets inside a bulk dialog —
//! the `{sequence number, dialog number}` pair that **replaces the
//! source-identifier bits**: a bulk data frame carries `{seq mod W, dialog}`
//! in the exact bytes a scalar frame uses for its source id, and the
//! receiver re-substitutes the sender's identity from its dialog table.
//! Acknowledgments carry a bulk grant (or rejection) with the receiver's
//! window size, or a cumulative window acknowledgment.
//!
//! All multi-byte fields are little-endian. [`decode`] is total: any byte
//! string returns `Ok` or a typed [`WireError`], never a panic — this is
//! property-tested over arbitrary inputs.
//!
//! # Integrity trailer
//!
//! Every frame ends in a 2-byte CRC-16/CCITT-FALSE checksum (little-endian)
//! over all preceding bytes. The decoder verifies the trailer *before*
//! interpreting any field, so a corrupted datagram is rejected as
//! [`WireError::Checksum`] and counted — it can never be mis-decoded into a
//! plausible frame. CRC-16 detects every single-byte corruption (indeed
//! every burst up to 16 bits), the property the chaos plane's corruption
//! injector relies on.
//!
//! # Frame layouts
//!
//! Byte offsets below are within the frame *body* (everything before the
//! checksum trailer).
//!
//! Data frame (`FLAG_ACK` clear), `25 + 3·piggy` structured bytes, padded
//! with zeros to `max(structured, 4 · size_words)`, then the trailer:
//!
//! | bytes   | field                                                       |
//! |---------|-------------------------------------------------------------|
//! | 0       | flags (see `FLAG_*`)                                        |
//! | 1..3    | destination node id                                         |
//! | 3..5    | source node id, **or** `{seq, dialog}` when `FLAG_IN_DIALOG` |
//! | 5..7    | `size_words`                                                |
//! | 7..15   | user `msg_id`                                               |
//! | 15..19  | user `pkt_index`                                            |
//! | 19..23  | user `msg_packets`                                          |
//! | 23..25  | user `user_words`                                           |
//! | 25..28  | piggybacked ack body, iff `FLAG_PIGGY`                      |
//!
//! Ack frame (`FLAG_ACK` set, `FLAG_HEARTBEAT` clear), exactly 8 body bytes:
//!
//! | bytes | field                          |
//! |-------|--------------------------------|
//! | 0     | flags (only `FLAG_ACK`+lane)   |
//! | 1..3  | destination node id            |
//! | 3..5  | source node id                 |
//! | 5..8  | ack body                       |
//!
//! Heartbeat frame (`FLAG_ACK`, `FLAG_LANE`, and `FLAG_HEARTBEAT` all set —
//! a flag combination the packet decoder rejects, so heartbeats are
//! invisible to [`decode`] and only surface via [`decode_frame`]), exactly
//! 9 body bytes:
//!
//! | bytes | field                              |
//! |-------|------------------------------------|
//! | 0     | flags (`FLAG_ACK`+`FLAG_LANE`+`FLAG_HEARTBEAT`) |
//! | 1..3  | destination node id                |
//! | 3..5  | source node id                     |
//! | 5..9  | sender incarnation epoch (u32)     |
//!
//! Ack body (3 bytes, shared by standalone and piggybacked acks): byte 0 is
//! `bit0` = bulk/scalar kind, `bit1` = echo (scalar) or terminate (bulk),
//! `bits 2..4` = grant code (scalar); bytes 1–2 are `dialog` and
//! `window`/`cum_seq` where the kind defines them, zero otherwise.

use std::fmt;

use nifdy_net::{AckInfo, BulkGrant, BulkTag, Lane, Packet, PacketStamp, UserData, Wire};
use nifdy_sim::{Cycle, NodeId, PacketId};

/// Frame flag: this is an acknowledgment frame.
const FLAG_ACK: u8 = 1 << 0;
/// Frame flag: the lane bit ([`Lane::index`] — 0 request, 1 reply).
const FLAG_LANE: u8 = 1 << 1;
/// Data flag: the sender requests a bulk dialog (§2.1.2).
const FLAG_BULK_REQUEST: u8 = 1 << 2;
/// Data flag: last packet of a bulk dialog (§2.1.2).
const FLAG_BULK_EXIT: u8 = 1 << 3;
/// Data flag: bytes 3..5 carry `{seq, dialog}` instead of the source id (§3).
const FLAG_IN_DIALOG: u8 = 1 << 4;
/// Data flag: the receiver must acknowledge (cleared by the §6.1 bypass).
const FLAG_NEEDS_ACK: u8 = 1 << 5;
/// Data flag: alternating duplicate-detection bit (§6.2).
const FLAG_DUP: u8 = 1 << 6;
/// Data flag: a piggybacked ack body follows the user fields (§6.1).
const FLAG_PIGGY: u8 = 1 << 7;
/// Control flag: combined with `FLAG_ACK | FLAG_LANE`, marks a liveness
/// heartbeat frame. Reuses the `FLAG_BULK_REQUEST` bit position, which the
/// ack decoder treats as reserved — so a heartbeat can never alias an ack.
const FLAG_HEARTBEAT: u8 = 1 << 2;
/// The exact flag byte of a heartbeat frame.
const HEARTBEAT_FLAGS: u8 = FLAG_ACK | FLAG_LANE | FLAG_HEARTBEAT;

/// Ack-body flag: cumulative bulk ack (set) vs scalar ack (clear).
const ACK_KIND_BULK: u8 = 1 << 0;
/// Ack-body flag: dup-bit echo (scalar) or dialog termination (bulk).
const ACK_ECHO_OR_TERM: u8 = 1 << 1;
/// Ack-body grant code shift (scalar acks, 2 bits).
const GRANT_SHIFT: u8 = 2;
const GRANT_NOT_REQUESTED: u8 = 0;
const GRANT_GRANTED: u8 = 1;
const GRANT_REJECTED: u8 = 2;

/// Structured length of a data frame without a piggybacked ack.
const DATA_BASE_LEN: usize = 25;
/// Length of an encoded ack body.
const ACK_BODY_LEN: usize = 3;
/// Body length of a standalone ack frame (before the checksum trailer).
const ACK_BODY_FRAME_LEN: usize = 5 + ACK_BODY_LEN;
/// Length of the CRC-16 checksum trailer every frame ends with.
pub const CHECKSUM_LEN: usize = 2;
/// Exact length of a standalone ack frame, trailer included.
pub const ACK_FRAME_LEN: usize = ACK_BODY_FRAME_LEN + CHECKSUM_LEN;
/// Body length of a heartbeat frame (before the checksum trailer).
const HEARTBEAT_BODY_LEN: usize = 9;
/// Exact length of a heartbeat frame, trailer included.
pub const HEARTBEAT_FRAME_LEN: usize = HEARTBEAT_BODY_LEN + CHECKSUM_LEN;
/// Encoded bytes per packet word: frames are padded so their byte length is
/// proportional to the simulated `size_words` (4-byte words), keeping byte
/// counts and word counts interchangeable in bandwidth arithmetic.
pub const BYTES_PER_WORD: usize = 4;

/// Decode failure. Every variant names the first violated invariant, so
/// fuzzing distinguishes "short read" from genuine corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed fields require.
    Truncated {
        /// Bytes the structure needs.
        need: usize,
        /// Bytes present.
        got: usize,
    },
    /// The frame's total length disagrees with the length its own header
    /// implies (covers both truncated padding and oversized frames).
    LengthMismatch {
        /// Length the header implies.
        expect: usize,
        /// Bytes present.
        got: usize,
    },
    /// A flag bit that must be zero for this frame kind was set.
    ReservedFlags {
        /// The offending flag byte.
        byte: u8,
    },
    /// A scalar ack carried grant code 3, which no encoder produces.
    BadGrant {
        /// The offending 2-bit code.
        code: u8,
    },
    /// An acknowledgment frame claimed the request lane; NIFDY acks travel
    /// only on the reply network.
    AckOnRequestLane,
    /// A data frame declared `size_words == 0`.
    ZeroSize,
    /// A byte that must be zero (frame padding, or an ack-body field the
    /// kind leaves undefined) was not.
    NonZeroPadding {
        /// Offset of the first nonzero byte.
        at: usize,
    },
    /// The CRC-16 trailer did not match the frame body: the bytes were
    /// corrupted in flight (or were never a NIFDY frame).
    Checksum {
        /// Checksum the body implies.
        expect: u16,
        /// Checksum the trailer carried.
        got: u16,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WireError::Truncated { need, got } => {
                write!(f, "truncated frame: need {need} bytes, got {got}")
            }
            WireError::LengthMismatch { expect, got } => {
                write!(
                    f,
                    "frame length {got} does not match header-implied {expect}"
                )
            }
            WireError::ReservedFlags { byte } => {
                write!(f, "reserved flag bits set: {byte:#010b}")
            }
            WireError::BadGrant { code } => write!(f, "invalid bulk grant code {code}"),
            WireError::AckOnRequestLane => write!(f, "ack frame on the request lane"),
            WireError::ZeroSize => write!(f, "data frame with size_words == 0"),
            WireError::NonZeroPadding { at } => {
                write!(f, "nonzero padding byte at offset {at}")
            }
            WireError::Checksum { expect, got } => {
                write!(
                    f,
                    "checksum mismatch: body implies {expect:#06x}, trailer carries {got:#06x}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Who a decoded frame says it is from.
///
/// Scalar frames and acks carry the 16-bit source node id. Bulk frames do
/// not: §3 substitutes `{seq, dialog}` into the source-identifier bits, so
/// the true sender is only recoverable from the receiver's dialog table
/// (which [`NifdyUnit`](nifdy::NifdyUnit) consults when the packet reaches
/// `receive_bulk`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireSource {
    /// The frame named its source node.
    Node(NodeId),
    /// Bulk frame: the source bits hold `{seq, dialog}` (in
    /// [`WirePacket::wire`]'s bulk tag); the receiver re-substitutes the
    /// sender from the dialog slot.
    Dialog,
}

/// A decoded frame: everything the bytes say, nothing they don't.
///
/// Unlike the simulator's [`Packet`] this has no [`PacketId`], no timing
/// stamps, and — for bulk frames — no source node; those are bookkeeping the
/// wire genuinely does not carry. [`WirePacket::into_packet`] rebuilds a
/// full `Packet` by synthesizing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirePacket {
    /// Source as carried (or not) by the frame.
    pub src: WireSource,
    /// Destination node.
    pub dst: NodeId,
    /// Lane bit.
    pub lane: Lane,
    /// Declared packet length in 32-bit words.
    pub size_words: u16,
    /// Protocol header fields (shared with the simulated wire format).
    pub wire: Wire,
    /// Workload annotation.
    pub user: UserData,
}

impl WirePacket {
    /// Captures a simulator packet as its on-the-wire content. For bulk
    /// data packets the source id is *dropped* (the §3 substitution); it is
    /// not recoverable from the resulting frame.
    pub fn from_packet(pkt: &Packet) -> Self {
        let src = match pkt.wire {
            Wire::Data { bulk: Some(_), .. } => WireSource::Dialog,
            Wire::Data { bulk: None, .. } | Wire::Ack(_) => WireSource::Node(pkt.src),
        };
        WirePacket {
            src,
            dst: pkt.dst,
            lane: pkt.lane,
            size_words: pkt.size_words,
            wire: pkt.wire,
            user: pkt.user,
        }
    }

    /// Rebuilds a simulator [`Packet`]. `id` is the receiver-local
    /// bookkeeping id, `now` stamps both timing fields, and
    /// `placeholder_src` fills the source of bulk frames until
    /// `NifdyUnit::receive_bulk` re-substitutes the dialog peer.
    pub fn into_packet(self, id: PacketId, placeholder_src: NodeId, now: Cycle) -> Packet {
        let src = match self.src {
            WireSource::Node(n) => n,
            WireSource::Dialog => placeholder_src,
        };
        Packet {
            id,
            src,
            dst: self.dst,
            lane: self.lane,
            size_words: self.size_words,
            wire: self.wire,
            user: self.user,
            stamp: PacketStamp {
                created: now,
                injected: now,
            },
        }
    }

    /// Encoded length of this packet in bytes, checksum trailer included.
    pub fn encoded_len(&self) -> usize {
        self.body_len() + CHECKSUM_LEN
    }

    /// Length of the frame body (everything before the checksum trailer).
    fn body_len(&self) -> usize {
        match self.wire {
            Wire::Ack(_) => ACK_BODY_FRAME_LEN,
            Wire::Data { piggy_ack, .. } => {
                let structured = DATA_BASE_LEN + if piggy_ack.is_some() { ACK_BODY_LEN } else { 0 };
                structured.max(BYTES_PER_WORD * usize::from(self.size_words))
            }
        }
    }
}

/// A liveness heartbeat: "node `src`, incarnation `epoch`, is alive". Sent
/// periodically by supervised endpoints on the reply lane; an epoch jump
/// tells the peer the sender restarted and its dialog state is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// The node announcing liveness.
    pub src: NodeId,
    /// The node being kept alive.
    pub dst: NodeId,
    /// The sender's incarnation number, bumped on every restart.
    pub epoch: u32,
}

/// Everything a byte frame can decode into: a protocol packet or a
/// liveness heartbeat. [`decode_frame`] is the total decoder over both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFrame {
    /// A data or acknowledgment frame.
    Packet(WirePacket),
    /// A liveness/recovery heartbeat.
    Heartbeat(Heartbeat),
}

fn encode_ack_body(buf: &mut Vec<u8>, info: AckInfo) {
    match info {
        AckInfo::Scalar { grant, echo } => {
            let (code, dialog, window) = match grant {
                BulkGrant::NotRequested => (GRANT_NOT_REQUESTED, 0, 0),
                BulkGrant::Granted { dialog, window } => (GRANT_GRANTED, dialog, window),
                BulkGrant::Rejected => (GRANT_REJECTED, 0, 0),
            };
            let mut flags = code << GRANT_SHIFT;
            if echo {
                flags |= ACK_ECHO_OR_TERM;
            }
            buf.extend_from_slice(&[flags, dialog, window]);
        }
        AckInfo::Bulk {
            dialog,
            cum_seq,
            terminate,
        } => {
            let mut flags = ACK_KIND_BULK;
            if terminate {
                flags |= ACK_ECHO_OR_TERM;
            }
            buf.extend_from_slice(&[flags, dialog, cum_seq]);
        }
    }
}

fn decode_ack_body(body: [u8; ACK_BODY_LEN], base: usize) -> Result<AckInfo, WireError> {
    // Destructure instead of indexing: the decode path must be total.
    let [flags, byte1, byte2] = body;
    if flags & !(ACK_KIND_BULK | ACK_ECHO_OR_TERM | (0b11 << GRANT_SHIFT)) != 0 {
        return Err(WireError::ReservedFlags { byte: flags });
    }
    if flags & ACK_KIND_BULK != 0 {
        if flags >> GRANT_SHIFT != 0 {
            // Bulk acks have no grant field; those bits must be zero.
            return Err(WireError::ReservedFlags { byte: flags });
        }
        return Ok(AckInfo::Bulk {
            dialog: byte1,
            cum_seq: byte2,
            terminate: flags & ACK_ECHO_OR_TERM != 0,
        });
    }
    let grant = match (flags >> GRANT_SHIFT) & 0b11 {
        GRANT_NOT_REQUESTED | GRANT_REJECTED => {
            // The dialog/window bytes are undefined for these codes; require
            // the canonical zero so every frame has exactly one encoding.
            if byte1 != 0 {
                return Err(WireError::NonZeroPadding { at: base + 1 });
            }
            if byte2 != 0 {
                return Err(WireError::NonZeroPadding { at: base + 2 });
            }
            if (flags >> GRANT_SHIFT) & 0b11 == GRANT_NOT_REQUESTED {
                BulkGrant::NotRequested
            } else {
                BulkGrant::Rejected
            }
        }
        GRANT_GRANTED => BulkGrant::Granted {
            dialog: byte1,
            window: byte2,
        },
        code => return Err(WireError::BadGrant { code }),
    };
    Ok(AckInfo::Scalar {
        grant,
        echo: flags & ACK_ECHO_OR_TERM != 0,
    })
}

/// Encodes a packet into a fresh byte frame (checksum trailer included).
/// See the module docs for the layout. The inverse of [`decode`]:
/// `decode(&encode(&wp)) == Ok(wp)` for every encodable `wp`.
pub fn encode(wp: &WirePacket) -> Vec<u8> {
    let mut buf = Vec::with_capacity(wp.encoded_len());
    match wp.wire {
        Wire::Ack(info) => {
            let src = match wp.src {
                WireSource::Node(n) => n,
                // Unreachable for any `WirePacket` built by `from_packet`;
                // stay total and emit a self-addressed ack rather than tear
                // the encoder down.
                WireSource::Dialog => {
                    debug_assert!(false, "acks always carry their source");
                    wp.dst
                }
            };
            buf.push(FLAG_ACK | lane_bit(wp.lane));
            buf.extend_from_slice(&node_bytes(wp.dst));
            buf.extend_from_slice(&node_bytes(src));
            encode_ack_body(&mut buf, info);
        }
        Wire::Data {
            bulk_request,
            bulk_exit,
            bulk,
            needs_ack,
            dup_bit,
            piggy_ack,
        } => {
            let mut flags = lane_bit(wp.lane);
            if bulk_request {
                flags |= FLAG_BULK_REQUEST;
            }
            if bulk_exit {
                flags |= FLAG_BULK_EXIT;
            }
            if bulk.is_some() {
                flags |= FLAG_IN_DIALOG;
            }
            if needs_ack {
                flags |= FLAG_NEEDS_ACK;
            }
            if dup_bit {
                flags |= FLAG_DUP;
            }
            if piggy_ack.is_some() {
                flags |= FLAG_PIGGY;
            }
            buf.push(flags);
            buf.extend_from_slice(&node_bytes(wp.dst));
            match (bulk, wp.src) {
                // §3: the {seq, dialog} pair occupies the source-id bytes.
                (Some(BulkTag { dialog, seq }), _) => buf.extend_from_slice(&[seq, dialog]),
                (None, WireSource::Node(n)) => buf.extend_from_slice(&node_bytes(n)),
                // Unreachable for any `WirePacket` built by `from_packet`;
                // stay total and fall back to the destination id.
                (None, WireSource::Dialog) => {
                    debug_assert!(false, "scalar frames always carry their source");
                    buf.extend_from_slice(&node_bytes(wp.dst));
                }
            }
            buf.extend_from_slice(&wp.size_words.to_le_bytes());
            buf.extend_from_slice(&wp.user.msg_id.to_le_bytes());
            buf.extend_from_slice(&wp.user.pkt_index.to_le_bytes());
            buf.extend_from_slice(&wp.user.msg_packets.to_le_bytes());
            buf.extend_from_slice(&wp.user.user_words.to_le_bytes());
            if let Some(info) = piggy_ack {
                encode_ack_body(&mut buf, info);
            }
            buf.resize(wp.body_len(), 0);
        }
    }
    append_checksum(&mut buf);
    buf
}

/// Encodes a liveness heartbeat frame (checksum trailer included).
pub fn encode_heartbeat(hb: &Heartbeat) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEARTBEAT_FRAME_LEN);
    buf.push(HEARTBEAT_FLAGS);
    buf.extend_from_slice(&node_bytes(hb.dst));
    buf.extend_from_slice(&node_bytes(hb.src));
    buf.extend_from_slice(&hb.epoch.to_le_bytes());
    append_checksum(&mut buf);
    buf
}

/// Decodes a byte frame into a protocol packet. Total over arbitrary
/// input: every byte string yields `Ok` or a typed [`WireError`]; no input
/// panics (property-tested in `tests/codec_props.rs`). Heartbeat frames
/// are rejected here (`ReservedFlags`) — use [`decode_frame`] to accept
/// both kinds.
pub fn decode(bytes: &[u8]) -> Result<WirePacket, WireError> {
    decode_body(verify_checksum(bytes)?)
}

/// Decodes a byte frame into either a protocol packet or a heartbeat.
/// Total over arbitrary input, like [`decode`].
pub fn decode_frame(bytes: &[u8]) -> Result<WireFrame, WireError> {
    let body = verify_checksum(bytes)?;
    if byte_at(body, 0) == HEARTBEAT_FLAGS {
        return decode_heartbeat_body(body).map(WireFrame::Heartbeat);
    }
    decode_body(body).map(WireFrame::Packet)
}

/// Reads just the routing fields — destination node and lane — from an
/// encoded frame, without decoding or checksum-verifying it. Total over
/// arbitrary input: anything too short to carry the flag byte, the
/// destination id, and the checksum trailer returns `None`.
///
/// This is the demultiplexer's fast path: a daemon hosting many endpoints
/// behind one socket must pick the owning endpoint before it is worth
/// paying for a full [`decode_frame`] — which the endpoint's own port
/// still performs, so a frame with a corrupted destination merely lands at
/// (and is rejected by) the wrong endpoint's decoder, exactly as a
/// misrouted datagram would.
pub fn peek_route(frame: &[u8]) -> Option<(NodeId, Lane)> {
    if frame.len() < 3 + CHECKSUM_LEN {
        return None;
    }
    let lane = if byte_at(frame, 0) & FLAG_LANE != 0 {
        Lane::Reply
    } else {
        Lane::Request
    };
    Some((read_node(frame, 1), lane))
}

/// CRC-16/CCITT-FALSE over `bytes` (init `0xFFFF`, polynomial `0x1021`,
/// no reflection, no final xor).
fn crc16(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in bytes {
        crc ^= u16::from(b) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Appends the little-endian CRC-16 trailer over the body built so far.
fn append_checksum(buf: &mut Vec<u8>) {
    let crc = crc16(buf);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Splits a frame into its body after verifying the checksum trailer.
fn verify_checksum(bytes: &[u8]) -> Result<&[u8], WireError> {
    // The shortest frame body is one flag byte; anything shorter than
    // body + trailer cannot be a frame at all.
    if bytes.len() < 1 + CHECKSUM_LEN {
        return Err(WireError::Truncated {
            need: 1 + CHECKSUM_LEN,
            got: bytes.len(),
        });
    }
    let split = bytes.len() - CHECKSUM_LEN;
    let body = tail_from(bytes, 0).get(..split).unwrap_or(&[]);
    let got = u16::from_le_bytes(arr_at(bytes, split));
    let expect = crc16(body);
    if got != expect {
        return Err(WireError::Checksum { expect, got });
    }
    Ok(body)
}

/// Decodes a heartbeat frame body (flag byte already matched).
fn decode_heartbeat_body(bytes: &[u8]) -> Result<Heartbeat, WireError> {
    if bytes.len() != HEARTBEAT_BODY_LEN {
        return Err(WireError::LengthMismatch {
            expect: HEARTBEAT_BODY_LEN,
            got: bytes.len(),
        });
    }
    Ok(Heartbeat {
        dst: read_node(bytes, 1),
        src: read_node(bytes, 3),
        epoch: u32::from_le_bytes(arr_at(bytes, 5)),
    })
}

/// Decodes a packet frame body (checksum already stripped and verified).
fn decode_body(bytes: &[u8]) -> Result<WirePacket, WireError> {
    let &[flags, ..] = bytes else {
        return Err(WireError::Truncated { need: 1, got: 0 });
    };
    let lane = if flags & FLAG_LANE != 0 {
        Lane::Reply
    } else {
        Lane::Request
    };
    if flags & FLAG_ACK != 0 {
        if flags & !(FLAG_ACK | FLAG_LANE) != 0 {
            return Err(WireError::ReservedFlags { byte: flags });
        }
        if lane == Lane::Request {
            return Err(WireError::AckOnRequestLane);
        }
        if bytes.len() < ACK_BODY_FRAME_LEN {
            return Err(WireError::Truncated {
                need: ACK_BODY_FRAME_LEN,
                got: bytes.len(),
            });
        }
        if bytes.len() != ACK_BODY_FRAME_LEN {
            return Err(WireError::LengthMismatch {
                expect: ACK_BODY_FRAME_LEN,
                got: bytes.len(),
            });
        }
        let info = decode_ack_body(arr_at(bytes, 5), 5)?;
        return Ok(WirePacket {
            src: WireSource::Node(read_node(bytes, 3)),
            dst: read_node(bytes, 1),
            lane,
            size_words: nifdy_net::ACK_WORDS,
            wire: Wire::Ack(info),
            user: UserData::default(),
        });
    }

    let structured = DATA_BASE_LEN
        + if flags & FLAG_PIGGY != 0 {
            ACK_BODY_LEN
        } else {
            0
        };
    if bytes.len() < structured {
        return Err(WireError::Truncated {
            need: structured,
            got: bytes.len(),
        });
    }
    let size_words = u16::from_le_bytes(arr_at(bytes, 5));
    if size_words == 0 {
        return Err(WireError::ZeroSize);
    }
    let expect = structured.max(BYTES_PER_WORD * usize::from(size_words));
    if bytes.len() != expect {
        return Err(WireError::LengthMismatch {
            expect,
            got: bytes.len(),
        });
    }
    if let Some(pad) = tail_from(bytes, structured).iter().position(|&b| b != 0) {
        return Err(WireError::NonZeroPadding {
            at: structured + pad,
        });
    }
    let (src, bulk) = if flags & FLAG_IN_DIALOG != 0 {
        (
            WireSource::Dialog,
            Some(BulkTag {
                seq: byte_at(bytes, 3),
                dialog: byte_at(bytes, 4),
            }),
        )
    } else {
        (WireSource::Node(read_node(bytes, 3)), None)
    };
    let piggy_ack = if flags & FLAG_PIGGY != 0 {
        Some(decode_ack_body(
            arr_at(bytes, DATA_BASE_LEN),
            DATA_BASE_LEN,
        )?)
    } else {
        None
    };
    Ok(WirePacket {
        src,
        dst: read_node(bytes, 1),
        lane,
        size_words,
        wire: Wire::Data {
            bulk_request: flags & FLAG_BULK_REQUEST != 0,
            bulk_exit: flags & FLAG_BULK_EXIT != 0,
            bulk,
            needs_ack: flags & FLAG_NEEDS_ACK != 0,
            dup_bit: flags & FLAG_DUP != 0,
            piggy_ack,
        },
        user: UserData {
            msg_id: u64::from_le_bytes(arr_at(bytes, 7)),
            pkt_index: u32::from_le_bytes(arr_at(bytes, 15)),
            msg_packets: u32::from_le_bytes(arr_at(bytes, 19)),
            user_words: u16::from_le_bytes(arr_at(bytes, 23)),
        },
    })
}

#[inline]
fn lane_bit(lane: Lane) -> u8 {
    match lane {
        Lane::Request => 0,
        Lane::Reply => FLAG_LANE,
    }
}

#[inline]
fn node_bytes(node: NodeId) -> [u8; 2] {
    // NodeId enforces the paper's 16-bit bound at construction.
    (node.index() as u16).to_le_bytes()
}

#[inline]
fn read_node(bytes: &[u8], at: usize) -> NodeId {
    NodeId::new(usize::from(u16::from_le_bytes(arr_at(bytes, at))))
}

/// Byte at `at`, or `0` past the end. Decode pre-validates every frame
/// length, so the default is never observed; totality (no indexing, no
/// panic) is what the decode path requires.
#[inline]
fn byte_at(bytes: &[u8], at: usize) -> u8 {
    bytes.get(at).copied().unwrap_or(0)
}

/// Fixed-size window starting at `at`, zero-filled past the end of the
/// input. Same totality contract as [`byte_at`].
#[inline]
fn arr_at<const N: usize>(bytes: &[u8], at: usize) -> [u8; N] {
    let mut out = [0u8; N];
    for (dst, src) in out.iter_mut().zip(bytes.iter().skip(at)) {
        *dst = *src;
    }
    out
}

/// Suffix starting at `at`; empty when `at` is out of range.
#[inline]
fn tail_from(bytes: &[u8], at: usize) -> &[u8] {
    bytes.get(at..).unwrap_or(&[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_route_agrees_with_full_decode_on_every_frame_kind() {
        let hb = Heartbeat {
            src: NodeId::new(3),
            dst: NodeId::new(1_000),
            epoch: 9,
        };
        let frame = encode_heartbeat(&hb);
        assert_eq!(peek_route(&frame), Some((NodeId::new(1_000), Lane::Reply)));

        let pkt = Packet::data(PacketId::new(1), NodeId::new(2), NodeId::new(513), 6);
        let frame = encode(&WirePacket::from_packet(&pkt));
        assert_eq!(peek_route(&frame), Some((NodeId::new(513), pkt.lane)));

        assert_eq!(peek_route(&[]), None, "total on empty input");
        assert_eq!(peek_route(&[0xFF; 4]), None, "total on short input");
    }

    fn round_trip(wp: WirePacket) {
        let bytes = encode(&wp);
        assert_eq!(bytes.len(), wp.encoded_len());
        assert_eq!(decode(&bytes), Ok(wp), "frame: {bytes:02x?}");
    }

    #[test]
    fn scalar_data_round_trips() {
        round_trip(WirePacket {
            src: WireSource::Node(NodeId::new(7)),
            dst: NodeId::new(65_535),
            lane: Lane::Request,
            size_words: 6,
            wire: Wire::Data {
                bulk_request: true,
                bulk_exit: false,
                bulk: None,
                needs_ack: true,
                dup_bit: true,
                piggy_ack: None,
            },
            user: UserData {
                msg_id: u64::MAX,
                pkt_index: 3,
                msg_packets: 9,
                user_words: 5,
            },
        });
    }

    #[test]
    fn bulk_data_drops_the_source_bits() {
        let wp = WirePacket {
            src: WireSource::Dialog,
            dst: NodeId::new(2),
            lane: Lane::Request,
            size_words: 8,
            wire: Wire::Data {
                bulk_request: false,
                bulk_exit: true,
                bulk: Some(BulkTag {
                    dialog: 255,
                    seq: 255,
                }),
                needs_ack: true,
                dup_bit: false,
                piggy_ack: Some(AckInfo::Bulk {
                    dialog: 1,
                    cum_seq: 200,
                    terminate: true,
                }),
            },
            user: UserData::default(),
        };
        let bytes = encode(&wp);
        // The {seq, dialog} pair sits exactly where a scalar source would.
        assert_eq!(bytes[3], 255, "seq in the low source byte");
        assert_eq!(bytes[4], 255, "dialog in the high source byte");
        round_trip(wp);
    }

    #[test]
    fn every_ack_shape_round_trips() {
        let infos = [
            AckInfo::Scalar {
                grant: BulkGrant::NotRequested,
                echo: false,
            },
            AckInfo::Scalar {
                grant: BulkGrant::NotRequested,
                echo: true,
            },
            AckInfo::Scalar {
                grant: BulkGrant::Granted {
                    dialog: 3,
                    window: 64,
                },
                echo: false,
            },
            AckInfo::Scalar {
                grant: BulkGrant::Rejected,
                echo: true,
            },
            AckInfo::Bulk {
                dialog: 0,
                cum_seq: 0,
                terminate: false,
            },
            AckInfo::Bulk {
                dialog: 255,
                cum_seq: 255,
                terminate: true,
            },
        ];
        for info in infos {
            round_trip(WirePacket {
                src: WireSource::Node(NodeId::new(4)),
                dst: NodeId::new(0),
                lane: Lane::Reply,
                size_words: nifdy_net::ACK_WORDS,
                wire: Wire::Ack(info),
                user: UserData::default(),
            });
        }
    }

    #[test]
    fn packet_conversion_round_trips_scalar() {
        let pkt = Packet::data(PacketId::new(9), NodeId::new(1), NodeId::new(2), 6);
        let wp = WirePacket::from_packet(&pkt);
        let back = wp.into_packet(PacketId::new(9), NodeId::new(2), Cycle::ZERO);
        assert_eq!(back.src, pkt.src);
        assert_eq!(back.dst, pkt.dst);
        assert_eq!(back.wire, pkt.wire);
        assert_eq!(back.size_words, pkt.size_words);
    }

    #[test]
    fn bulk_conversion_substitutes_placeholder() {
        let mut pkt = Packet::data(PacketId::new(0), NodeId::new(5), NodeId::new(6), 8);
        pkt.wire = Wire::Data {
            bulk_request: false,
            bulk_exit: false,
            bulk: Some(BulkTag { dialog: 0, seq: 3 }),
            needs_ack: true,
            dup_bit: false,
            piggy_ack: None,
        };
        let wp = WirePacket::from_packet(&pkt);
        assert_eq!(wp.src, WireSource::Dialog, "bulk frames lose the source");
        let back = wp.into_packet(PacketId::new(0), NodeId::new(6), Cycle::new(4));
        assert_eq!(
            back.src,
            NodeId::new(6),
            "placeholder until the dialog table re-substitutes"
        );
    }

    /// Appends a valid checksum trailer to a hand-built frame body, so the
    /// structural validators past the trailer check can be exercised.
    fn with_crc(mut body: Vec<u8>) -> Vec<u8> {
        append_checksum(&mut body);
        body
    }

    #[test]
    fn decode_rejects_the_documented_corruptions() {
        assert_eq!(decode(&[]), Err(WireError::Truncated { need: 3, got: 0 }));
        // Ack with a reserved data flag set.
        assert_eq!(
            decode(&with_crc(vec![FLAG_ACK | FLAG_DUP, 0, 0, 0, 0, 0, 0, 0])),
            Err(WireError::ReservedFlags {
                byte: FLAG_ACK | FLAG_DUP
            })
        );
        // Ack claiming the request lane.
        assert_eq!(
            decode(&with_crc(vec![FLAG_ACK, 0, 0, 0, 0, 0, 0, 0])),
            Err(WireError::AckOnRequestLane)
        );
        // Grant code 3 does not exist.
        let mut ack = vec![FLAG_ACK | FLAG_LANE, 0, 0, 0, 0, 0b11 << GRANT_SHIFT, 0, 0];
        assert_eq!(
            decode(&with_crc(ack.clone())),
            Err(WireError::BadGrant { code: 3 })
        );
        // Oversized ack.
        ack[5] = 0;
        ack.push(0);
        assert_eq!(
            decode(&with_crc(ack)),
            Err(WireError::LengthMismatch { expect: 8, got: 9 })
        );
        // Data frame with zero size.
        let mut data = vec![0u8; DATA_BASE_LEN];
        assert_eq!(decode(&with_crc(data.clone())), Err(WireError::ZeroSize));
        // Nonzero padding.
        data[5] = 8; // size_words = 8 -> 32-byte body
        data.resize(32, 0);
        data[31] = 1;
        assert_eq!(
            decode(&with_crc(data)),
            Err(WireError::NonZeroPadding { at: 31 })
        );
    }

    #[test]
    fn checksum_is_verified_before_any_field() {
        let wp = WirePacket {
            src: WireSource::Node(NodeId::new(3)),
            dst: NodeId::new(4),
            lane: Lane::Request,
            size_words: 6,
            wire: Wire::Data {
                bulk_request: false,
                bulk_exit: false,
                bulk: None,
                needs_ack: true,
                dup_bit: false,
                piggy_ack: None,
            },
            user: UserData::default(),
        };
        let mut bytes = encode(&wp);
        assert_eq!(bytes.len(), wp.encoded_len());
        // Corrupt one body byte: the checksum rejects before field decode.
        bytes[7] ^= 0x40;
        assert!(
            matches!(decode(&bytes), Err(WireError::Checksum { .. })),
            "corrupted body must fail the trailer check"
        );
        // Corrupt only the trailer: same rejection.
        bytes[7] ^= 0x40;
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert!(matches!(decode(&bytes), Err(WireError::Checksum { .. })));
    }

    #[test]
    fn heartbeat_round_trips_and_is_invisible_to_packet_decode() {
        let hb = Heartbeat {
            src: NodeId::new(9),
            dst: NodeId::new(65_535),
            epoch: 0xDEAD_BEEF,
        };
        let bytes = encode_heartbeat(&hb);
        assert_eq!(bytes.len(), HEARTBEAT_FRAME_LEN);
        assert_eq!(decode_frame(&bytes), Ok(WireFrame::Heartbeat(hb)));
        // The packet decoder must reject a heartbeat (its flag byte carries
        // a bit that is reserved for acks), never misparse it as an ack.
        assert_eq!(
            decode(&bytes),
            Err(WireError::ReservedFlags {
                byte: HEARTBEAT_FLAGS
            })
        );
    }

    #[test]
    fn decode_frame_handles_packets_too() {
        let wp = WirePacket {
            src: WireSource::Node(NodeId::new(1)),
            dst: NodeId::new(2),
            lane: Lane::Reply,
            size_words: nifdy_net::ACK_WORDS,
            wire: Wire::Ack(AckInfo::Scalar {
                grant: BulkGrant::NotRequested,
                echo: true,
            }),
            user: UserData::default(),
        };
        assert_eq!(decode_frame(&encode(&wp)), Ok(WireFrame::Packet(wp)));
        // A truncated heartbeat fails cleanly.
        let hb = encode_heartbeat(&Heartbeat {
            src: NodeId::new(0),
            dst: NodeId::new(1),
            epoch: 7,
        });
        for cut in 0..hb.len() {
            assert!(decode_frame(&hb[..cut]).is_err(), "prefix {cut} decoded");
        }
    }
}
