//! The wire-layer chaos plane: a [`FaultyTransport`] wrapper that subjects
//! any [`Transport`] to seeded, deterministic frame faults.
//!
//! This mirrors the flit-level fault plane in `nifdy-net`
//! ([`FaultConfig`](nifdy_net::FaultConfig) / `FaultPlane`): the same
//! two-state Gilbert–Elliott burst model, the same scheduled outage windows
//! (reused verbatim via [`LinkWindow`]), the same judge-once-per-frame
//! discipline, and per-cause counters for every fault injected. On top of
//! the fabric plane's *drop* repertoire the wire plane adds the abuses only
//! a byte carrier can commit: single-byte **corruption** (caught by the
//! codec's CRC trailer, never mis-decoded), frame **duplication**, seeded
//! **delay**, and one-tick **reorder** deferral.
//!
//! Determinism contract: all randomness comes from a dedicated
//! [`SimRng`] stream keyed by the wrapped node, and an *inactive* config
//! (every probability zero, no burst chain, no partitions) never draws from
//! the generator at all — `FaultyTransport` over a clean config is
//! byte-identical to the bare transport for any seed, which the property
//! suite asserts.

use std::collections::BTreeMap;

use nifdy_net::{GilbertElliott, Lane, LinkWindow};
use nifdy_sim::{NodeId, SimRng};
use nifdy_trace::{trace_event, EventKind, TraceHandle, WireFaultCause};

use crate::transport::Transport;

/// Stream id for the wire chaos plane's private generator, decorrelated
/// from the loopback jitter stream (`0x17e`) and the fabric fault stream
/// (`0xFA17`). The wrapped node's index is mixed in so every endpoint's
/// fault lottery is independent under one seed.
const WIRE_FAULT_STREAM: u64 = 0xFA27_0000;

/// Configuration of the wire chaos plane, mirroring
/// [`FaultConfig`](nifdy_net::FaultConfig)'s shape and builder style.
///
/// The default disables every model; the plane is then a pure passthrough
/// that never draws randomness.
///
/// # Examples
///
/// ```
/// use nifdy_net::GilbertElliott;
/// use nifdy_wire::WireFaultConfig;
///
/// let faults = WireFaultConfig::default()
///     .with_burst(GilbertElliott::with_mean_loss(0.05))
///     .with_corrupt_prob(0.01);
/// assert!(faults.validate().is_ok());
/// assert!(faults.is_active());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireFaultConfig {
    /// Uniform drop probability for data (request-lane) frames.
    pub drop_prob: f64,
    /// Uniform drop probability for ack/reply (reply-lane) frames.
    pub ack_drop_prob: f64,
    /// Probability of flipping one byte of a surviving frame.
    pub corrupt_prob: f64,
    /// Probability of delivering a surviving frame twice.
    pub duplicate_prob: f64,
    /// Probability of holding a surviving frame back `1..=delay_max` ticks.
    pub delay_prob: f64,
    /// Upper bound of the seeded delay, in ticks (minimum effective 1).
    pub delay_max: u64,
    /// Probability of deferring a surviving frame one tick so later sends
    /// overtake it.
    pub reorder_prob: f64,
    /// Optional Gilbert–Elliott burst-loss chain (applies to both lanes).
    pub burst: Option<GilbertElliott>,
    /// Scheduled partition windows: while a window covers a destination
    /// node, every frame sent to it is swallowed.
    pub partitions: Vec<LinkWindow>,
}

impl WireFaultConfig {
    /// Sets the uniform data-lane drop probability.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the uniform ack-lane drop probability.
    pub fn with_ack_drop_prob(mut self, p: f64) -> Self {
        self.ack_drop_prob = p;
        self
    }

    /// Sets the single-byte corruption probability.
    pub fn with_corrupt_prob(mut self, p: f64) -> Self {
        self.corrupt_prob = p;
        self
    }

    /// Sets the frame-duplication probability.
    pub fn with_duplicate_prob(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }

    /// Sets the delay probability and its bound in ticks.
    pub fn with_delay(mut self, p: f64, delay_max: u64) -> Self {
        self.delay_prob = p;
        self.delay_max = delay_max;
        self
    }

    /// Sets the one-tick reorder probability.
    pub fn with_reorder_prob(mut self, p: f64) -> Self {
        self.reorder_prob = p;
        self
    }

    /// Enables Gilbert–Elliott bursty loss.
    pub fn with_burst(mut self, ge: GilbertElliott) -> Self {
        self.burst = Some(ge);
        self
    }

    /// Adds a scheduled partition window for one destination node.
    pub fn with_partition(mut self, window: LinkWindow) -> Self {
        self.partitions.push(window);
        self
    }

    /// Whether any fault model is enabled.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.ack_drop_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.delay_prob > 0.0
            || self.reorder_prob > 0.0
            || self.burst.is_some()
            || !self.partitions.is_empty()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (probability
    /// outside `[0, 1]`, a delay model with no bound, an invalid burst
    /// chain, or an empty partition window).
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("ack_drop_prob", self.ack_drop_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("delay_prob", self.delay_prob),
            ("reorder_prob", self.reorder_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be within [0, 1]"));
            }
        }
        if self.delay_prob > 0.0 && self.delay_max == 0 {
            return Err("delay_prob > 0 needs delay_max >= 1".into());
        }
        if let Some(ge) = &self.burst {
            ge.validate()?;
        }
        for w in &self.partitions {
            if w.down_from >= w.up_at {
                return Err(format!(
                    "partition window {:?} is empty: down_from {} >= up_at {}",
                    w.name, w.down_from, w.up_at
                ));
            }
        }
        Ok(())
    }
}

/// Per-cause counters for every fault the plane injected, in
/// [`WireFaultCause::ALL`] order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireFaultStats {
    drops: u64,
    ack_drops: u64,
    bursts: u64,
    partitions: u64,
    corrupts: u64,
    duplicates: u64,
    delays: u64,
    reorders: u64,
}

impl WireFaultStats {
    /// The number of faults injected for one cause.
    pub fn count(&self, cause: WireFaultCause) -> u64 {
        match cause {
            WireFaultCause::Drop => self.drops,
            WireFaultCause::AckDrop => self.ack_drops,
            WireFaultCause::Burst => self.bursts,
            WireFaultCause::Partition => self.partitions,
            WireFaultCause::Corrupt => self.corrupts,
            WireFaultCause::Duplicate => self.duplicates,
            WireFaultCause::Delay => self.delays,
            WireFaultCause::Reorder => self.reorders,
        }
    }

    /// Total faults injected across all causes.
    pub fn total(&self) -> u64 {
        WireFaultCause::ALL.iter().map(|&c| self.count(c)).sum()
    }

    /// Frames the plane swallowed outright (drop-class causes only).
    pub fn dropped(&self) -> u64 {
        self.drops + self.ack_drops + self.bursts + self.partitions
    }

    /// `(label, count)` pairs in stable order, for reports and JSON.
    pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
        WireFaultCause::ALL
            .iter()
            .map(|&c| (c.label(), self.count(c)))
            .collect()
    }

    fn incr(&mut self, cause: WireFaultCause) {
        match cause {
            WireFaultCause::Drop => self.drops += 1,
            WireFaultCause::AckDrop => self.ack_drops += 1,
            WireFaultCause::Burst => self.bursts += 1,
            WireFaultCause::Partition => self.partitions += 1,
            WireFaultCause::Corrupt => self.corrupts += 1,
            WireFaultCause::Duplicate => self.duplicates += 1,
            WireFaultCause::Delay => self.delays += 1,
            WireFaultCause::Reorder => self.reorders += 1,
        }
    }
}

/// Frames the plane is holding back, ordered by (release tick, send
/// sequence) so flush order is deterministic.
type HeldFrames = BTreeMap<(u64, u64), (NodeId, Lane, Vec<u8>)>;

/// A [`Transport`] wrapper that injects seeded faults into outbound frames.
///
/// Faults are judged once per [`send`](Transport::send), in a fixed order
/// mirroring the fabric plane's: the Gilbert–Elliott chain advances exactly
/// once per judged frame (so the burst trajectory is a pure function of the
/// send sequence), then partition windows, burst loss, and per-lane uniform
/// loss decide survival; survivors may then be corrupted, duplicated,
/// delayed, or reordered. Held frames release on [`tick`](Transport::tick).
///
/// # Examples
///
/// ```
/// use nifdy_net::Lane;
/// use nifdy_sim::NodeId;
/// use nifdy_wire::{FaultyTransport, LoopbackHub, Transport, WireFaultConfig};
///
/// let hub = LoopbackHub::new(2, 0);
/// let cfg = WireFaultConfig::default().with_drop_prob(1.0);
/// let mut a = FaultyTransport::new(hub.endpoint(NodeId::new(0)), cfg, 7);
/// a.send(NodeId::new(1), Lane::Request, vec![1, 2, 3]);
/// assert_eq!(a.stats().dropped(), 1, "everything drops at p = 1");
/// assert_eq!(hub.in_flight(), 0);
/// ```
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    cfg: WireFaultConfig,
    active: bool,
    rng: SimRng,
    /// Gilbert–Elliott chain state: `true` while in the bad (burst) state.
    in_burst: bool,
    held: HeldFrames,
    seq: u64,
    stats: WireFaultStats,
    trace: TraceHandle,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the chaos plane described by `cfg`, drawing
    /// randomness from a dedicated stream of `seed` keyed by the wrapped
    /// node (so every endpoint's lottery is independent, and wrapping never
    /// perturbs the inner transport's own seeded behavior).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`WireFaultConfig::validate`].
    pub fn new(inner: T, cfg: WireFaultConfig, seed: u64) -> Self {
        if let Err(why) = cfg.validate() {
            panic!("invalid wire fault config: {why}");
        }
        let active = cfg.is_active();
        let stream = WIRE_FAULT_STREAM | inner.node().index() as u64;
        FaultyTransport {
            inner,
            cfg,
            active,
            rng: SimRng::from_seed_stream(seed, stream),
            in_burst: false,
            held: HeldFrames::new(),
            seq: 0,
            stats: WireFaultStats::default(),
            trace: TraceHandle::off(),
        }
    }

    /// Connects the plane to a flight recorder: every injected fault is
    /// logged as a [`EventKind::WireFault`] on the wrapped node's track.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Per-cause fault counters.
    pub fn stats(&self) -> &WireFaultStats {
        &self.stats
    }

    /// Whether any fault model is enabled.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Frames currently held back by the delay/reorder models.
    pub fn held(&self) -> usize {
        self.held.len()
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn record(&mut self, cause: WireFaultCause, bytes: usize) {
        self.stats.incr(cause);
        let now = self.inner.now();
        let node = self.inner.node();
        trace_event!(
            self.trace,
            now,
            node,
            EventKind::WireFault {
                cause,
                bytes: bytes as u32,
            }
        );
    }

    /// Releases every held frame whose release tick has arrived.
    fn flush_held(&mut self) {
        let now = self.inner.now().as_u64();
        while let Some((&key, _)) = self.held.first_key_value() {
            if key.0 > now {
                break;
            }
            let Some((dst, lane, frame)) = self.held.remove(&key) else {
                break;
            };
            self.inner.send(dst, lane, frame);
        }
    }

    /// Stashes a frame for release at `at` (deterministic flush order).
    fn hold_until(&mut self, at: u64, dst: NodeId, lane: Lane, frame: Vec<u8>) {
        let seq = self.seq;
        self.seq += 1;
        self.held.insert((at, seq), (dst, lane, frame));
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn node(&self) -> NodeId {
        self.inner.node()
    }

    fn now(&self) -> nifdy_sim::Cycle {
        self.inner.now()
    }

    fn tick(&mut self) {
        self.inner.tick();
        if self.active {
            self.flush_held();
        }
    }

    fn send(&mut self, dst: NodeId, lane: Lane, mut frame: Vec<u8>) {
        if !self.active {
            // Inactive plane: pure passthrough, zero RNG draws, so a clean
            // config is byte-identical to the bare transport at any seed.
            self.inner.send(dst, lane, frame);
            return;
        }
        let now = self.inner.now().as_u64();
        // Advance the burst chain first so its trajectory is independent of
        // the deterministic rules firing (same discipline as the fabric's
        // FaultPlane::judge).
        let burst_says_drop = if let Some(ge) = self.cfg.burst {
            let loss = if self.in_burst {
                ge.loss_bad
            } else {
                ge.loss_good
            };
            let drop = loss > 0.0 && self.rng.gen_bool(loss);
            let flip = if self.in_burst { ge.p_exit } else { ge.p_enter };
            if flip > 0.0 && self.rng.gen_bool(flip) {
                self.in_burst = !self.in_burst;
            }
            drop
        } else {
            false
        };
        if self
            .cfg
            .partitions
            .iter()
            .any(|w| w.node == dst && w.is_down_at(now))
        {
            self.record(WireFaultCause::Partition, frame.len());
            return;
        }
        if burst_says_drop {
            self.record(WireFaultCause::Burst, frame.len());
            return;
        }
        let (cause, p) = match lane {
            Lane::Request => (WireFaultCause::Drop, self.cfg.drop_prob),
            Lane::Reply => (WireFaultCause::AckDrop, self.cfg.ack_drop_prob),
        };
        if p > 0.0 && self.rng.gen_bool(p) {
            self.record(cause, frame.len());
            return;
        }
        // The frame survives; non-fatal faults may still mangle its trip.
        if self.cfg.corrupt_prob > 0.0 && self.rng.gen_bool(self.cfg.corrupt_prob) {
            let at = (self.rng.next_u64() % frame.len().max(1) as u64) as usize;
            // Mask 1..=255: a zero mask would be a no-op, not a fault.
            let mask = (self.rng.next_u64() % 255 + 1) as u8;
            if let Some(byte) = frame.get_mut(at) {
                *byte ^= mask;
                self.record(WireFaultCause::Corrupt, frame.len());
            }
        }
        let duplicate = self.cfg.duplicate_prob > 0.0 && self.rng.gen_bool(self.cfg.duplicate_prob);
        if duplicate {
            self.record(WireFaultCause::Duplicate, frame.len());
            self.inner.send(dst, lane, frame.clone());
        }
        if self.cfg.delay_prob > 0.0 && self.rng.gen_bool(self.cfg.delay_prob) {
            let extra = 1 + self.rng.next_u64() % self.cfg.delay_max.max(1);
            self.record(WireFaultCause::Delay, frame.len());
            self.hold_until(now + extra, dst, lane, frame);
            return;
        }
        if self.cfg.reorder_prob > 0.0 && self.rng.gen_bool(self.cfg.reorder_prob) {
            // Deferred to the next tick: frames sent later this tick (and
            // next tick, before the flush) overtake it.
            self.record(WireFaultCause::Reorder, frame.len());
            self.hold_until(now + 1, dst, lane, frame);
            return;
        }
        self.inner.send(dst, lane, frame);
    }

    fn recv(&mut self, lane: Lane) -> Option<Vec<u8>> {
        self.inner.recv(lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackHub;
    use nifdy_sim::Cycle;

    fn drain(hub: &LoopbackHub, ep: &mut impl Transport, ticks: u64) -> Vec<Vec<u8>> {
        let mut got = Vec::new();
        for _ in 0..ticks {
            hub.tick();
            ep.tick();
            for lane in Lane::ALL {
                while let Some(f) = ep.recv(lane) {
                    got.push(f);
                }
            }
        }
        got
    }

    #[test]
    fn inactive_plane_is_byte_identical_to_clean() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let clean_hub = LoopbackHub::new(2, 1);
            let mut clean_tx = clean_hub.endpoint(NodeId::new(0));
            let mut clean_rx = clean_hub.endpoint(NodeId::new(1));
            let fault_hub = LoopbackHub::new(2, 1);
            let mut fault_tx = FaultyTransport::new(
                fault_hub.endpoint(NodeId::new(0)),
                WireFaultConfig::default(),
                seed,
            );
            let mut fault_rx = fault_hub.endpoint(NodeId::new(1));
            for i in 0..64u8 {
                let frame = vec![i, i ^ 0x5A];
                clean_tx.send(NodeId::new(1), Lane::Request, frame.clone());
                fault_tx.send(NodeId::new(1), Lane::Request, frame);
            }
            let a = drain(&clean_hub, &mut clean_rx, 8);
            let b = drain(&fault_hub, &mut fault_rx, 8);
            assert_eq!(a, b, "seed {seed}: inactive plane diverged");
            assert_eq!(fault_tx.stats().total(), 0);
        }
    }

    #[test]
    fn drop_probability_one_swallows_everything() {
        let hub = LoopbackHub::new(2, 0);
        let cfg = WireFaultConfig::default()
            .with_drop_prob(1.0)
            .with_ack_drop_prob(1.0);
        let mut tx = FaultyTransport::new(hub.endpoint(NodeId::new(0)), cfg, 3);
        for _ in 0..10 {
            tx.send(NodeId::new(1), Lane::Request, vec![1]);
            tx.send(NodeId::new(1), Lane::Reply, vec![2]);
        }
        assert_eq!(hub.in_flight(), 0);
        assert_eq!(tx.stats().count(WireFaultCause::Drop), 10);
        assert_eq!(tx.stats().count(WireFaultCause::AckDrop), 10);
    }

    #[test]
    fn partition_window_swallows_only_its_destination() {
        let hub = LoopbackHub::new(3, 0);
        let cfg = WireFaultConfig::default().with_partition(LinkWindow::edge(
            NodeId::new(1),
            0,
            u64::MAX,
        ));
        let mut tx = FaultyTransport::new(hub.endpoint(NodeId::new(0)), cfg, 0);
        tx.send(NodeId::new(1), Lane::Request, vec![1]);
        tx.send(NodeId::new(2), Lane::Request, vec![2]);
        assert_eq!(hub.in_flight(), 1, "only the partitioned peer loses");
        assert_eq!(tx.stats().count(WireFaultCause::Partition), 1);
    }

    #[test]
    fn corruption_changes_bytes_and_counts() {
        let hub = LoopbackHub::new(2, 0);
        let cfg = WireFaultConfig::default().with_corrupt_prob(1.0);
        let mut tx = FaultyTransport::new(hub.endpoint(NodeId::new(0)), cfg, 9);
        let mut rx = hub.endpoint(NodeId::new(1));
        let original = vec![0u8; 16];
        tx.send(NodeId::new(1), Lane::Request, original.clone());
        hub.tick();
        let got = rx.recv(Lane::Request).expect("delivered");
        assert_ne!(got, original, "corruption must actually flip a byte");
        assert_eq!(
            got.iter().zip(&original).filter(|(a, b)| a != b).count(),
            1,
            "exactly one byte flips"
        );
        assert_eq!(tx.stats().count(WireFaultCause::Corrupt), 1);
    }

    #[test]
    fn duplication_delivers_twice() {
        let hub = LoopbackHub::new(2, 0);
        let cfg = WireFaultConfig::default().with_duplicate_prob(1.0);
        let mut tx = FaultyTransport::new(hub.endpoint(NodeId::new(0)), cfg, 5);
        let mut rx = hub.endpoint(NodeId::new(1));
        tx.send(NodeId::new(1), Lane::Request, vec![7]);
        hub.tick();
        assert_eq!(rx.recv(Lane::Request), Some(vec![7]));
        assert_eq!(rx.recv(Lane::Request), Some(vec![7]));
        assert_eq!(rx.recv(Lane::Request), None);
        assert_eq!(tx.stats().count(WireFaultCause::Duplicate), 1);
    }

    #[test]
    fn delay_holds_frames_then_releases() {
        let hub = LoopbackHub::new(2, 0);
        let cfg = WireFaultConfig::default().with_delay(1.0, 4);
        let mut tx = FaultyTransport::new(hub.endpoint(NodeId::new(0)), cfg, 1);
        let mut rx = hub.endpoint(NodeId::new(1));
        tx.send(NodeId::new(1), Lane::Request, vec![9]);
        assert_eq!(hub.in_flight(), 0, "held, not yet on the wire");
        assert_eq!(tx.held(), 1);
        let got = drain(&hub, &mut rx, 8);
        // `drain` only ticks rx; tick tx alongside to flush the hold.
        assert!(got.is_empty() || got == vec![vec![9]]);
        for _ in 0..8 {
            tx.tick();
            hub.tick();
        }
        assert_eq!(tx.held(), 0, "hold released within delay_max ticks");
        assert_eq!(tx.stats().count(WireFaultCause::Delay), 1);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = |seed: u64| {
            let hub = LoopbackHub::new(2, 1);
            let cfg = WireFaultConfig::default()
                .with_burst(GilbertElliott::with_mean_loss(0.2))
                .with_corrupt_prob(0.1)
                .with_duplicate_prob(0.1)
                .with_reorder_prob(0.1);
            let mut tx = FaultyTransport::new(hub.endpoint(NodeId::new(0)), cfg, seed);
            let mut rx = hub.endpoint(NodeId::new(1));
            let mut got = Vec::new();
            for i in 0..200u8 {
                tx.send(NodeId::new(1), Lane::Request, vec![i, i ^ 0xFF]);
                tx.tick();
                hub.tick();
                while let Some(f) = rx.recv(Lane::Request) {
                    got.push(f);
                }
            }
            (got, *tx.stats())
        };
        let (frames_a, stats_a) = run(11);
        let (frames_b, stats_b) = run(11);
        assert_eq!(frames_a, frames_b, "same seed, same delivered bytes");
        assert_eq!(stats_a, stats_b, "same seed, same fault counters");
        assert!(stats_a.total() > 0, "the chaos plane actually fired");
        let (frames_c, _) = run(12);
        assert_ne!(frames_a, frames_c, "different seed, different lottery");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(WireFaultConfig::default()
            .with_corrupt_prob(1.5)
            .validate()
            .is_err());
        assert!(WireFaultConfig::default()
            .with_delay(0.5, 0)
            .validate()
            .is_err());
        assert!(WireFaultConfig::default()
            .with_partition(LinkWindow::edge(NodeId::new(0), 5, 5))
            .validate()
            .is_err());
        assert!(WireFaultConfig::default().validate().is_ok());
    }

    #[test]
    fn clock_and_node_pass_through() {
        let hub = LoopbackHub::new(2, 0);
        let tx = FaultyTransport::new(hub.endpoint(NodeId::new(1)), WireFaultConfig::default(), 0);
        assert_eq!(tx.node(), NodeId::new(1));
        assert_eq!(tx.now(), Cycle::ZERO);
        hub.tick();
        assert_eq!(tx.now(), Cycle::new(1));
    }
}
