//! Sim/wire differential conformance: the same seeded workload driven
//! through the cycle-accurate fabric and through a byte transport must
//! deliver identically.
//!
//! The protocol state machine ([`NifdyUnit`]) is shared verbatim between
//! the two stacks — only the [`NetPort`](nifdy_net::NetPort) under it
//! differs —
//! so any divergence in per-destination delivery order or in the dialog
//! lifecycle is a codec or transport bug, not a protocol variation. The
//! workload is a pairwise permutation (node *i* talks only to one partner),
//! which makes "per-destination delivery order" exactly "per-pair delivery
//! order" and keeps the expected log trivially computable: NIFDY guarantees
//! sender order per source, so every pair's log must equal its send order
//! regardless of latency, jitter, or which stack carried the bytes.

use std::collections::BTreeMap;

use nifdy::{FailureKind, Nic, NifdyConfig, NifdyUnit, OutboundPacket};
use nifdy_net::topology::Mesh;
use nifdy_net::{Fabric, FabricConfig, FaultConfig, UserData};
use nifdy_sim::NodeId;
use nifdy_trace::{TraceConfig, TraceHandle};

use crate::endpoint::WireEndpoint;
use crate::fault::{FaultyTransport, WireFaultConfig, WireFaultStats};
use crate::transport::LoopbackHub;

/// Per-pair delivery record: `(src, dst) -> [(msg_id, pkt_index), ...]` in
/// the order the receiving processor polled the packets.
pub type DeliveryLog = BTreeMap<(usize, usize), Vec<(u64, u32)>>;

/// Dialog-lifecycle trace events, the protocol-visible fingerprint the two
/// stacks must agree on. Frame- and fabric-level events are excluded on
/// purpose: they describe the carrier, not the protocol.
pub const LIFECYCLE_EVENTS: [&str; 5] = [
    "bulk_request",
    "dialog_open",
    "dialog_grant",
    "dialog_reject",
    "dialog_close",
];

/// One node's dialog lifecycle, split by role. A node is simultaneously a
/// bulk *sender* (bulk_request, dialog_open, teardown closes) and a bulk
/// *receiver* (dialog_grant, dialog_reject, exit/reclaim closes); the two
/// state machines are independent, and their relative interleaving on one
/// node legitimately depends on carrier latency — so each role is compared
/// as its own event stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeLifecycle {
    /// Outgoing-dialog events, in record order.
    pub sender: Vec<&'static str>,
    /// Incoming-dialog events, in record order.
    pub receiver: Vec<&'static str>,
}

/// A seeded pairwise workload: every node streams `messages` messages of
/// `packets_per_message` packets to one partner.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Node count (the permutation needs at least 2).
    pub nodes: usize,
    /// Messages each node sends to its partner.
    pub messages: u64,
    /// Packets per message.
    pub packets_per_message: u32,
    /// Packet length in words, including the header word.
    pub size_words: u16,
    /// Request bulk dialogs for every message (scalar otherwise).
    pub want_bulk: bool,
    /// Seed choosing the partner permutation.
    pub seed: u64,
    /// Give up (panic) if a run has not drained by this many cycles.
    pub max_cycles: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            nodes: 4,
            messages: 3,
            packets_per_message: 8,
            size_words: 6,
            want_bulk: true,
            seed: 1,
            max_cycles: 200_000,
        }
    }
}

impl WorkloadSpec {
    /// The partner node `i` sends to: a rotation by `1 + seed mod (n-1)`,
    /// which is a fixed-point-free permutation for any seed.
    pub fn partner(&self, i: usize) -> usize {
        let shift = 1 + (self.seed as usize) % (self.nodes - 1);
        (i + shift) % self.nodes
    }

    /// The protocol config both stacks run.
    pub fn config(&self) -> NifdyConfig {
        NifdyConfig::mesh()
    }

    /// Total packets the workload delivers.
    pub fn total_packets(&self) -> u64 {
        self.nodes as u64 * self.messages * u64::from(self.packets_per_message)
    }

    /// The delivery log every conforming run must produce: each pair sees
    /// its packets in exact send order.
    pub fn expected_log(&self) -> DeliveryLog {
        let mut log = DeliveryLog::new();
        for src in 0..self.nodes {
            let dst = self.partner(src);
            let mut order = Vec::new();
            for m in 0..self.messages {
                for p in 0..self.packets_per_message {
                    order.push((self.msg_id(src, m), p));
                }
            }
            log.insert((src, dst), order);
        }
        log
    }

    fn msg_id(&self, src: usize, m: u64) -> u64 {
        ((src as u64) << 32) | m
    }
}

/// Everything a conformance run produces for comparison.
#[derive(Debug)]
pub struct ConformanceReport {
    /// Per-pair delivery order observed at the receivers.
    pub log: DeliveryLog,
    /// Per-node, per-role dialog-lifecycle event names, in record order
    /// (empty when the `trace` feature is off).
    pub lifecycle: Vec<NodeLifecycle>,
    /// Cycles until the run drained.
    pub cycles: u64,
}

impl ConformanceReport {
    /// Panics with a readable diff if two runs disagree on delivery order
    /// or dialog lifecycle.
    pub fn assert_matches(&self, other: &ConformanceReport, label: &str) {
        assert_eq!(
            self.log, other.log,
            "{label}: per-destination delivery orders diverge"
        );
        assert_eq!(
            self.lifecycle, other.lifecycle,
            "{label}: dialog lifecycles diverge"
        );
    }
}

/// Per-pair typed delivery-failure counts:
/// `(src, dst) -> {failure kind name -> count}`. Chaos parity compares
/// failures as totals per kind, not as timed sequences, because *when* a
/// retry budget exhausts depends on the carrier's latency — only *what*
/// failed and *how* is protocol-determined.
pub type FailureLog = BTreeMap<(usize, usize), BTreeMap<&'static str, u64>>;

/// Stable comparison name for a failure kind (the per-dialog details —
/// which slot id, how many unacked — legitimately differ between carriers).
fn failure_kind_name(kind: &FailureKind) -> &'static str {
    match kind {
        FailureKind::Scalar => "scalar",
        FailureKind::BulkDialog { .. } => "bulk_dialog",
    }
}

/// Everything a chaos-conformance run produces for comparison.
///
/// Unlike [`ConformanceReport`], the dialog lifecycle is *not* compared:
/// the two fault planes draw from independent RNG streams, so which
/// message triggers a retransmission or a reject is carrier-specific. The
/// protocol guarantees under test are the ones loss cannot excuse:
/// per-destination delivery order, zero corrupted deliveries, and typed
/// failure parity when retry budgets exhaust.
#[derive(Debug)]
pub struct ChaosReport {
    /// Per-pair delivery order observed at the receivers.
    pub log: DeliveryLog,
    /// Per-pair typed failures drained from the units.
    pub failures: FailureLog,
    /// Frames rejected by the codec (checksum trailer catches corruption).
    pub decode_errors: u64,
    /// Summed per-cause wire fault counters (empty for fabric runs).
    pub fault_counts: Vec<(&'static str, u64)>,
    /// Cycles until the run quiesced.
    pub cycles: u64,
    /// Summed sender retransmissions (`NicStats.retransmitted`) — ground
    /// truth for the journey analyzer's conservation checks.
    pub retransmitted: u64,
    /// Packets the simulated fabric's fault plane dropped (zero for wire
    /// runs, whose loss shows up in `fault_counts`).
    pub fabric_dropped: u64,
}

impl ChaosReport {
    /// Packets delivered across all receivers (delivery-log volume).
    pub fn delivered(&self) -> u64 {
        self.log.values().map(|v| v.len() as u64).sum()
    }

    /// Typed delivery failures across all pairs.
    pub fn failure_total(&self) -> u64 {
        self.failures.values().flat_map(|m| m.values()).sum()
    }

    /// Total wire faults the chaos plane injected.
    pub fn wire_fault_total(&self) -> u64 {
        self.fault_counts.iter().map(|&(_, n)| n).sum()
    }

    /// Panics with a readable diff if two chaos runs disagree on delivery
    /// order or typed-failure accounting.
    pub fn assert_matches(&self, other: &ChaosReport, label: &str) {
        assert_eq!(
            self.log, other.log,
            "{label}: per-destination delivery orders diverge under faults"
        );
        assert_eq!(
            self.failures, other.failures,
            "{label}: typed delivery-failure accounting diverges"
        );
    }
}

/// The protocol config chaos runs use: the clean conformance preset plus
/// the §6.2 retransmission machinery (adaptive RTO, the given retry
/// budget), without which any loss would wedge the run instead of either
/// recovering or surfacing a typed failure.
pub fn chaos_config(spec: &WorkloadSpec, budget: u32) -> NifdyConfig {
    spec.config()
        .with_retx_timeout(64)
        .with_adaptive_rto(true)
        .with_retx_budget(budget)
}

/// Per-node send-side pacing: feeds the workload to a unit one packet at a
/// time, retrying rejected sends.
struct Feeder {
    dst: NodeId,
    queue: std::vec::IntoIter<UserData>,
    head: Option<UserData>,
    size_words: u16,
    want_bulk: bool,
}

impl Feeder {
    fn new(spec: &WorkloadSpec, src: usize) -> Self {
        let mut queue = Vec::new();
        for m in 0..spec.messages {
            for p in 0..spec.packets_per_message {
                queue.push(UserData {
                    msg_id: spec.msg_id(src, m),
                    pkt_index: p,
                    msg_packets: spec.packets_per_message,
                    // One header word plus bookkeeping, rest is payload.
                    user_words: spec.size_words.saturating_sub(2),
                });
            }
        }
        Feeder {
            dst: NodeId::new(spec.partner(src)),
            queue: queue.into_iter(),
            head: None,
            size_words: spec.size_words,
            want_bulk: spec.want_bulk,
        }
    }

    fn pump(&mut self, mut try_send: impl FnMut(OutboundPacket) -> bool) {
        let Some(user) = self.head.take().or_else(|| self.queue.next()) else {
            return;
        };
        let pkt = OutboundPacket::new(self.dst, self.size_words)
            .with_bulk(self.want_bulk)
            .with_user(user);
        if !try_send(pkt) {
            self.head = Some(user);
        }
    }

    /// Every workload packet has been accepted by the interface.
    fn done(&self) -> bool {
        self.head.is_none() && self.queue.len() == 0
    }
}

fn lifecycle_projection(trace: &TraceHandle, nodes: usize) -> Vec<NodeLifecycle> {
    use nifdy_trace::{DialogEnd, EventKind};
    let mut per_node = vec![NodeLifecycle::default(); nodes];
    for ev in trace.snapshot() {
        let name = ev.kind.name();
        let slot = &mut per_node[ev.node.index()];
        match ev.kind {
            EventKind::BulkRequest { .. }
            | EventKind::DialogOpen { .. }
            | EventKind::DialogClose {
                end: DialogEnd::TornDown,
                ..
            } => slot.sender.push(name),
            EventKind::DialogGrant { .. }
            | EventKind::DialogReject { .. }
            | EventKind::DialogClose { .. } => slot.receiver.push(name),
            _ => {}
        }
    }
    per_node
}

fn trace_handle() -> TraceHandle {
    TraceHandle::recording(TraceConfig::new().with_capacity_per_node(1 << 16))
}

/// Mesh dimensions for `nodes`: the most square factorization.
fn mesh_dims(nodes: usize) -> (usize, usize) {
    let mut w = (nodes as f64).sqrt() as usize;
    while w > 1 && !nodes.is_multiple_of(w) {
        w -= 1;
    }
    (w.max(1), nodes / w.max(1))
}

/// Runs the workload through the cycle-accurate simulated fabric.
///
/// # Panics
///
/// Panics if the run does not drain within `spec.max_cycles`.
pub fn run_fabric(spec: &WorkloadSpec) -> ConformanceReport {
    assert!(spec.nodes >= 2, "the permutation needs at least 2 nodes");
    let (w, h) = mesh_dims(spec.nodes);
    let mut fab = Fabric::new(
        Box::new(Mesh::d2(w, h)),
        FabricConfig::default().with_seed(spec.seed),
    );
    let trace = trace_handle();
    let mut units: Vec<NifdyUnit> = (0..spec.nodes)
        .map(|i| {
            let mut u = NifdyUnit::new(NodeId::new(i), spec.config());
            u.attach_trace(trace.clone());
            u
        })
        .collect();
    let mut feeders: Vec<Feeder> = (0..spec.nodes).map(|i| Feeder::new(spec, i)).collect();
    let mut log = DeliveryLog::new();
    let mut delivered = 0u64;
    let mut cycles = 0u64;
    while delivered < spec.total_packets() {
        assert!(
            cycles < spec.max_cycles,
            "fabric run wedged: {delivered}/{} packets after {cycles} cycles",
            spec.total_packets()
        );
        for (i, unit) in units.iter_mut().enumerate() {
            let now = fab.now();
            feeders[i].pump(|pkt| unit.try_send(pkt, now));
            unit.step(&mut fab);
            while let Some(d) = unit.poll(fab.now()) {
                log.entry((d.src.index(), i))
                    .or_default()
                    .push((d.user.msg_id, d.user.pkt_index));
                delivered += 1;
            }
        }
        fab.step();
        cycles += 1;
    }
    // Quiesce: dialog teardown (the final combined acks and close events)
    // happens after the last delivery; both stacks must trace it.
    while !units.iter().all(Nic::is_idle) {
        assert!(cycles < spec.max_cycles, "fabric run never quiesced");
        for unit in units.iter_mut() {
            unit.step(&mut fab);
            assert!(unit.poll(fab.now()).is_none(), "delivery after drain");
        }
        fab.step();
        cycles += 1;
    }
    ConformanceReport {
        log,
        lifecycle: lifecycle_projection(&trace, spec.nodes),
        cycles,
    }
}

/// Runs the workload through the loopback byte transport: encode → carry →
/// decode on every hop. `latency` is the hub's fixed delivery delay;
/// `jitter` adds a seeded uniform `0..=jitter` extra delay per frame, which
/// deliberately reorders frames to exercise the window machinery.
///
/// # Panics
///
/// Panics if the run does not drain within `spec.max_cycles`.
pub fn run_loopback(spec: &WorkloadSpec, latency: u64, jitter: u64) -> ConformanceReport {
    assert!(spec.nodes >= 2, "the permutation needs at least 2 nodes");
    let hub = LoopbackHub::new(spec.nodes, latency).with_jitter(spec.seed, jitter);
    let trace = trace_handle();
    let mut eps: Vec<WireEndpoint<_>> = (0..spec.nodes)
        .map(|i| {
            let node = NodeId::new(i);
            let mut ep = WireEndpoint::new(node, spec.config(), hub.endpoint(node));
            ep.attach_trace(trace.clone());
            ep
        })
        .collect();
    let mut feeders: Vec<Feeder> = (0..spec.nodes).map(|i| Feeder::new(spec, i)).collect();
    let mut log = DeliveryLog::new();
    let mut delivered = 0u64;
    let mut cycles = 0u64;
    while delivered < spec.total_packets() {
        assert!(
            cycles < spec.max_cycles,
            "loopback run wedged: {delivered}/{} packets after {cycles} cycles",
            spec.total_packets()
        );
        for (i, ep) in eps.iter_mut().enumerate() {
            feeders[i].pump(|pkt| ep.try_send(pkt));
            ep.step();
            while let Some(d) = ep.poll() {
                log.entry((d.src.index(), i))
                    .or_default()
                    .push((d.user.msg_id, d.user.pkt_index));
                delivered += 1;
            }
        }
        hub.tick();
        cycles += 1;
    }
    // Quiesce, as in the fabric run, so dialog teardown lands in the trace.
    while !eps.iter().all(WireEndpoint::is_idle) {
        assert!(cycles < spec.max_cycles, "loopback run never quiesced");
        for ep in eps.iter_mut() {
            ep.step();
            assert!(ep.poll().is_none(), "delivery after drain");
        }
        hub.tick();
        cycles += 1;
    }
    // No frame may have been mangled or misrouted in a clean loopback run.
    for ep in &eps {
        assert_eq!(ep.port().decode_errors(), 0, "codec corruption in flight");
        assert_eq!(ep.port().foreign(), 0, "misrouted frame");
    }
    ConformanceReport {
        log,
        lifecycle: lifecycle_projection(&trace, spec.nodes),
        cycles,
    }
}

/// Cycles of sustained all-idle (with exhausted feeders) that end a chaos
/// run: long enough for any held, delayed, or in-flight frame to land and
/// provoke more work if it is going to.
const CHAOS_QUIESCE_GRACE: u64 = 512;

/// Runs the workload through the simulated fabric with its flit-level
/// fault plane enabled. Terminates when the feeders are exhausted and
/// every unit has been idle for a sustained grace period — under loss,
/// "all packets delivered" is no longer the exit condition, because a
/// retry-budget exhaustion converts deliveries into typed failures.
///
/// # Panics
///
/// Panics if the run does not quiesce within `spec.max_cycles`.
pub fn run_fabric_chaos(spec: &WorkloadSpec, faults: FaultConfig, budget: u32) -> ChaosReport {
    run_fabric_chaos_traced(spec, faults, budget, &TraceHandle::off())
}

/// [`run_fabric_chaos`] with a caller-supplied flight recorder attached to
/// the fabric and every unit, so the run's full event stream (sends,
/// accepts, retransmits, drops, dialog lifecycle) lands in one recorder
/// for offline journey analysis.
///
/// # Panics
///
/// Panics if the run does not quiesce within `spec.max_cycles`.
pub fn run_fabric_chaos_traced(
    spec: &WorkloadSpec,
    faults: FaultConfig,
    budget: u32,
    trace: &TraceHandle,
) -> ChaosReport {
    assert!(spec.nodes >= 2, "the permutation needs at least 2 nodes");
    let (w, h) = mesh_dims(spec.nodes);
    let mut fab = Fabric::new(
        Box::new(Mesh::d2(w, h)),
        FabricConfig::default()
            .with_seed(spec.seed)
            .with_fault(faults),
    );
    fab.attach_trace(trace.clone());
    let cfg = chaos_config(spec, budget);
    let mut units: Vec<NifdyUnit> = (0..spec.nodes)
        .map(|i| {
            let mut u = NifdyUnit::new(NodeId::new(i), cfg.clone());
            u.attach_trace(trace.clone());
            u
        })
        .collect();
    let mut feeders: Vec<Feeder> = (0..spec.nodes).map(|i| Feeder::new(spec, i)).collect();
    let mut log = DeliveryLog::new();
    let mut failures = FailureLog::new();
    let mut cycles = 0u64;
    let mut idle_streak = 0u64;
    loop {
        assert!(
            cycles < spec.max_cycles,
            "fabric chaos run never quiesced ({cycles} cycles)"
        );
        for (i, unit) in units.iter_mut().enumerate() {
            let now = fab.now();
            feeders[i].pump(|pkt| unit.try_send(pkt, now));
            unit.step(&mut fab);
            while let Some(d) = unit.poll(fab.now()) {
                log.entry((d.src.index(), i))
                    .or_default()
                    .push((d.user.msg_id, d.user.pkt_index));
            }
            for f in unit.take_failures() {
                *failures
                    .entry((f.src.index(), f.dst.index()))
                    .or_default()
                    .entry(failure_kind_name(&f.kind))
                    .or_default() += 1;
            }
        }
        fab.step();
        cycles += 1;
        if feeders.iter().all(Feeder::done) && units.iter().all(Nic::is_idle) {
            idle_streak += 1;
            if idle_streak >= CHAOS_QUIESCE_GRACE {
                break;
            }
        } else {
            idle_streak = 0;
        }
    }
    ChaosReport {
        log,
        failures,
        decode_errors: 0,
        fault_counts: Vec::new(),
        cycles,
        retransmitted: units.iter().map(|u| u.stats().retransmitted.get()).sum(),
        fabric_dropped: fab.stats().dropped.get(),
    }
}

/// Runs the workload through the loopback byte transport with every
/// endpoint's frames passing through a [`FaultyTransport`] chaos plane
/// (seeded from `spec.seed`, independent per node). Termination as in
/// [`run_fabric_chaos`].
///
/// Unlike [`run_loopback`], decode errors are *expected* here (that is the
/// checksum trailer doing its job on corrupted frames) and are reported,
/// not asserted away.
///
/// # Panics
///
/// Panics if the run does not quiesce within `spec.max_cycles`.
pub fn run_loopback_chaos(
    spec: &WorkloadSpec,
    latency: u64,
    jitter: u64,
    faults: &WireFaultConfig,
    budget: u32,
) -> ChaosReport {
    run_loopback_chaos_traced(spec, latency, jitter, faults, budget, &TraceHandle::off())
}

/// [`run_loopback_chaos`] with a caller-supplied flight recorder attached
/// to every endpoint (each propagates it to its unit, port, and fault
/// plane), mirroring [`run_fabric_chaos_traced`] on the byte carrier.
///
/// # Panics
///
/// Panics if the run does not quiesce within `spec.max_cycles`.
pub fn run_loopback_chaos_traced(
    spec: &WorkloadSpec,
    latency: u64,
    jitter: u64,
    faults: &WireFaultConfig,
    budget: u32,
    trace: &TraceHandle,
) -> ChaosReport {
    assert!(spec.nodes >= 2, "the permutation needs at least 2 nodes");
    let hub = LoopbackHub::new(spec.nodes, latency).with_jitter(spec.seed, jitter);
    let cfg = chaos_config(spec, budget);
    let mut eps: Vec<WireEndpoint<FaultyTransport<_>>> = (0..spec.nodes)
        .map(|i| {
            let node = NodeId::new(i);
            let mut faulty = FaultyTransport::new(hub.endpoint(node), faults.clone(), spec.seed);
            // The endpoint propagates the recorder to its unit and port,
            // but the fault plane sits *below* the port and needs its own
            // hookup for WireFault events.
            faulty.attach_trace(trace.clone());
            let mut ep = WireEndpoint::new(node, cfg.clone(), faulty);
            ep.attach_trace(trace.clone());
            ep
        })
        .collect();
    let mut feeders: Vec<Feeder> = (0..spec.nodes).map(|i| Feeder::new(spec, i)).collect();
    let mut log = DeliveryLog::new();
    let mut failures = FailureLog::new();
    let mut cycles = 0u64;
    let mut idle_streak = 0u64;
    loop {
        assert!(
            cycles < spec.max_cycles,
            "loopback chaos run never quiesced ({cycles} cycles)"
        );
        for (i, ep) in eps.iter_mut().enumerate() {
            feeders[i].pump(|pkt| ep.try_send(pkt));
            ep.step();
            while let Some(d) = ep.poll() {
                log.entry((d.src.index(), i))
                    .or_default()
                    .push((d.user.msg_id, d.user.pkt_index));
            }
            for f in ep.take_failures() {
                *failures
                    .entry((f.src.index(), f.dst.index()))
                    .or_default()
                    .entry(failure_kind_name(&f.kind))
                    .or_default() += 1;
            }
        }
        hub.tick();
        cycles += 1;
        let quiet = feeders.iter().all(Feeder::done)
            && eps.iter().all(WireEndpoint::is_idle)
            && eps.iter().all(|ep| ep.port().transport().held() == 0)
            && hub.in_flight() == 0;
        if quiet {
            idle_streak += 1;
            if idle_streak >= CHAOS_QUIESCE_GRACE {
                break;
            }
        } else {
            idle_streak = 0;
        }
    }
    let decode_errors = eps.iter().map(|ep| ep.port().decode_errors()).sum();
    let per_node: Vec<&WireFaultStats> =
        eps.iter().map(|ep| ep.port().transport().stats()).collect();
    let fault_counts = nifdy_trace::WireFaultCause::ALL
        .iter()
        .map(|&cause| {
            let n: u64 = per_node.iter().map(|s| s.count(cause)).sum();
            (cause.label(), n)
        })
        .collect();
    ChaosReport {
        log,
        failures,
        decode_errors,
        fault_counts,
        cycles,
        retransmitted: eps.iter().map(|ep| ep.stats().retransmitted.get()).sum(),
        fabric_dropped: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_log_is_send_order() {
        let spec = WorkloadSpec {
            nodes: 4,
            messages: 2,
            packets_per_message: 3,
            ..WorkloadSpec::default()
        };
        let log = spec.expected_log();
        assert_eq!(log.len(), 4, "one entry per pair");
        for ((src, dst), order) in &log {
            assert_eq!(*dst, spec.partner(*src));
            assert_eq!(order.len(), 6);
            assert_eq!(order[0], (spec.msg_id(*src, 0), 0));
            assert_eq!(order[5], (spec.msg_id(*src, 1), 2));
        }
    }

    #[test]
    fn partner_permutation_has_no_fixed_points() {
        for seed in 0..8 {
            let spec = WorkloadSpec {
                nodes: 6,
                seed,
                ..WorkloadSpec::default()
            };
            let mut seen = [false; 6];
            for i in 0..6 {
                let p = spec.partner(i);
                assert_ne!(p, i, "no node talks to itself");
                assert!(!seen[p], "partner map is a permutation");
                seen[p] = true;
            }
        }
    }

    #[test]
    fn mesh_dims_cover_counts() {
        assert_eq!(mesh_dims(4), (2, 2));
        assert_eq!(mesh_dims(6), (2, 3));
        assert_eq!(mesh_dims(16), (4, 4));
        assert_eq!(mesh_dims(2), (1, 2));
    }
}
