//! Real-datagram transport: one UDP socket per node.
//!
//! Each NIFDY endpoint binds its own socket; frames travel as genuine
//! datagrams, so the operating system's loss, duplication, and reordering
//! behavior exercises the §6 retransmission and duplicate-bit machinery for
//! real. Both lanes share the node's one socket — the lane bit in the frame
//! header (byte 0) classifies received datagrams, mirroring how the paper's
//! two logical networks can share a physical link.

use std::collections::{HashMap, VecDeque};
use std::io::ErrorKind;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};

use nifdy_net::Lane;
use nifdy_sim::{Cycle, NodeId};

use crate::transport::{BatchTransport, Transport};

/// Largest datagram the receive path accepts. Comfortably above the largest
/// encodable frame for the packet sizes any experiment uses.
const MAX_DATAGRAM: usize = 64 * 1024;

/// Linux `EMSGSIZE`: the datagram exceeds what the socket can carry. The
/// std `ErrorKind` has no stable variant for it, so classification falls
/// back to the raw errno.
const EMSGSIZE: i32 = 90;

/// A socket failure the transport could not classify as ordinary network
/// loss, surfaced via [`UdpTransport::take_error`] instead of being
/// silently swallowed.
///
/// Expected conditions never produce one: `WouldBlock` means the socket is
/// quiescent, and refused / oversize datagrams increment their typed
/// counters ([`UdpTransport::refused`], [`UdpTransport::oversize`]) because
/// the retransmission machinery handles them like loss. Anything else —
/// permission errors, a closed socket, an unreachable network — is a
/// configuration or environment problem the caller must see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError {
    /// The socket operation that failed: `"send"` or `"recv"`.
    pub op: &'static str,
    /// The std io error classification.
    pub kind: ErrorKind,
    /// The OS error text.
    pub detail: String,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "udp {} failed ({:?}): {}",
            self.op, self.kind, self.detail
        )
    }
}

/// A [`Transport`] backed by one UDP socket.
///
/// Time is a free-running local cycle counter advanced by
/// [`Transport::tick`] — each node is its own clock domain, as on real
/// hardware; protocol timeouts are therefore in units of the driving loop's
/// iteration period.
///
/// # Examples
///
/// ```no_run
/// use nifdy_sim::NodeId;
/// use nifdy_wire::UdpTransport;
///
/// let mut a = UdpTransport::bind(NodeId::new(0), "127.0.0.1:0").unwrap();
/// let mut b = UdpTransport::bind(NodeId::new(1), "127.0.0.1:0").unwrap();
/// a.add_peer(NodeId::new(1), b.local_addr().unwrap());
/// b.add_peer(NodeId::new(0), a.local_addr().unwrap());
/// ```
#[derive(Debug)]
pub struct UdpTransport {
    node: NodeId,
    socket: UdpSocket,
    peers: HashMap<usize, SocketAddr>,
    now: Cycle,
    queues: [VecDeque<Vec<u8>>; 2],
    send_errors: u64,
    unknown_peer: u64,
    refused: u64,
    oversize: u64,
    /// Datagrams [`pump`](Self::pump) reads per tick, bounding how long one
    /// busy socket can monopolize a poll round. `usize::MAX` = unbounded.
    pump_limit: usize,
    last_error: Option<TransportError>,
    transport_errors: u64,
    dropped_errors: u64,
}

impl UdpTransport {
    /// Binds a nonblocking socket for `node` at `addr` (use port 0 for an
    /// ephemeral port, then exchange [`UdpTransport::local_addr`]s).
    pub fn bind<A: ToSocketAddrs>(node: NodeId, addr: A) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        Ok(UdpTransport {
            node,
            socket,
            peers: HashMap::new(),
            now: Cycle::ZERO,
            queues: [VecDeque::new(), VecDeque::new()],
            send_errors: 0,
            unknown_peer: 0,
            refused: 0,
            oversize: 0,
            pump_limit: usize::MAX,
            last_error: None,
            transport_errors: 0,
            dropped_errors: 0,
        })
    }

    /// Caps how many datagrams one [`Transport::tick`] reads off the
    /// socket. A daemon multiplexing many endpoints over few sockets sets
    /// this so a flooded socket cannot starve the rest of its poll round;
    /// undrained datagrams stay in the OS buffer for the next tick.
    pub fn with_pump_limit(mut self, limit: usize) -> Self {
        self.pump_limit = limit.max(1);
        self
    }

    /// The socket's bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Registers the socket address of a peer node.
    pub fn add_peer(&mut self, node: NodeId, addr: SocketAddr) {
        self.peers.insert(node.index(), addr);
    }

    /// Datagrams that failed to send (treated as network loss: the §6.2
    /// retransmission machinery recovers, exactly as for in-network drops).
    pub fn send_errors(&self) -> u64 {
        self.send_errors
    }

    /// Frames addressed to nodes with no registered socket address.
    pub fn unknown_peer(&self) -> u64 {
        self.unknown_peer
    }

    /// `ECONNREFUSED` events on either direction (on Linux, an ICMP
    /// port-unreachable from a dead peer surfaces this way). Treated as
    /// loss — retransmission recovers once the peer returns.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Datagrams rejected for exceeding the socket's maximum size.
    pub fn oversize(&self) -> u64 {
        self.oversize
    }

    /// Takes the *first* unclassified socket failure observed since the
    /// last call, if any. Expected conditions (quiescence, refused,
    /// oversize) never appear here. Later failures arriving while one is
    /// already stashed are counted in [`dropped_errors`](Self::dropped_errors)
    /// rather than overwriting the original — the first error is almost
    /// always the root cause, and silently replacing it would hide it.
    pub fn take_error(&mut self) -> Option<TransportError> {
        self.last_error.take()
    }

    /// Total unclassified socket failures observed, whether or not they
    /// were ever drained via [`take_error`](Self::take_error).
    pub fn transport_errors(&self) -> u64 {
        self.transport_errors
    }

    /// Unclassified failures discarded because an earlier one was still
    /// waiting in the [`take_error`](Self::take_error) slot.
    pub fn dropped_errors(&self) -> u64 {
        self.dropped_errors
    }

    fn stash_error(&mut self, op: &'static str, e: &std::io::Error) {
        self.transport_errors += 1;
        if self.last_error.is_some() {
            // Keep the first error: it is the root cause, and the caller
            // has not read it yet. Count the loss instead of hiding it.
            self.dropped_errors += 1;
            return;
        }
        self.last_error = Some(TransportError {
            op,
            kind: e.kind(),
            detail: e.to_string(),
        });
    }

    /// Fires one datagram at a resolved address, classifying any failure
    /// (refused and oversize are network weather; the rest surface).
    fn send_to_addr(&mut self, addr: SocketAddr, frame: &[u8]) {
        match self.socket.send_to(frame, addr) {
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::ConnectionRefused => {
                self.refused += 1;
            }
            Err(e) if e.raw_os_error() == Some(EMSGSIZE) => {
                self.oversize += 1;
            }
            Err(e) => {
                self.send_errors += 1;
                self.stash_error("send", &e);
            }
        }
    }

    fn pump(&mut self) {
        let mut buf = [0u8; MAX_DATAGRAM];
        let mut read = 0usize;
        while read < self.pump_limit {
            match self.socket.recv_from(&mut buf) {
                Ok((len, _from)) => {
                    if len == 0 {
                        continue;
                    }
                    // Classify by the lane bit; the codec re-validates the
                    // whole frame later, so a garbage byte merely picks a
                    // queue for a frame that will then fail to decode.
                    let lane = usize::from(buf[0] & 0b10 != 0);
                    self.queues[lane].push_back(buf[..len].to_vec());
                    read += 1;
                }
                // Quiescence: nothing more to read this tick.
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                // A dead peer's ICMP port-unreachable bounces back through
                // recv on Linux; count it and keep draining — real
                // datagrams may sit behind it in the error queue.
                Err(e) if e.kind() == ErrorKind::ConnectionRefused => {
                    self.refused += 1;
                }
                // Anything else is not network weather: surface it.
                Err(e) => {
                    self.stash_error("recv", &e);
                    break;
                }
            }
        }
    }
}

impl Transport for UdpTransport {
    fn node(&self) -> NodeId {
        self.node
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn tick(&mut self) {
        self.now += 1;
        self.pump();
    }

    fn send(&mut self, dst: NodeId, lane: Lane, frame: Vec<u8>) {
        // The lane is already encoded in the frame's flag byte; UDP needs
        // only the peer address.
        let _ = lane;
        let Some(&addr) = self.peers.get(&dst.index()) else {
            self.unknown_peer += 1;
            return;
        };
        self.send_to_addr(addr, &frame);
    }

    fn recv(&mut self, lane: Lane) -> Option<Vec<u8>> {
        self.queues[lane.index()].pop_front()
    }
}

impl BatchTransport for UdpTransport {
    /// Coalesced flush: consecutive frames to the same destination reuse
    /// one peer-address lookup (a daemon's per-carrier outbox groups
    /// naturally by destination process).
    fn send_batch(&mut self, frames: &mut Vec<(NodeId, Lane, Vec<u8>)>) {
        let mut cached: Option<(usize, SocketAddr)> = None;
        for (dst, _lane, frame) in frames.drain(..) {
            let idx = dst.index();
            let addr = match cached {
                Some((i, a)) if i == idx => a,
                _ => match self.peers.get(&idx) {
                    Some(&a) => {
                        cached = Some((idx, a));
                        a
                    }
                    None => {
                        self.unknown_peer += 1;
                        continue;
                    }
                },
            };
            self.send_to_addr(addr, &frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datagrams_flow_between_two_sockets() {
        let mut a = UdpTransport::bind(NodeId::new(0), "127.0.0.1:0").expect("bind a");
        let mut b = UdpTransport::bind(NodeId::new(1), "127.0.0.1:0").expect("bind b");
        a.add_peer(NodeId::new(1), b.local_addr().expect("addr b"));
        b.add_peer(NodeId::new(0), a.local_addr().expect("addr a"));

        a.send(NodeId::new(1), Lane::Request, vec![0b00, 9, 9]);
        a.send(NodeId::new(1), Lane::Reply, vec![0b11, 7, 7]);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            b.tick();
            let req = b.recv(Lane::Request);
            let rep = b.recv(Lane::Reply);
            if let (Some(req), Some(rep)) = (&req, &rep) {
                assert_eq!(req[1], 9);
                assert_eq!(rep[1], 7);
                break;
            }
            // Not yet arrived: push anything partial back and retry.
            if let Some(r) = req {
                b.queues[Lane::Request.index()].push_front(r);
            }
            if let Some(r) = rep {
                b.queues[Lane::Reply.index()].push_front(r);
            }
            assert!(
                std::time::Instant::now() < deadline,
                "datagrams never arrived"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn first_error_wins_and_later_ones_are_counted() {
        let mut a = UdpTransport::bind(NodeId::new(0), "127.0.0.1:0").expect("bind");
        let first = std::io::Error::new(ErrorKind::PermissionDenied, "first failure");
        let second = std::io::Error::new(ErrorKind::NotConnected, "second failure");
        a.stash_error("send", &first);
        a.stash_error("recv", &second);
        assert_eq!(a.transport_errors(), 2);
        assert_eq!(a.dropped_errors(), 1, "the second error was shed");
        let err = a.take_error().expect("first error preserved");
        assert_eq!(err.kind, ErrorKind::PermissionDenied, "first error wins");
        assert_eq!(err.op, "send");
        assert_eq!(a.take_error(), None, "slot drained");
        // With the slot empty, the next failure is stashed again.
        a.stash_error(
            "recv",
            &std::io::Error::new(ErrorKind::NotConnected, "third"),
        );
        assert_eq!(a.take_error().expect("restashed").op, "recv");
        assert_eq!(a.dropped_errors(), 1, "no further drops");
    }

    #[test]
    fn pump_limit_bounds_one_tick_and_preserves_order() {
        let mut a = UdpTransport::bind(NodeId::new(0), "127.0.0.1:0").expect("bind a");
        let mut b = UdpTransport::bind(NodeId::new(1), "127.0.0.1:0")
            .expect("bind b")
            .with_pump_limit(2);
        a.add_peer(NodeId::new(1), b.local_addr().expect("addr b"));
        for i in 0..6u8 {
            a.send(NodeId::new(1), Lane::Request, vec![0b00, i, i]);
        }
        // Datagram delivery is asynchronous: tick until all six arrive,
        // checking that no single tick ever exceeded the bound.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut got = Vec::new();
        while got.len() < 6 {
            let before = b.queues[0].len();
            b.tick();
            assert!(b.queues[0].len() - before <= 2, "pump respects the bound");
            while let Some(f) = b.recv(Lane::Request) {
                got.push(f[1]);
            }
            assert!(std::time::Instant::now() < deadline, "datagrams lost");
            std::thread::yield_now();
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5], "bounded pump keeps order");
    }

    #[test]
    fn send_batch_coalesces_and_counts_unknown_peers() {
        let mut a = UdpTransport::bind(NodeId::new(0), "127.0.0.1:0").expect("bind a");
        let mut b = UdpTransport::bind(NodeId::new(1), "127.0.0.1:0").expect("bind b");
        a.add_peer(NodeId::new(1), b.local_addr().expect("addr b"));
        let mut batch = vec![
            (NodeId::new(1), Lane::Request, vec![0b00, 1, 1]),
            (NodeId::new(1), Lane::Request, vec![0b00, 2, 2]),
            (NodeId::new(9), Lane::Request, vec![0b00, 3, 3]),
            (NodeId::new(1), Lane::Reply, vec![0b10, 4, 4]),
        ];
        a.send_batch(&mut batch);
        assert!(batch.is_empty());
        assert_eq!(a.unknown_peer(), 1, "unroutable frame counted");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut req = Vec::new();
        let mut rep = Vec::new();
        while req.len() < 2 || rep.is_empty() {
            b.tick();
            while let Some(f) = b.recv(Lane::Request) {
                req.push(f[1]);
            }
            while let Some(f) = b.recv(Lane::Reply) {
                rep.push(f[1]);
            }
            assert!(std::time::Instant::now() < deadline, "datagrams lost");
            std::thread::yield_now();
        }
        assert_eq!(req, vec![1, 2]);
        assert_eq!(rep, vec![4]);
    }

    #[test]
    fn unknown_destination_counts_instead_of_panicking() {
        let mut a = UdpTransport::bind(NodeId::new(0), "127.0.0.1:0").expect("bind");
        a.send(NodeId::new(9), Lane::Request, vec![0]);
        assert_eq!(a.unknown_peer(), 1);
    }

    #[test]
    fn oversize_datagrams_hit_the_typed_counter_not_the_error_slot() {
        let mut a = UdpTransport::bind(NodeId::new(0), "127.0.0.1:0").expect("bind a");
        let b = UdpTransport::bind(NodeId::new(1), "127.0.0.1:0").expect("bind b");
        a.add_peer(NodeId::new(1), b.local_addr().expect("addr b"));
        // Far beyond the 65,507-byte UDP/IPv4 payload ceiling.
        a.send(NodeId::new(1), Lane::Request, vec![0u8; 70_000]);
        assert_eq!(a.oversize(), 1, "EMSGSIZE classifies as oversize");
        assert_eq!(a.send_errors(), 0);
        assert_eq!(a.take_error(), None, "classified errors are not surfaced");
    }

    #[test]
    fn refused_sends_count_as_weather_not_errors() {
        let mut a = UdpTransport::bind(NodeId::new(0), "127.0.0.1:0").expect("bind a");
        // Bind-then-drop guarantees the port is dead but was recently ours.
        let dead = UdpTransport::bind(NodeId::new(1), "127.0.0.1:0").expect("bind dead");
        let addr = dead.local_addr().expect("addr");
        drop(dead);
        a.add_peer(NodeId::new(1), addr);
        // A connected-refused error may only surface on a *later* call once
        // the ICMP bounce lands; hammer a few sends with pumps between.
        for _ in 0..20 {
            a.send(NodeId::new(1), Lane::Request, vec![1, 2, 3]);
            a.tick();
            std::thread::yield_now();
        }
        // Whether the ICMP error materialized is OS-dependent; the contract
        // under test is that nothing landed in the unclassified slot.
        assert_eq!(
            a.take_error(),
            None,
            "refused must not surface as TransportError"
        );
        assert_eq!(a.send_errors(), 0);
    }
}
