//! The adapter that lets a [`NifdyUnit`](nifdy::NifdyUnit) drive a byte
//! transport: [`TransportPort`] implements [`NetPort`] by encoding injected
//! packets into frames and decoding received frames back into packets.
//!
//! The port also charges a *serialization budget*: injecting a packet of
//! `size_words` words occupies the lane's transmitter for `size_words`
//! cycles (one word per cycle, the fabric's link model), so
//! [`NetPort::can_inject`] models the `T_link` term of the §2.4 analytic
//! model and loopback bandwidth measurements are comparable to Equation 1.

use std::collections::VecDeque;

use nifdy_net::{Lane, NetPort, Packet};
use nifdy_sim::{Cycle, NodeId, PacketId};
use nifdy_trace::{trace_event, EventKind, TraceHandle};

use crate::codec::{self, Heartbeat, WireFrame, WirePacket, WireSource};
use crate::transport::Transport;

/// One node's [`NetPort`] view of a byte [`Transport`].
#[derive(Debug)]
pub struct TransportPort<T: Transport> {
    transport: T,
    /// Decoded packets awaiting ejection, per lane.
    pending: [VecDeque<Packet>; 2],
    /// Liveness beacons received since the last [`take_heartbeats`] drain.
    ///
    /// [`take_heartbeats`]: TransportPort::take_heartbeats
    heartbeats: Vec<Heartbeat>,
    /// The cycle at which each lane's transmitter frees up.
    tx_busy_until: [Cycle; 2],
    pkt_counter: u64,
    decode_errors: u64,
    foreign: u64,
    trace: TraceHandle,
}

impl<T: Transport> TransportPort<T> {
    /// Wraps a transport endpoint.
    pub fn new(transport: T) -> Self {
        TransportPort {
            transport,
            pending: [VecDeque::new(), VecDeque::new()],
            heartbeats: Vec::new(),
            tx_busy_until: [Cycle::ZERO; 2],
            pkt_counter: 0,
            decode_errors: 0,
            foreign: 0,
            trace: TraceHandle::off(),
        }
    }

    /// The node this port serves.
    pub fn node(&self) -> NodeId {
        self.transport.node()
    }

    /// Connects the port to a flight recorder: frame sends, receives, and
    /// rejects are logged on this node's track.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Frames that failed to decode and were discarded.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Well-formed frames addressed to a different node (stray datagrams),
    /// discarded.
    pub fn foreign(&self) -> u64 {
        self.foreign
    }

    /// Decoded packets awaiting ejection (drain/termination checks).
    pub fn pending(&self) -> usize {
        self.pending[0].len() + self.pending[1].len()
    }

    /// The underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The underlying transport, mutably. A multiplexing host (the
    /// `nifdy-node` daemon) uses this to push demultiplexed frames into,
    /// and drain sends out of, an in-memory transport it owns on the
    /// endpoint's behalf.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Drains the liveness beacons decoded since the last call. The
    /// supervisor layer consumes these to track peer epochs and silence.
    pub fn take_heartbeats(&mut self) -> Vec<Heartbeat> {
        std::mem::take(&mut self.heartbeats)
    }

    /// Sends a liveness beacon on the reply lane.
    ///
    /// Heartbeats are port-level control traffic, not protocol packets: they
    /// bypass the serialization budget (an 11-byte beacon every few hundred
    /// cycles is negligible next to a data word per cycle, and charging it
    /// would perturb the §2.4 bandwidth comparison for every chaos run).
    pub fn send_heartbeat(&mut self, dst: NodeId, epoch: u32) {
        let me = self.transport.node();
        let now = self.transport.now();
        let hb = Heartbeat {
            src: me,
            dst,
            epoch,
        };
        let frame = codec::encode_heartbeat(&hb);
        trace_event!(
            self.trace,
            now,
            me,
            EventKind::FrameSend {
                dst,
                ack: true,
                bytes: frame.len() as u32,
            }
        );
        self.transport.send(dst, Lane::Reply, frame);
    }

    /// One cycle of port work: tick the transport's clock view and decode
    /// every frame it delivered. Call once per cycle, before the unit's
    /// [`Nic::step`](nifdy::Nic::step).
    pub fn tick(&mut self) {
        self.transport.tick();
        let now = self.transport.now();
        let me = self.transport.node();
        for lane in Lane::ALL {
            while let Some(frame) = self.transport.recv(lane) {
                let wp = match codec::decode_frame(&frame) {
                    Ok(WireFrame::Packet(wp)) => wp,
                    Ok(WireFrame::Heartbeat(hb)) => {
                        if hb.dst != me {
                            self.foreign += 1;
                            trace_event!(
                                self.trace,
                                now,
                                me,
                                EventKind::FrameReject {
                                    bytes: frame.len() as u32,
                                }
                            );
                            continue;
                        }
                        trace_event!(
                            self.trace,
                            now,
                            me,
                            EventKind::FrameRecv {
                                src: hb.src,
                                ack: true,
                                bytes: frame.len() as u32,
                            }
                        );
                        self.heartbeats.push(hb);
                        continue;
                    }
                    Err(_) => {
                        self.decode_errors += 1;
                        trace_event!(
                            self.trace,
                            now,
                            me,
                            EventKind::FrameReject {
                                bytes: frame.len() as u32,
                            }
                        );
                        continue;
                    }
                };
                if wp.dst != me || wp.lane != lane {
                    self.foreign += 1;
                    trace_event!(
                        self.trace,
                        now,
                        me,
                        EventKind::FrameReject {
                            bytes: frame.len() as u32,
                        }
                    );
                    continue;
                }
                self.pkt_counter += 1;
                let id = PacketId::new(((me.index() as u64) << 40) | self.pkt_counter);
                // Bulk frames carry no source bits; the unit re-substitutes
                // the dialog peer in `receive_bulk`, so the placeholder is
                // only ever visible to bookkeeping.
                let pkt = wp.into_packet(id, me, now);
                trace_event!(
                    self.trace,
                    now,
                    me,
                    EventKind::FrameRecv {
                        src: match wp.src {
                            WireSource::Node(n) => n,
                            WireSource::Dialog => me,
                        },
                        ack: wp.wire.is_ack(),
                        bytes: frame.len() as u32,
                    }
                );
                self.pending[lane.index()].push_back(pkt);
            }
        }
    }
}

impl<T: Transport> NetPort for TransportPort<T> {
    fn now(&self) -> Cycle {
        self.transport.now()
    }

    fn can_inject(&self, node: NodeId, lane: Lane) -> bool {
        debug_assert_eq!(node, self.transport.node(), "port serves one node");
        self.transport.now() >= self.tx_busy_until[lane.index()]
    }

    fn inject(&mut self, node: NodeId, packet: Packet) {
        assert_eq!(packet.src, node, "packet injected at a foreign node");
        let lane = packet.lane;
        assert!(
            self.can_inject(node, lane),
            "injection slot busy at {node} lane {lane:?}"
        );
        let now = self.transport.now();
        let frame = codec::encode(&WirePacket::from_packet(&packet));
        trace_event!(
            self.trace,
            now,
            node,
            EventKind::FrameSend {
                dst: packet.dst,
                ack: packet.wire.is_ack(),
                bytes: frame.len() as u32,
            }
        );
        // One word per cycle on the wire: the lane's transmitter is busy for
        // the packet's whole serialization time.
        self.tx_busy_until[lane.index()] = now + u64::from(packet.size_words);
        self.transport.send(packet.dst, lane, frame);
    }

    fn eject(&mut self, node: NodeId, lane: Lane) -> Option<Packet> {
        debug_assert_eq!(node, self.transport.node(), "port serves one node");
        self.pending[lane.index()].pop_front()
    }

    fn peek_eject(&self, node: NodeId, lane: Lane) -> Option<&Packet> {
        debug_assert_eq!(node, self.transport.node(), "port serves one node");
        self.pending[lane.index()].front()
    }
}

#[cfg(test)]
mod tests {
    use nifdy_net::Wire;

    use super::*;
    use crate::transport::LoopbackHub;

    #[test]
    fn port_round_trips_a_scalar_packet() {
        let hub = LoopbackHub::new(2, 1);
        let mut a = TransportPort::new(hub.endpoint(NodeId::new(0)));
        let mut b = TransportPort::new(hub.endpoint(NodeId::new(1)));
        let pkt = Packet::data(PacketId::new(1), NodeId::new(0), NodeId::new(1), 6);
        assert!(a.can_inject(NodeId::new(0), Lane::Request));
        a.inject(NodeId::new(0), pkt.clone());
        assert!(
            !a.can_inject(NodeId::new(0), Lane::Request),
            "serialization budget holds the lane"
        );
        hub.tick();
        b.tick();
        let got = b.eject(NodeId::new(1), Lane::Request).expect("delivered");
        assert_eq!(got.src, pkt.src);
        assert_eq!(got.dst, pkt.dst);
        assert_eq!(got.wire, pkt.wire);
        assert_eq!(got.user, pkt.user);
    }

    #[test]
    fn garbage_frames_are_counted_not_fatal() {
        let hub = LoopbackHub::new(2, 0);
        let mut tx = hub.endpoint(NodeId::new(0));
        let mut b = TransportPort::new(hub.endpoint(NodeId::new(1)));
        tx.send(NodeId::new(1), Lane::Request, vec![0xFF; 7]);
        hub.tick();
        b.tick();
        assert_eq!(b.decode_errors(), 1);
        assert!(b.peek_eject(NodeId::new(1), Lane::Request).is_none());
    }

    #[test]
    fn misaddressed_frames_are_foreign() {
        let hub = LoopbackHub::new(3, 0);
        let mut a = TransportPort::new(hub.endpoint(NodeId::new(0)));
        let mut b = TransportPort::new(hub.endpoint(NodeId::new(1)));
        // Encode a packet for node 2, then deliver it to node 1's queue by
        // sending through the raw transport.
        let pkt = Packet::data(PacketId::new(1), NodeId::new(0), NodeId::new(2), 6);
        let frame = codec::encode(&WirePacket::from_packet(&pkt));
        a.transport.send(NodeId::new(1), Lane::Request, frame);
        hub.tick();
        b.tick();
        assert_eq!(b.foreign(), 1);
        assert!(b.peek_eject(NodeId::new(1), Lane::Request).is_none());
    }

    #[test]
    fn serialization_budget_frees_after_size_words() {
        let hub = LoopbackHub::new(2, 0);
        let mut a = TransportPort::new(hub.endpoint(NodeId::new(0)));
        let mut pkt = Packet::data(PacketId::new(1), NodeId::new(0), NodeId::new(1), 4);
        pkt.wire = Wire::PLAIN_DATA;
        a.inject(NodeId::new(0), pkt);
        for _ in 0..4 {
            assert!(!a.can_inject(NodeId::new(0), Lane::Request));
            hub.tick();
        }
        assert!(a.can_inject(NodeId::new(0), Lane::Request));
    }
}
