//! Byte-level wire format and socket transports for the NIFDY network
//! interface (Callahan & Goldstein, ISCA '95).
//!
//! The simulator crates model NIFDY's packets as Rust structs riding a
//! cycle-accurate fabric. This crate gives those packets a *real* encoding —
//! the byte layout §3 of the paper implies, including the `{sequence mod W,
//! dialog}` substitution for source-id bits on bulk packets — and carries
//! the encoded frames over pluggable transports:
//!
//! * [`LoopbackHub`] — a deterministic in-process exchange with fixed
//!   latency and optional seeded jitter, used by the differential
//!   conformance suite ([`conformance`]) to prove the wire stack delivers
//!   exactly what the simulated fabric delivers;
//! * [`UdpTransport`] — one real UDP socket per node, so OS-level loss,
//!   duplication, and reordering exercise the §6 retransmission and
//!   duplicate-bit machinery.
//!
//! The protocol state machine is [`nifdy::NifdyUnit`], unchanged: the unit
//! steps against a [`NetPort`](nifdy_net::NetPort), and [`TransportPort`]
//! implements that port by encoding on inject and decoding on eject.
//! [`codec::decode`] is total — arbitrary bytes produce a
//! [`WireError`], never a panic (property-tested).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod conformance;
mod endpoint;
pub mod fault;
mod port;
mod supervisor;
mod transport;
mod udp;

pub use codec::{
    decode, decode_frame, encode, encode_heartbeat, peek_route, Heartbeat, WireError, WireFrame,
    WirePacket, WireSource,
};
pub use endpoint::WireEndpoint;
pub use fault::{FaultyTransport, WireFaultConfig, WireFaultStats};
pub use port::TransportPort;
pub use supervisor::{PeerEvent, SupervisedEndpoint, Supervisor, SupervisorConfig};
pub use transport::{BatchTransport, LoopbackHub, LoopbackTransport, Transport};
pub use udp::{TransportError, UdpTransport};
