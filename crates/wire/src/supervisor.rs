//! Endpoint liveness and crash recovery: heartbeat beacons, peer-restart
//! detection, and a supervised run loop with bounded jittered backoff.
//!
//! The protocol unit assumes its peer's interface state is durable — bulk
//! dialogs, duplicate bits, and grants all persist "forever" in the paper's
//! model. A real endpoint crashes. This module layers the recovery protocol
//! on top of [`WireEndpoint`] without touching the protocol machine:
//!
//! * every endpoint incarnation carries an **epoch**, announced in periodic
//!   [`Heartbeat`](crate::Heartbeat) control frames on the reply lane;
//! * a [`SupervisedEndpoint`] tracks each watched peer's last-heard cycle
//!   and epoch: prolonged silence flags the peer down (a `PeerDown` trace
//!   event), and an **epoch increase** proves the peer restarted — the
//!   survivor then calls [`NifdyUnit::reset_peer`](nifdy::NifdyUnit::reset_peer), tearing down dialogs
//!   entangled with the dead incarnation so both sides can re-handshake
//!   from a clean slate (`PeerRestart`);
//! * a [`Supervisor`] owns an endpoint factory and restarts a killed
//!   endpoint after a bounded, seeded-jitter backoff
//!   (`min(base·2ᵃᵗᵗᵉᵐᵖᵗˢ, max) + jitter`), bumping the epoch each time
//!   (`EndpointRestart`).
//!
//! Silence alone never resets protocol state: a partitioned peer that
//! reappears with the *same* epoch resumes exactly where it left off (its
//! retransmission machinery self-heals), which is why detection keys on the
//! epoch, not the timeout.

use std::collections::BTreeMap;

use nifdy_sim::{Cycle, NodeId, SimRng, Wakeup};
use nifdy_trace::{trace_event, EventKind, TraceHandle};

use crate::endpoint::WireEndpoint;
use crate::transport::Transport;

/// Stream id for the supervisor's backoff jitter, decorrelated from the
/// chaos plane (`0xFA27_xxxx`) and the loopback jitter stream (`0x17e`).
const SUPERVISOR_STREAM: u64 = 0xBAC0_0000;

/// Timing knobs for heartbeats, liveness detection, and restart backoff,
/// all in cycles.
///
/// # Examples
///
/// ```
/// use nifdy_wire::SupervisorConfig;
///
/// let cfg = SupervisorConfig::default().with_heartbeat_every(128);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Cycles between heartbeat broadcasts to every watched peer.
    pub heartbeat_every: u64,
    /// Silence (no frame *or* heartbeat) after which a peer is flagged down.
    pub peer_timeout: u64,
    /// Backoff before the first restart attempt.
    pub backoff_base: u64,
    /// Upper bound on the exponential backoff.
    pub backoff_max: u64,
    /// Uniform seeded jitter `0..=backoff_jitter` added to each backoff, so
    /// simultaneously-killed endpoints do not restart in lockstep.
    pub backoff_jitter: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            heartbeat_every: 256,
            peer_timeout: 2_048,
            backoff_base: 64,
            backoff_max: 4_096,
            backoff_jitter: 32,
        }
    }
}

impl SupervisorConfig {
    /// Sets the heartbeat broadcast period.
    pub fn with_heartbeat_every(mut self, cycles: u64) -> Self {
        self.heartbeat_every = cycles;
        self
    }

    /// Sets the peer-silence threshold.
    pub fn with_peer_timeout(mut self, cycles: u64) -> Self {
        self.peer_timeout = cycles;
        self
    }

    /// Sets the restart backoff parameters.
    pub fn with_backoff(mut self, base: u64, max: u64, jitter: u64) -> Self {
        self.backoff_base = base;
        self.backoff_max = max;
        self.backoff_jitter = jitter;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: a zero
    /// heartbeat period, a timeout that a healthy peer's own heartbeat
    /// cadence would trip, a backoff cap below its base, or a jitter
    /// wider than the cap.
    pub fn validate(&self) -> Result<(), String> {
        if self.heartbeat_every == 0 {
            return Err("heartbeat_every must be at least 1 cycle".into());
        }
        if self.peer_timeout <= 2 * self.heartbeat_every {
            return Err(format!(
                "peer_timeout ({}) must exceed two heartbeat periods ({}): \
                 one lost beacon would otherwise flap the peer down",
                self.peer_timeout,
                2 * self.heartbeat_every
            ));
        }
        if self.backoff_base == 0 {
            return Err("backoff_base must be at least 1 cycle".into());
        }
        if self.backoff_max < self.backoff_base {
            return Err("backoff_max must be >= backoff_base".into());
        }
        if self.backoff_jitter > self.backoff_max {
            return Err("backoff_jitter must not exceed backoff_max: jitter \
                 wider than the cap makes the bound meaningless"
                .into());
        }
        Ok(())
    }
}

/// A liveness transition observed by a [`SupervisedEndpoint`], drained via
/// [`SupervisedEndpoint::take_peer_events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerEvent {
    /// A watched peer has been silent past the timeout.
    Down {
        /// The silent peer.
        peer: NodeId,
        /// Cycles since its last heartbeat.
        silent_for: u64,
    },
    /// A watched peer reappeared with a higher epoch: it crashed and
    /// restarted, and the entangled protocol state has been reset.
    Restarted {
        /// The restarted peer.
        peer: NodeId,
        /// Its new incarnation's epoch.
        epoch: u32,
    },
}

/// Per-peer liveness bookkeeping.
#[derive(Debug, Clone, Copy)]
struct PeerState {
    last_heard: Cycle,
    epoch: u32,
    down: bool,
}

/// A [`WireEndpoint`] with the liveness protocol attached: broadcasts
/// epoch-stamped heartbeats, tracks watched peers, and resets protocol
/// state when a peer provably restarted.
#[derive(Debug)]
pub struct SupervisedEndpoint<T: Transport> {
    ep: WireEndpoint<T>,
    cfg: SupervisorConfig,
    epoch: u32,
    watched: Vec<NodeId>,
    peers: BTreeMap<NodeId, PeerState>,
    /// When the last heartbeat broadcast went out (`None` = never, so the
    /// first step announces immediately — crucial after a restart).
    last_beat: Option<Cycle>,
    events: Vec<PeerEvent>,
    trace: TraceHandle,
}

impl<T: Transport> SupervisedEndpoint<T> {
    /// Wraps an endpoint as incarnation `epoch` of its node.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SupervisorConfig::validate`].
    pub fn new(ep: WireEndpoint<T>, cfg: SupervisorConfig, epoch: u32) -> Self {
        if let Err(why) = cfg.validate() {
            panic!("invalid supervisor config: {why}");
        }
        SupervisedEndpoint {
            ep,
            cfg,
            epoch,
            watched: Vec::new(),
            peers: BTreeMap::new(),
            last_beat: None,
            events: Vec::new(),
            trace: TraceHandle::off(),
        }
    }

    /// Adds a peer to the heartbeat broadcast and liveness watch list.
    pub fn watch(&mut self, peer: NodeId) {
        if !self.watched.contains(&peer) {
            self.watched.push(peer);
        }
    }

    /// This incarnation's epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Connects endpoint and supervision events to a flight recorder.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.ep.attach_trace(trace.clone());
        self.trace = trace;
    }

    /// Drains liveness transitions observed since the last call.
    pub fn take_peer_events(&mut self) -> Vec<PeerEvent> {
        std::mem::take(&mut self.events)
    }

    /// Whether `peer` is currently flagged down.
    pub fn peer_down(&self, peer: NodeId) -> bool {
        self.peers.get(&peer).is_some_and(|p| p.down)
    }

    /// The wrapped endpoint.
    pub fn endpoint(&self) -> &WireEndpoint<T> {
        &self.ep
    }

    /// The wrapped endpoint, mutably (send/poll traffic through it).
    pub fn endpoint_mut(&mut self) -> &mut WireEndpoint<T> {
        &mut self.ep
    }

    /// One cycle: protocol step, then the liveness pass — consume arrived
    /// heartbeats (detecting restarts), broadcast our own beacon when due,
    /// and flag peers that fell silent.
    pub fn step(&mut self) {
        self.ep.step();
        let now = self.ep.now();
        let me = self.ep.node();
        self.consume_heartbeats(now, me);
        self.broadcast(now, me);
        self.check_silence(now, me);
    }

    /// When this supervised endpoint next needs a [`step`](Self::step),
    /// under the [`Wakeup`] contract: the earliest of the protocol unit's
    /// own wakeup, the next heartbeat-broadcast deadline, and the earliest
    /// watched peer's silence deadline. Frames still inside the transport
    /// are invisible here, exactly as for [`WireEndpoint::next_event`] — an
    /// event-driven driver must also consult the transport's clock.
    pub fn next_event(&self) -> Wakeup {
        let now = self.ep.now();
        let mut wake = self.ep.next_event();
        wake = wake.earliest(match self.last_beat {
            // Never beaten: the next step broadcasts immediately.
            None => Wakeup::Now,
            Some(at) => Wakeup::at_or_now(at + self.cfg.heartbeat_every, now),
        });
        for state in self.peers.values() {
            if !state.down {
                wake = wake.earliest(Wakeup::at_or_now(
                    state.last_heard + self.cfg.peer_timeout,
                    now,
                ));
            }
        }
        wake
    }

    /// Applies every heartbeat the port decoded this cycle.
    fn consume_heartbeats(&mut self, now: Cycle, me: NodeId) {
        for hb in self.ep.port_mut().take_heartbeats() {
            trace_event!(
                self.trace,
                now,
                me,
                EventKind::Heartbeat {
                    peer: hb.src,
                    epoch: hb.epoch,
                    sent: false,
                }
            );
            match self.peers.get_mut(&hb.src) {
                Some(state) => {
                    if hb.epoch > state.epoch {
                        // The peer provably restarted: everything our unit
                        // remembers about the old incarnation is hazardous.
                        trace_event!(
                            self.trace,
                            now,
                            me,
                            EventKind::PeerRestart {
                                peer: hb.src,
                                epoch: hb.epoch,
                            }
                        );
                        self.ep.unit_mut().reset_peer(hb.src);
                        self.events.push(PeerEvent::Restarted {
                            peer: hb.src,
                            epoch: hb.epoch,
                        });
                    }
                    state.last_heard = now;
                    state.epoch = hb.epoch;
                    state.down = false;
                }
                None => {
                    self.peers.insert(
                        hb.src,
                        PeerState {
                            last_heard: now,
                            epoch: hb.epoch,
                            down: false,
                        },
                    );
                }
            }
        }
    }

    /// Broadcasts a heartbeat to every watched peer when the period lapses.
    fn broadcast(&mut self, now: Cycle, me: NodeId) {
        let due = match self.last_beat {
            None => true,
            Some(at) => now.saturating_since(at) >= self.cfg.heartbeat_every,
        };
        if !due {
            return;
        }
        self.last_beat = Some(now);
        let epoch = self.epoch;
        for i in 0..self.watched.len() {
            let Some(&peer) = self.watched.get(i) else {
                break;
            };
            self.ep.port_mut().send_heartbeat(peer, epoch);
            trace_event!(
                self.trace,
                now,
                me,
                EventKind::Heartbeat {
                    peer,
                    epoch,
                    sent: true,
                }
            );
        }
    }

    /// Flags watched peers whose silence exceeds the timeout.
    fn check_silence(&mut self, now: Cycle, me: NodeId) {
        for (&peer, state) in self.peers.iter_mut() {
            if state.down {
                continue;
            }
            let silent_for = now.saturating_since(state.last_heard);
            if silent_for >= self.cfg.peer_timeout {
                state.down = true;
                trace_event!(
                    self.trace,
                    now,
                    me,
                    EventKind::PeerDown { peer, silent_for }
                );
                self.events.push(PeerEvent::Down { peer, silent_for });
            }
        }
    }
}

/// Owns an endpoint factory and keeps one [`SupervisedEndpoint`] running:
/// [`kill`](Supervisor::kill) simulates a crash (all endpoint state is
/// dropped), and [`step`](Supervisor::step) restarts a fresh incarnation —
/// next epoch — once the bounded jittered backoff elapses.
///
/// The supervisor is driven by an external clock (`step(now)`) because
/// during downtime there is no transport to ask for the time.
pub struct Supervisor<T: Transport, F: FnMut() -> WireEndpoint<T>> {
    factory: F,
    cfg: SupervisorConfig,
    watched: Vec<NodeId>,
    ep: Option<SupervisedEndpoint<T>>,
    epoch: u32,
    restarts: u32,
    restart_at: Option<(Cycle, u64)>,
    rng: SimRng,
    trace: TraceHandle,
}

impl<T: Transport, F: FnMut() -> WireEndpoint<T>> std::fmt::Debug for Supervisor<T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("epoch", &self.epoch)
            .field("restarts", &self.restarts)
            .field("up", &self.ep.is_some())
            .finish_non_exhaustive()
    }
}

impl<T: Transport, F: FnMut() -> WireEndpoint<T>> Supervisor<T, F> {
    /// Builds the supervisor and starts epoch 0 immediately. `watched`
    /// lists the peers every incarnation heartbeats and monitors; `seed`
    /// feeds the backoff jitter.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SupervisorConfig::validate`].
    pub fn new(cfg: SupervisorConfig, watched: Vec<NodeId>, factory: F, seed: u64) -> Self {
        Self::with_starting_epoch(cfg, watched, factory, seed, 0)
    }

    /// [`Supervisor::new`], but the first incarnation announces `epoch`
    /// instead of 0. A daemon process restarted *from outside* (its whole
    /// OS process died) passes the next epoch here so surviving peers see
    /// the epoch increase and reset their entangled protocol state — the
    /// in-process restart path bumps the epoch automatically, but a fresh
    /// process has no memory of the old incarnation's count.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SupervisorConfig::validate`].
    pub fn with_starting_epoch(
        cfg: SupervisorConfig,
        watched: Vec<NodeId>,
        mut factory: F,
        seed: u64,
        epoch: u32,
    ) -> Self {
        let ep = Self::incarnate(&mut factory, cfg, &watched, epoch, TraceHandle::off());
        let node = ep.endpoint().node().index() as u64;
        Supervisor {
            factory,
            cfg,
            watched,
            ep: Some(ep),
            epoch,
            restarts: 0,
            restart_at: None,
            rng: SimRng::from_seed_stream(seed, SUPERVISOR_STREAM | node),
            trace: TraceHandle::off(),
        }
    }

    fn incarnate(
        factory: &mut F,
        cfg: SupervisorConfig,
        watched: &[NodeId],
        epoch: u32,
        trace: TraceHandle,
    ) -> SupervisedEndpoint<T> {
        let mut sup = SupervisedEndpoint::new(factory(), cfg, epoch);
        for &peer in watched {
            sup.watch(peer);
        }
        sup.attach_trace(trace);
        sup
    }

    /// Connects current and future incarnations to a flight recorder.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        if let Some(ep) = &mut self.ep {
            ep.attach_trace(trace.clone());
        }
        self.trace = trace;
    }

    /// Whether an incarnation is currently running.
    pub fn is_up(&self) -> bool {
        self.ep.is_some()
    }

    /// The current (or, while down, the most recent) epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Completed restarts so far.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// The running incarnation, if up.
    pub fn endpoint(&self) -> Option<&SupervisedEndpoint<T>> {
        self.ep.as_ref()
    }

    /// The running incarnation, mutably, if up.
    pub fn endpoint_mut(&mut self) -> Option<&mut SupervisedEndpoint<T>> {
        self.ep.as_mut()
    }

    /// Simulates a crash: the incarnation and **all** its protocol state
    /// are dropped on the floor (no goodbye frames), and a restart is
    /// scheduled after `min(base·2ᵃᵗᵗᵉᵐᵖᵗˢ, max)` plus seeded jitter.
    pub fn kill(&mut self, now: Cycle) {
        if self.ep.take().is_none() {
            return;
        }
        let shift = self.restarts.min(63);
        let exp = self.cfg.backoff_base.saturating_mul(1u64 << shift);
        let mut backoff = exp.min(self.cfg.backoff_max);
        if self.cfg.backoff_jitter > 0 {
            backoff += self.rng.next_u64() % (self.cfg.backoff_jitter + 1);
        }
        self.restart_at = Some((now + backoff, backoff));
    }

    /// When this supervisor next needs a [`step`](Self::step): the running
    /// incarnation's wakeup while up, the restart deadline while down, and
    /// [`Wakeup::Quiescent`] when down with no restart scheduled (nothing
    /// short of external input — a [`kill`](Self::kill) — changes that).
    pub fn next_event(&self, now: Cycle) -> Wakeup {
        match &self.ep {
            Some(ep) => ep.next_event(),
            None => match self.restart_at {
                Some((at, _)) => Wakeup::at_or_now(at, now),
                None => Wakeup::Quiescent,
            },
        }
    }

    /// One cycle: step the running incarnation, or — while down — restart
    /// once the backoff deadline passes `now`.
    pub fn step(&mut self, now: Cycle) {
        if let Some(ep) = &mut self.ep {
            ep.step();
            return;
        }
        let Some((at, backoff)) = self.restart_at else {
            return;
        };
        if now < at {
            return;
        }
        self.restart_at = None;
        self.epoch = self.epoch.wrapping_add(1);
        self.restarts += 1;
        let ep = Self::incarnate(
            &mut self.factory,
            self.cfg,
            &self.watched,
            self.epoch,
            self.trace.clone(),
        );
        trace_event!(
            self.trace,
            now,
            ep.endpoint().node(),
            EventKind::EndpointRestart {
                epoch: self.epoch,
                backoff,
            }
        );
        self.ep = Some(ep);
    }
}

#[cfg(test)]
mod tests {
    use nifdy::NifdyConfig;

    use super::*;
    use crate::transport::LoopbackHub;

    fn pair(
        hub: &LoopbackHub,
        cfg: SupervisorConfig,
    ) -> [SupervisedEndpoint<crate::LoopbackTransport>; 2] {
        let mk = |n: usize| {
            let node = NodeId::new(n);
            let mut s = SupervisedEndpoint::new(
                WireEndpoint::new(node, NifdyConfig::mesh(), hub.endpoint(node)),
                cfg,
                0,
            );
            s.watch(NodeId::new(1 - n));
            s
        };
        [mk(0), mk(1)]
    }

    #[test]
    fn heartbeats_establish_liveness_without_protocol_traffic() {
        let hub = LoopbackHub::new(2, 1);
        let cfg = SupervisorConfig::default()
            .with_heartbeat_every(16)
            .with_peer_timeout(64);
        let mut eps = pair(&hub, cfg);
        for _ in 0..32 {
            for ep in eps.iter_mut() {
                ep.step();
            }
            hub.tick();
        }
        for ep in eps.iter() {
            assert!(!ep.peer_down(NodeId::new(0)));
            assert!(!ep.peer_down(NodeId::new(1)));
        }
        assert!(eps[0].peers.len() == 1, "peer 1 tracked via heartbeat");
    }

    #[test]
    fn silence_flags_the_peer_down_once() {
        let hub = LoopbackHub::new(2, 1);
        let cfg = SupervisorConfig::default()
            .with_heartbeat_every(8)
            .with_peer_timeout(40);
        let mut eps = pair(&hub, cfg);
        // Warm up so each side has heard the other.
        for _ in 0..16 {
            for ep in eps.iter_mut() {
                ep.step();
            }
            hub.tick();
        }
        // Now only node 0 keeps stepping: node 1 falls silent.
        let mut down_events = 0;
        for _ in 0..200 {
            let Some((zero, _)) = eps.split_first_mut() else {
                unreachable!()
            };
            zero.step();
            hub.tick();
            down_events += zero
                .take_peer_events()
                .iter()
                .filter(|e| matches!(e, PeerEvent::Down { .. }))
                .count();
        }
        assert_eq!(down_events, 1, "down transition is edge-triggered");
        assert!(eps[0].peer_down(NodeId::new(1)));
    }

    #[test]
    fn epoch_bump_triggers_peer_reset() {
        let hub = LoopbackHub::new(2, 1);
        let cfg = SupervisorConfig::default()
            .with_heartbeat_every(8)
            .with_peer_timeout(40);
        let mut eps = pair(&hub, cfg);
        for _ in 0..16 {
            for ep in eps.iter_mut() {
                ep.step();
            }
            hub.tick();
        }
        // Node 1 "restarts": same transport, bumped epoch.
        eps[1].epoch = 1;
        let mut restarted = Vec::new();
        for _ in 0..32 {
            for ep in eps.iter_mut() {
                ep.step();
            }
            hub.tick();
            restarted.extend(
                eps[0]
                    .take_peer_events()
                    .into_iter()
                    .filter(|e| matches!(e, PeerEvent::Restarted { .. })),
            );
        }
        assert_eq!(
            restarted,
            vec![PeerEvent::Restarted {
                peer: NodeId::new(1),
                epoch: 1
            }],
            "exactly one restart detection per epoch bump"
        );
    }

    #[test]
    fn supervisor_restarts_after_bounded_backoff() {
        let hub = LoopbackHub::new(2, 1);
        let cfg = SupervisorConfig::default()
            .with_heartbeat_every(8)
            .with_peer_timeout(40)
            .with_backoff(16, 256, 8);
        let node = NodeId::new(0);
        let hub2 = hub.clone();
        let mut sup = Supervisor::new(
            cfg,
            vec![NodeId::new(1)],
            move || WireEndpoint::new(node, NifdyConfig::mesh(), hub2.endpoint(node)),
            7,
        );
        assert!(sup.is_up());
        assert_eq!(sup.epoch(), 0);
        sup.kill(Cycle::new(100));
        assert!(!sup.is_up());
        sup.step(Cycle::new(100));
        assert!(!sup.is_up(), "backoff holds the restart");
        let mut restarted_at = None;
        for t in 101..400 {
            sup.step(Cycle::new(t));
            if sup.is_up() {
                restarted_at = Some(t);
                break;
            }
        }
        let t = restarted_at.expect("restarted within the bound");
        assert!((116..=124).contains(&t), "base 16 + jitter <= 8, got {t}");
        assert_eq!(sup.epoch(), 1);
        assert_eq!(sup.restarts(), 1);
        // Second crash backs off twice as far.
        sup.kill(Cycle::new(500));
        let mut second = None;
        for t in 500..900 {
            sup.step(Cycle::new(t));
            if sup.is_up() {
                second = Some(t);
                break;
            }
        }
        let t = second.expect("second restart");
        assert!((532..=540).contains(&t), "base doubled to 32, got {t}");
    }

    #[test]
    fn invalid_supervisor_configs_are_rejected() {
        assert!(SupervisorConfig::default()
            .with_heartbeat_every(0)
            .validate()
            .is_err());
        assert!(SupervisorConfig::default()
            .with_heartbeat_every(100)
            .with_peer_timeout(150)
            .validate()
            .is_err());
        assert!(SupervisorConfig::default()
            .with_backoff(16, 8, 0)
            .validate()
            .is_err());
        assert!(SupervisorConfig::default()
            .with_backoff(16, 32, 64)
            .validate()
            .is_err());
        assert!(SupervisorConfig::default().validate().is_ok());
    }
}
