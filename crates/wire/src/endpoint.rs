//! A complete wire node: a [`NifdyUnit`] driving a [`TransportPort`].
//!
//! [`WireEndpoint`] is the "one NIFDY chip plus its cable" bundle — the unit
//! implements the paper's protocol unchanged (the whole point of the
//! sim/wire split), and the port carries its packets as encoded frames over
//! whatever [`Transport`] the endpoint was built on.

use nifdy::{Delivered, DeliveryFailure, Nic, NicStats, NifdyConfig, NifdyUnit, OutboundPacket};
use nifdy_sim::{Cycle, NodeId, Wakeup};
use nifdy_trace::TraceHandle;

use crate::port::TransportPort;
use crate::transport::Transport;

/// One node of a wire-backed NIFDY network.
///
/// # Examples
///
/// Two endpoints on a zero-latency loopback hub:
///
/// ```
/// use nifdy::{NifdyConfig, OutboundPacket};
/// use nifdy_sim::NodeId;
/// use nifdy_wire::{LoopbackHub, WireEndpoint};
///
/// let hub = LoopbackHub::new(2, 1);
/// let mut a = WireEndpoint::new(NodeId::new(0), NifdyConfig::mesh(), hub.endpoint(NodeId::new(0)));
/// let mut b = WireEndpoint::new(NodeId::new(1), NifdyConfig::mesh(), hub.endpoint(NodeId::new(1)));
/// assert!(a.try_send(OutboundPacket::new(NodeId::new(1), 6)));
/// let mut got = None;
/// for _ in 0..64 {
///     a.step();
///     b.step();
///     hub.tick();
///     if let Some(d) = b.poll() {
///         got = Some(d);
///         break;
///     }
/// }
/// assert_eq!(got.expect("delivered").src, NodeId::new(0));
/// ```
#[derive(Debug)]
pub struct WireEndpoint<T: Transport> {
    unit: NifdyUnit,
    port: TransportPort<T>,
}

impl<T: Transport> WireEndpoint<T> {
    /// Builds the endpoint for `node` from a protocol config and a transport
    /// attachment.
    ///
    /// # Panics
    ///
    /// Panics if `transport` serves a different node than `node`, or if the
    /// config is invalid (see [`NifdyUnit::new`]).
    pub fn new(node: NodeId, cfg: NifdyConfig, transport: T) -> Self {
        assert_eq!(node, transport.node(), "transport serves a different node");
        WireEndpoint {
            unit: NifdyUnit::new(node, cfg),
            port: TransportPort::new(transport),
        }
    }

    /// The node this endpoint serves.
    pub fn node(&self) -> NodeId {
        self.port.node()
    }

    /// The endpoint's current cycle (the transport's clock).
    pub fn now(&self) -> Cycle {
        use nifdy_net::NetPort;
        self.port.now()
    }

    /// Connects both the protocol unit and the frame port to a flight
    /// recorder.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.unit.attach_trace(trace.clone());
        self.port.attach_trace(trace);
    }

    /// One cycle: pump the transport, decode arrivals, then run the
    /// protocol step against the port.
    pub fn step(&mut self) {
        self.port.tick();
        self.unit.step(&mut self.port);
    }

    /// Hands an outbound packet to the interface; `false` means the buffer
    /// pool is full and the caller retries later.
    pub fn try_send(&mut self, pkt: OutboundPacket) -> bool {
        let now = self.now();
        self.unit.try_send(pkt, now)
    }

    /// Removes the next delivered packet, in the order NIFDY guarantees
    /// (sender order per source).
    pub fn poll(&mut self) -> Option<Delivered> {
        let now = self.now();
        self.unit.poll(now)
    }

    /// True when the protocol unit holds no work and no decoded frames
    /// await ejection. Frames still inside the transport are *not* counted —
    /// ask the transport (e.g. [`LoopbackHub::in_flight`]) for those.
    ///
    /// [`LoopbackHub::in_flight`]: crate::LoopbackHub::in_flight
    pub fn is_idle(&self) -> bool {
        self.unit.is_idle() && self.port.pending() == 0
    }

    /// When this endpoint next needs a [`step`](Self::step), under the
    /// [`Wakeup`] contract: the protocol unit's own wakeup (retransmission
    /// timers, ack delays), collapsed to `Now` while decoded frames await
    /// ejection. Frames still inside the transport are invisible here — a
    /// skip-ahead supervisor must also consult the transport's clock.
    pub fn next_event(&self) -> Wakeup {
        if self.port.pending() > 0 {
            return Wakeup::Now;
        }
        self.unit.next_event(self.now())
    }

    /// Interface counters.
    pub fn stats(&self) -> &NicStats {
        self.unit.stats()
    }

    /// Drains delivery failures surfaced since the last call.
    pub fn take_failures(&mut self) -> Vec<DeliveryFailure> {
        self.unit.take_failures()
    }

    /// The protocol unit (telemetry, config inspection).
    pub fn unit(&self) -> &NifdyUnit {
        &self.unit
    }

    /// The frame port (decode/foreign counters).
    pub fn port(&self) -> &TransportPort<T> {
        &self.port
    }

    /// The underlying transport, mutably (multiplexing hosts feed and
    /// drain it; UDP callers drain [`take_error`](crate::UdpTransport::take_error)).
    pub fn transport_mut(&mut self) -> &mut T {
        self.port.transport_mut()
    }

    /// Mutable unit access for the supervision layer (peer resets).
    pub(crate) fn unit_mut(&mut self) -> &mut NifdyUnit {
        &mut self.unit
    }

    /// Mutable port access for the supervision layer (heartbeats).
    pub(crate) fn port_mut(&mut self) -> &mut TransportPort<T> {
        &mut self.port
    }
}

#[cfg(test)]
mod tests {
    use nifdy_net::UserData;

    use super::*;
    use crate::transport::LoopbackHub;

    fn drive<T: Transport>(eps: &mut [WireEndpoint<T>], hub: &LoopbackHub, cycles: u64) {
        for _ in 0..cycles {
            for ep in eps.iter_mut() {
                ep.step();
            }
            hub.tick();
        }
    }

    #[test]
    fn scalar_message_round_trips_with_ack() {
        let hub = LoopbackHub::new(2, 2);
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let mut eps = [
            WireEndpoint::new(n0, NifdyConfig::mesh(), hub.endpoint(n0)),
            WireEndpoint::new(n1, NifdyConfig::mesh(), hub.endpoint(n1)),
        ];
        let user = UserData {
            msg_id: 7,
            pkt_index: 0,
            msg_packets: 1,
            user_words: 4,
        };
        assert!(eps[0].try_send(OutboundPacket::new(n1, 6).with_user(user)));
        let mut got = None;
        for _ in 0..128 {
            drive(&mut eps, &hub, 1);
            if let Some(d) = eps[1].poll() {
                got = Some(d);
            }
            if got.is_some() && eps[0].is_idle() {
                break;
            }
        }
        let d = got.expect("delivered");
        assert_eq!(d.src, n0);
        assert_eq!(d.user, user);
        assert!(eps[0].is_idle(), "ack returned and OPT cleared");
        assert_eq!(eps[0].stats().acks_received.get(), 1);
    }

    #[test]
    fn bulk_message_streams_in_order() {
        let hub = LoopbackHub::new(2, 1);
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let mut eps = [
            WireEndpoint::new(n0, NifdyConfig::mesh(), hub.endpoint(n0)),
            WireEndpoint::new(n1, NifdyConfig::mesh(), hub.endpoint(n1)),
        ];
        let total = 12u32;
        let mut sent = 0u32;
        let mut seen = Vec::new();
        for _ in 0..4096 {
            if sent < total {
                let user = UserData {
                    msg_id: 1,
                    pkt_index: sent,
                    msg_packets: total,
                    user_words: 4,
                };
                if eps[0].try_send(OutboundPacket::new(n1, 6).with_bulk(true).with_user(user)) {
                    sent += 1;
                }
            }
            drive(&mut eps, &hub, 1);
            while let Some(d) = eps[1].poll() {
                seen.push(d.user.pkt_index);
                assert_eq!(d.src, n0, "dialog re-substitutes the true source");
            }
            if seen.len() == total as usize && eps[0].is_idle() && eps[1].is_idle() {
                break;
            }
        }
        assert_eq!(seen, (0..total).collect::<Vec<_>>());
        assert!(eps[0].stats().sent_bulk.get() > 0, "dialog actually opened");
    }
}
