//! The stepping contract for event-driven simulation.
//!
//! Every steppable component (NIC, fabric, processor workload, watchdog)
//! reports, via `next_event(&self, now) -> Wakeup`, when it next needs a
//! stepped cycle. A driver that sees no component reporting [`Wakeup::Now`]
//! may jump the clock straight to the earliest [`Wakeup::At`] deadline —
//! every skipped cycle is, by the contract below, a no-op for every
//! component, so traces, statistics and delivery orders are byte-identical
//! to stepping each cycle explicitly.
//!
//! The contract a component must uphold:
//!
//! * **`Now`** — stepping this cycle may perform observable work (mutate
//!   state, emit trace events, move packets, bump counters). When unsure, a
//!   component must say `Now`: the cost is a stepped cycle, never a wrong
//!   answer.
//! * **`At(t)`** — stepping any cycle strictly before `t` is a no-op
//!   (assuming no new external input arrives); the component next does work
//!   at `t`. Deadlines must be *hard*: derived from stored timer state
//!   (retransmission timers, ack-processing delays, reclaim horizons), not
//!   guesses.
//! * **`Quiescent`** — the component will never do work again unless new
//!   external input arrives (a send from the processor, a packet from the
//!   fabric). External inputs always pass through the driver, which
//!   re-queries `next_event` after delivering them.

use crate::Cycle;

/// When a component next needs to be stepped. See the module docs for
/// the full contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wakeup {
    /// Stepping this cycle may perform observable work.
    Now,
    /// Stepping is a no-op until the given cycle (exclusive).
    At(Cycle),
    /// No work will ever happen again without new external input.
    Quiescent,
}

impl Wakeup {
    /// A deadline that is already due collapses to `Now`; future deadlines
    /// stay `At`. Use when constructing from raw timer state.
    pub fn at_or_now(deadline: Cycle, now: Cycle) -> Wakeup {
        if deadline <= now {
            Wakeup::Now
        } else {
            Wakeup::At(deadline)
        }
    }

    /// The earlier of two wakeups (`Now` < any `At` < `Quiescent`).
    #[must_use]
    pub fn earliest(self, other: Wakeup) -> Wakeup {
        match (self, other) {
            (Wakeup::Now, _) | (_, Wakeup::Now) => Wakeup::Now,
            (Wakeup::At(a), Wakeup::At(b)) => Wakeup::At(a.min(b)),
            (Wakeup::At(a), Wakeup::Quiescent) | (Wakeup::Quiescent, Wakeup::At(a)) => {
                Wakeup::At(a)
            }
            (Wakeup::Quiescent, Wakeup::Quiescent) => Wakeup::Quiescent,
        }
    }

    /// True when the component needs stepping at `now` (it said `Now`, or
    /// its deadline is due).
    pub fn is_due(self, now: Cycle) -> bool {
        match self {
            Wakeup::Now => true,
            Wakeup::At(t) => t <= now,
            Wakeup::Quiescent => false,
        }
    }

    /// The deadline as a cycle, clamped to `bound`: `Now` maps to `now`,
    /// `Quiescent` to `bound`. The driver's skip target is the minimum of
    /// this over all components.
    pub fn deadline_or(self, now: Cycle, bound: Cycle) -> Cycle {
        match self {
            Wakeup::Now => now,
            Wakeup::At(t) => t.min(bound),
            Wakeup::Quiescent => bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_orders_now_at_quiescent() {
        let at5 = Wakeup::At(Cycle::new(5));
        let at9 = Wakeup::At(Cycle::new(9));
        assert_eq!(Wakeup::Now.earliest(at5), Wakeup::Now);
        assert_eq!(at5.earliest(Wakeup::Now), Wakeup::Now);
        assert_eq!(at5.earliest(at9), at5);
        assert_eq!(Wakeup::Quiescent.earliest(at9), at9);
        assert_eq!(
            Wakeup::Quiescent.earliest(Wakeup::Quiescent),
            Wakeup::Quiescent
        );
    }

    #[test]
    fn due_deadlines_collapse_to_now() {
        let now = Cycle::new(10);
        assert_eq!(Wakeup::at_or_now(Cycle::new(10), now), Wakeup::Now);
        assert_eq!(Wakeup::at_or_now(Cycle::new(3), now), Wakeup::Now);
        assert_eq!(
            Wakeup::at_or_now(Cycle::new(11), now),
            Wakeup::At(Cycle::new(11))
        );
        assert!(Wakeup::At(Cycle::new(10)).is_due(now));
        assert!(!Wakeup::At(Cycle::new(11)).is_due(now));
        assert!(Wakeup::Now.is_due(now));
        assert!(!Wakeup::Quiescent.is_due(now));
    }

    #[test]
    fn deadline_or_clamps_to_the_bound() {
        let now = Cycle::new(10);
        let bound = Cycle::new(100);
        assert_eq!(Wakeup::Now.deadline_or(now, bound), now);
        assert_eq!(
            Wakeup::At(Cycle::new(50)).deadline_or(now, bound),
            Cycle::new(50)
        );
        assert_eq!(Wakeup::At(Cycle::new(500)).deadline_or(now, bound), bound);
        assert_eq!(Wakeup::Quiescent.deadline_or(now, bound), bound);
    }
}
