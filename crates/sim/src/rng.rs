use rand::{Error, RngCore, SeedableRng};

/// Deterministic pseudo-random number generator with independent streams.
///
/// The paper's simulator keeps *"dedicated state for each pseudo-random
/// number generator"* so that *"the same sequence of bursts is generated
/// regardless of network and NIFDY configuration used"*. `SimRng` provides
/// that property: construct one stream per node (or per logical purpose) via
/// [`SimRng::from_seed_stream`], and the sequence drawn from that stream is a
/// pure function of `(seed, stream)` — independent of how any other stream is
/// consumed.
///
/// The generator is xoshiro256** seeded through SplitMix64, implemented
/// locally so results are reproducible across `rand` versions. It also
/// implements [`rand::RngCore`] so the `rand` distribution adapters work on
/// it.
///
/// # Examples
///
/// ```
/// use nifdy_sim::SimRng;
///
/// let mut a = SimRng::from_seed_stream(7, 0);
/// let mut b = SimRng::from_seed_stream(7, 0);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut c = SimRng::from_seed_stream(7, 1);
/// // Different streams are decorrelated.
/// assert_ne!(a.next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates stream `stream` of the generator family identified by `seed`.
    ///
    /// Streams with the same `seed` but different `stream` values are
    /// decorrelated; this is how per-node generators are made.
    pub fn from_seed_stream(seed: u64, stream: u64) -> Self {
        let mut x = seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = splitmix64(&mut x);
        }
        // xoshiro must not start in the all-zero state.
        if state == [0; 4] {
            state[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { state }
    }

    /// Returns the next value of the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Unbiased via rejection sampling on the top bits.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + v % span;
            }
        }
    }

    /// Returns a uniformly distributed `usize` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.gen_range_u64(range.start as u64..range.end as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Picks a uniformly random element of `slice`, or `None` if it is empty.
    #[inline]
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range_usize(0..slice.len())])
        }
    }
}

impl RngCore for SimRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (SimRng::next_u64(self) >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&SimRng::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = SimRng::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::from_seed_stream(u64::from_le_bytes(seed), 0)
    }

    fn seed_from_u64(state: u64) -> Self {
        SimRng::from_seed_stream(state, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = SimRng::from_seed_stream(1, 5);
        let mut b = SimRng::from_seed_stream(1, 5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut a = SimRng::from_seed_stream(1, 0);
        let mut b = SimRng::from_seed_stream(1, 1);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 4, "streams look correlated: {equal}/64 equal draws");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SimRng::from_seed_stream(3, 0);
        for _ in 0..10_000 {
            let v = rng.gen_range_u64(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SimRng::from_seed_stream(4, 0);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range_usize(0..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::from_seed_stream(5, 0);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = SimRng::from_seed_stream(6, 0);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.33)).count();
        assert!(
            (2_800..3_800).contains(&hits),
            "p=0.33 produced {hits}/10000 hits"
        );
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::from_seed_stream(7, 0);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn fill_bytes_fills_unaligned_lengths() {
        let mut rng = SimRng::from_seed_stream(8, 0);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
