//! A generational slab: stable handles into a free-list arena.
//!
//! The simulator's steady state must not allocate — packets, flits and
//! bookkeeping entries churn millions of times per run. A [`Slab`] holds
//! values in a flat `Vec`, recycles vacated slots through an internal free
//! list, and brands every handle with the slot's *generation* so a stale
//! handle (kept across a remove + reinsert) is detected instead of silently
//! aliasing the new occupant.
//!
//! All accessors are total: a dangling or foreign key yields `None`, never
//! a panic — slabs sit on hot paths guarded by `nifdy-lint` R1/R5.

/// A generational handle into a [`Slab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlabKey {
    index: u32,
    generation: u32,
}

impl SlabKey {
    /// The raw slot index (diagnostics only — not unique over time).
    pub fn index(self) -> u32 {
        self.index
    }
}

#[derive(Debug)]
enum Entry<T> {
    Vacant { generation: u32 },
    Occupied { generation: u32, value: T },
}

/// A free-list arena with generation-checked handles. See the module
/// docs for the full contract.
///
/// # Examples
///
/// ```
/// use nifdy_sim::Slab;
///
/// let mut slab: Slab<&str> = Slab::with_capacity(4);
/// let k = slab.insert("worm");
/// assert_eq!(slab.get(k), Some(&"worm"));
/// assert_eq!(slab.remove(k), Some("worm"));
/// assert_eq!(slab.get(k), None, "stale key after removal");
/// let k2 = slab.insert("next");
/// assert_ne!(k, k2, "recycled slot carries a new generation");
/// ```
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Slab<T> {
    /// An empty slab with no preallocated slots.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// An empty slab with `cap` slots preallocated, so the first `cap`
    /// inserts (net of removals) never allocate.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no values are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts `value`, recycling a vacant slot when one exists.
    pub fn insert(&mut self, value: T) -> SlabKey {
        if let Some(index) = self.free.pop() {
            let Some(entry) = self.entries.get_mut(index as usize) else {
                // Free list corrupt (impossible by construction); fall
                // through to a fresh slot rather than panic.
                return self.insert_fresh(value);
            };
            let generation = match entry {
                Entry::Vacant { generation } => generation.wrapping_add(1),
                // Occupied slot on the free list: skip it defensively.
                Entry::Occupied { .. } => return self.insert_fresh(value),
            };
            *entry = Entry::Occupied { generation, value };
            self.live += 1;
            return SlabKey { index, generation };
        }
        self.insert_fresh(value)
    }

    fn insert_fresh(&mut self, value: T) -> SlabKey {
        let index = self.entries.len() as u32;
        self.entries.push(Entry::Occupied {
            generation: 0,
            value,
        });
        self.live += 1;
        SlabKey {
            index,
            generation: 0,
        }
    }

    /// The value behind `key`, if it is still live.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        match self.entries.get(key.index as usize) {
            Some(Entry::Occupied { generation, value }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access to the value behind `key`, if it is still live.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        match self.entries.get_mut(key.index as usize) {
            Some(Entry::Occupied { generation, value }) if *generation == key.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Removes and returns the value behind `key`; `None` for stale keys.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let entry = self.entries.get_mut(key.index as usize)?;
        match entry {
            Entry::Occupied { generation, .. } if *generation == key.generation => {
                let generation = *generation;
                let old = std::mem::replace(entry, Entry::Vacant { generation });
                // The slot being freed was occupied, so it is not on the
                // free list yet: the push can never outgrow the arena.
                debug_assert!(self.free.len() < self.entries.len());
                self.free.push(key.index);
                self.live -= 1;
                match old {
                    Entry::Occupied { value, .. } => Some(value),
                    Entry::Vacant { .. } => None, // unreachable: matched Occupied
                }
            }
            _ => None,
        }
    }

    /// Iterates over live `(key, &value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Entry::Occupied { generation, value } => Some((
                    SlabKey {
                        index: i as u32,
                        generation: *generation,
                    },
                    value,
                )),
                Entry::Vacant { .. } => None,
            })
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert(10u32);
        let b = s.insert(20);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&10));
        assert_eq!(s.get_mut(b).map(|v| std::mem::replace(v, 21)), Some(20));
        assert_eq!(s.get(b), Some(&21));
        assert_eq!(s.remove(a), Some(10));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), None);
    }

    #[test]
    fn stale_keys_are_rejected_after_slot_reuse() {
        let mut s = Slab::new();
        let a = s.insert(1u8);
        assert_eq!(s.remove(a), Some(1));
        let b = s.insert(2);
        assert_eq!(b.index(), a.index(), "slot recycled");
        assert_ne!(a, b, "generation advanced");
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn preallocated_slabs_never_grow_in_steady_state() {
        let mut s: Slab<u64> = Slab::with_capacity(8);
        let cap = s.entries.capacity();
        // Churn well past the preallocation with at most 8 live values.
        let mut keys = Vec::new();
        for round in 0..100u64 {
            while keys.len() < 8 {
                keys.push(s.insert(round));
            }
            for k in keys.drain(..4) {
                assert!(s.remove(k).is_some());
            }
        }
        assert_eq!(s.entries.capacity(), cap, "no reallocation under churn");
    }

    #[test]
    fn iter_visits_only_live_entries() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let _b = s.insert("b");
        s.remove(a);
        let seen: Vec<&str> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec!["b"]);
    }
}
