//! Cycle-synchronous simulation kernel for the NIFDY reproduction.
//!
//! The NIFDY paper (Callahan & Goldstein, ISCA '95) evaluates its network
//! interface with a simulator in which *"each cycle is simulated explicitly
//! and synchronously by all objects"*. This crate provides the shared
//! substrate for that style of simulation:
//!
//! * [`Cycle`] — a strongly-typed simulation timestamp,
//! * [`NodeId`] — a strongly-typed processor/node identifier,
//! * [`SimRng`] — deterministic, splittable random-number streams (the paper
//!   keeps *"dedicated state for each pseudo-random number generator"* so the
//!   same bursts are generated regardless of configuration),
//! * [`metrics`] — counters, running statistics, histograms and time series
//!   used to produce the paper's tables and figures,
//! * [`StallWatchdog`] — cycle-driven detection of units that stay busy
//!   without making progress (livelock and lost-wakeup tripwire for lossy
//!   fabrics),
//! * [`Wakeup`] — the stepping contract that lets an event-driven driver
//!   skip quiescent cycles while staying byte-identical to explicit
//!   cycle-by-cycle stepping,
//! * [`Slab`] — a generational free-list arena so steady-state packet and
//!   flit churn never allocates.
//!
//! # Examples
//!
//! ```
//! use nifdy_sim::{Cycle, NodeId, SimRng};
//!
//! let mut rng = SimRng::from_seed_stream(42, NodeId::new(3).index() as u64);
//! let mut now = Cycle::ZERO;
//! let delay = rng.gen_range_u64(1..10);
//! now += delay;
//! assert!(now.as_u64() >= 1 && now.as_u64() < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycle;
mod id;
pub mod metrics;
mod rng;
mod slab;
mod wakeup;
mod watchdog;

pub use cycle::Cycle;
pub use id::{NodeId, PacketId};
pub use rng::SimRng;
pub use slab::{Slab, SlabKey};
pub use wakeup::Wakeup;
pub use watchdog::{StallReport, StallWatchdog};
