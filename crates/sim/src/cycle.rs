use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A simulation timestamp, measured in machine cycles.
///
/// All latencies and overheads in the NIFDY paper are expressed in processor
/// cycles (e.g. `T_send = 40`, `T_receive = 60`); `Cycle` keeps those
/// quantities from being confused with other integers.
///
/// # Examples
///
/// ```
/// use nifdy_sim::Cycle;
///
/// let start = Cycle::new(100);
/// let end = start + 44;
/// assert_eq!(end - start, 44);
/// assert_eq!(end.as_u64(), 144);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero timestamp, i.e. the beginning of the simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The largest representable timestamp; useful as an "infinite" deadline.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a timestamp at `cycles` cycles after the start of simulation.
    #[inline]
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the timestamp `delta` cycles later, saturating at [`Cycle::MAX`].
    #[inline]
    pub const fn saturating_add(self, delta: u64) -> Self {
        Cycle(self.0.saturating_add(delta))
    }

    /// Returns the number of cycles from `earlier` to `self`, or zero if
    /// `earlier` is in the future.
    #[inline]
    pub const fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Elapsed cycles between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Cycle {
    fn from(value: u64) -> Self {
        Cycle(value)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let c = Cycle::new(10);
        assert_eq!((c + 5) - c, 5);
        assert_eq!(Cycle::ZERO.as_u64(), 0);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Cycle::MAX.saturating_add(1), Cycle::MAX);
        assert_eq!(Cycle::new(5).saturating_since(Cycle::new(9)), 0);
        assert_eq!(Cycle::new(9).saturating_since(Cycle::new(5)), 4);
    }

    #[test]
    fn ordering_matches_time() {
        assert!(Cycle::new(3) < Cycle::new(4));
        assert_eq!(Cycle::from(7u64), Cycle::new(7));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(12).to_string(), "cycle 12");
    }
}
