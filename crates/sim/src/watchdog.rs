//! Cycle-driven stall detection for simulation drivers.

use crate::Cycle;

/// A stall flagged by [`StallWatchdog::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallReport {
    /// Index of the stalled unit (driver-defined, typically the node index).
    pub unit: usize,
    /// Cycle of the last observed progress.
    pub since: Cycle,
    /// Cycle at which the stall tripped.
    pub now: Cycle,
    /// The progress fingerprint that has not changed since `since`.
    pub fingerprint: u64,
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unit {} stalled: busy with no progress since {} (now {}, fingerprint {:#x})",
            self.unit, self.since, self.now, self.fingerprint
        )
    }
}

/// Per-unit progress tracking state.
#[derive(Debug, Clone, Copy)]
struct UnitState {
    fingerprint: u64,
    last_change: Cycle,
}

/// Detects units that are busy but making no progress.
///
/// Each cycle the driver reports, per unit, a *fingerprint* — any value that
/// changes whenever the unit does useful work (a sum of monotone stat
/// counters works well) — and a *busy* flag. A unit that stays busy for
/// `limit` cycles without its fingerprint changing trips the watchdog. Idle
/// units never trip: having nothing to do is not a stall.
///
/// The limit must exceed the longest legitimate quiet period — with
/// retransmission configured, comfortably more than the maximum RTO, so a
/// backed-off sender waiting out its timer is not flagged.
///
/// # Examples
///
/// ```
/// use nifdy_sim::{Cycle, StallWatchdog};
///
/// let mut dog = StallWatchdog::new(100, 2);
/// // Unit 0 is busy but its fingerprint never moves.
/// for t in 0..100 {
///     assert!(dog.observe(0, Cycle::new(t), 7, true).is_none());
/// }
/// let report = dog.observe(0, Cycle::new(100), 7, true).expect("tripped");
/// assert_eq!(report.unit, 0);
/// ```
#[derive(Debug, Clone)]
pub struct StallWatchdog {
    limit: u64,
    units: Vec<Option<UnitState>>,
}

impl StallWatchdog {
    /// Creates a watchdog for `units` units that trips after `limit` cycles
    /// of busy non-progress.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero (every busy observation would trip).
    pub fn new(limit: u64, units: usize) -> Self {
        assert!(limit > 0, "a zero stall limit trips on every observation");
        StallWatchdog {
            limit,
            units: vec![None; units],
        }
    }

    /// The configured trip limit in cycles.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// The earliest cycle at which any tracked unit could trip, given no
    /// further progress: `last_change + limit` minimized over armed units.
    ///
    /// An event-driven driver must treat this as a hard [`crate::Wakeup`]
    /// deadline — observations between now and the deadline are no-ops for
    /// a frozen unit (same fingerprint, still busy), so skipping them is
    /// safe, but skipping *past* the deadline would let a wedged node
    /// escape detection.
    pub fn next_deadline(&self) -> Option<Cycle> {
        self.units
            .iter()
            .flatten()
            .map(|s| s.last_change + self.limit)
            .min()
    }

    /// Feeds one observation of `unit` at cycle `now`.
    ///
    /// Returns a [`StallReport`] when the unit has been continuously busy
    /// with an unchanged fingerprint for at least the limit; the unit's
    /// timer resets after a trip, so a persistent stall re-trips every
    /// `limit` cycles rather than every observation.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range.
    pub fn observe(
        &mut self,
        unit: usize,
        now: Cycle,
        fingerprint: u64,
        busy: bool,
    ) -> Option<StallReport> {
        let slot = &mut self.units[unit];
        if !busy {
            *slot = None;
            return None;
        }
        match slot {
            Some(s) if s.fingerprint == fingerprint => {
                if now.saturating_since(s.last_change) >= self.limit {
                    let report = StallReport {
                        unit,
                        since: s.last_change,
                        now,
                        fingerprint,
                    };
                    s.last_change = now;
                    return Some(report);
                }
                None
            }
            _ => {
                *slot = Some(UnitState {
                    fingerprint,
                    last_change: now,
                });
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_resets_the_timer() {
        let mut dog = StallWatchdog::new(10, 1);
        for t in 0..100u64 {
            // Fingerprint advances every 5 cycles: never trips.
            assert_eq!(dog.observe(0, Cycle::new(t), t / 5, true), None);
        }
    }

    #[test]
    fn idle_units_never_trip() {
        let mut dog = StallWatchdog::new(10, 1);
        for t in 0..100u64 {
            assert_eq!(dog.observe(0, Cycle::new(t), 42, false), None);
        }
    }

    #[test]
    fn busy_non_progress_trips_at_the_limit() {
        let mut dog = StallWatchdog::new(10, 2);
        for t in 0..10u64 {
            assert_eq!(dog.observe(0, Cycle::new(t), 5, true), None);
        }
        let report = dog.observe(0, Cycle::new(10), 5, true).expect("trip");
        assert_eq!(report.unit, 0);
        assert_eq!(report.since, Cycle::ZERO);
        assert_eq!(report.now, Cycle::new(10));
    }

    #[test]
    fn trips_rearm_instead_of_firing_every_cycle() {
        let mut dog = StallWatchdog::new(10, 1);
        for t in 0..=10u64 {
            let _ = dog.observe(0, Cycle::new(t), 5, true);
        }
        assert_eq!(dog.observe(0, Cycle::new(11), 5, true), None);
        assert!(dog.observe(0, Cycle::new(20), 5, true).is_some());
    }

    #[test]
    fn units_are_tracked_independently() {
        let mut dog = StallWatchdog::new(10, 2);
        for t in 0..=10u64 {
            let _ = dog.observe(0, Cycle::new(t), 5, true);
            assert_eq!(
                dog.observe(1, Cycle::new(t), t, true),
                None,
                "unit 1 progresses"
            );
        }
        assert!(dog.observe(0, Cycle::new(11), 5, true).is_none(), "rearmed");
    }

    #[test]
    fn an_idle_gap_resets_the_stall_window() {
        let mut dog = StallWatchdog::new(10, 1);
        for t in 0..9u64 {
            let _ = dog.observe(0, Cycle::new(t), 5, true);
        }
        let _ = dog.observe(0, Cycle::new(9), 5, false); // went idle
        assert_eq!(
            dog.observe(0, Cycle::new(10), 5, true),
            None,
            "timer restarts after the idle gap"
        );
    }

    #[test]
    #[should_panic(expected = "zero stall limit")]
    fn zero_limit_is_rejected() {
        let _ = StallWatchdog::new(0, 1);
    }

    #[test]
    fn next_deadline_tracks_the_earliest_armed_unit() {
        let mut dog = StallWatchdog::new(10, 3);
        assert_eq!(dog.next_deadline(), None, "nothing armed");
        let _ = dog.observe(0, Cycle::new(5), 1, true);
        let _ = dog.observe(1, Cycle::new(2), 9, true);
        assert_eq!(dog.next_deadline(), Some(Cycle::new(12)));
        // Progress on unit 1 pushes its deadline out.
        let _ = dog.observe(1, Cycle::new(8), 10, true);
        assert_eq!(dog.next_deadline(), Some(Cycle::new(15)));
        // Going idle disarms.
        let _ = dog.observe(0, Cycle::new(9), 1, false);
        let _ = dog.observe(1, Cycle::new(9), 10, false);
        assert_eq!(dog.next_deadline(), None);
    }
}
