use std::fmt;

/// Identifier of a processing node (processor + network interface pair).
///
/// The paper assumes 16 bits are enough for node identification ("allowing
/// 65536 different nodes"); we store a `u32` for convenience but the same
/// bound is honored by [`NodeId::MAX_NODES`].
///
/// # Examples
///
/// ```
/// use nifdy_sim::NodeId;
///
/// let n = NodeId::new(12);
/// assert_eq!(n.index(), 12);
/// assert_eq!(n.to_string(), "n12");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Maximum number of nodes representable by the 16-bit wire format the
    /// paper assumes for packet headers.
    pub const MAX_NODES: usize = 1 << 16;

    /// Creates a node identifier from its machine index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`NodeId::MAX_NODES`].
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(
            index < Self::MAX_NODES,
            "node index {index} exceeds the 16-bit wire format"
        );
        NodeId(index as u32)
    }

    /// Returns the machine index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Globally unique identifier for a packet, assigned at creation.
///
/// Used only for bookkeeping (tracking arenas, latency accounting, test
/// assertions); it is *not* part of the simulated wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(u64);

impl PacketId {
    /// Creates a packet identifier from a raw counter value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PacketId(raw)
    }

    /// Returns the raw counter value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_round_trip() {
        assert_eq!(NodeId::new(63).index(), 63);
    }

    #[test]
    #[should_panic(expected = "16-bit")]
    fn node_out_of_range_panics() {
        let _ = NodeId::new(NodeId::MAX_NODES);
    }

    #[test]
    fn packet_id_round_trip() {
        assert_eq!(PacketId::new(9).as_u64(), 9);
        assert_eq!(PacketId::new(9).to_string(), "pkt#9");
    }
}
