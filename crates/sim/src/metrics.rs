//! Measurement primitives used to produce the paper's tables and figures.
//!
//! The paper's bottom-line metric is *"the number of packets delivered within
//! a fixed number of cycles"* (Figures 2 and 3), plus latency statistics,
//! per-receiver congestion time series (Figure 5), and per-phase cycle counts
//! (Figures 6–9). [`Counter`], [`Stats`], [`Histogram`] and [`TimeSeries`]
//! cover those needs.

use std::fmt;

use crate::Cycle;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use nifdy_sim::metrics::Counter;
///
/// let mut delivered = Counter::new();
/// delivered.add(3);
/// delivered.incr();
/// assert_eq!(delivered.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Returns the current count.
    #[inline]
    pub const fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Running summary statistics (count / mean / min / max / variance) over a
/// stream of samples, computed online with Welford's algorithm.
///
/// # Examples
///
/// ```
/// use nifdy_sim::metrics::Stats;
///
/// let mut latency = Stats::new();
/// for v in [10.0, 20.0, 30.0] {
///     latency.record(v);
/// }
/// assert_eq!(latency.count(), 3);
/// assert_eq!(latency.mean(), 20.0);
/// assert_eq!(latency.min(), 10.0);
/// assert_eq!(latency.max(), 30.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Stats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Stats {
    /// Creates an empty statistics accumulator.
    pub fn new() -> Self {
        Stats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples, or `0.0` if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the samples, or `0.0` for fewer than two.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation of the samples.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `0.0` if none were recorded.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or `0.0` if none were recorded.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.0} max={:.0}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// A histogram with fixed-width buckets plus an overflow bucket.
///
/// # Examples
///
/// ```
/// use nifdy_sim::metrics::Histogram;
///
/// let mut h = Histogram::new(10.0, 4); // buckets [0,10), [10,20), [20,30), [30,40), overflow
/// h.record(5.0);
/// h.record(35.0);
/// h.record(1e9);
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(3), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive or `buckets` is zero.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            buckets: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one sample; negative samples land in bucket 0.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        let idx = (value.max(0.0) / self.width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of samples in bucket `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Number of buckets (excluding overflow).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of samples beyond the last bucket.
    pub const fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of samples recorded.
    pub const fn total(&self) -> u64 {
        self.total
    }
}

/// A periodically sampled time series, as used for the Figure 5 congestion
/// heat map (pending packets per receiver over time).
///
/// Call [`TimeSeries::sample_if_due`] every cycle with a closure producing
/// the current value; it stores one sample every `period` cycles.
///
/// # Examples
///
/// ```
/// use nifdy_sim::{Cycle, metrics::TimeSeries};
///
/// let mut ts = TimeSeries::new(100);
/// for c in 0..250u64 {
///     ts.sample_if_due(Cycle::new(c), || c as f64);
/// }
/// assert_eq!(ts.samples(), &[0.0, 100.0, 200.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    period: u64,
    next_due: u64,
    samples: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series sampled once every `period` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "sampling period must be positive");
        TimeSeries {
            period,
            next_due: 0,
            samples: Vec::new(),
        }
    }

    /// Stores `f()` if a sample is due at `now`; otherwise does nothing.
    pub fn sample_if_due<F: FnOnce() -> f64>(&mut self, now: Cycle, f: F) {
        if now.as_u64() >= self.next_due {
            self.samples.push(f());
            self.next_due = now.as_u64() + self.period;
        }
    }

    /// The recorded samples in time order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The sampling period, in cycles.
    pub const fn period(&self) -> u64 {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn stats_welford_matches_naive() {
        let data = [3.0, 7.0, 7.0, 19.0];
        let mut s = Stats::new();
        for &v in &data {
            s.record(v);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn stats_empty_is_zeroes() {
        let s = Stats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(2.0, 3);
        for v in [0.0, 1.9, 2.0, 5.9, 6.0, -3.0] {
            h.record(v);
        }
        assert_eq!(h.bucket_count(0), 3); // 0.0, 1.9, -3.0
        assert_eq!(h.bucket_count(1), 1); // 2.0
        assert_eq!(h.bucket_count(2), 1); // 5.9
        assert_eq!(h.overflow(), 1); // 6.0
        assert_eq!(h.total(), 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn histogram_rejects_zero_width() {
        let _ = Histogram::new(0.0, 3);
    }

    #[test]
    fn time_series_respects_period() {
        let mut ts = TimeSeries::new(10);
        for c in 0..35u64 {
            ts.sample_if_due(Cycle::new(c), || c as f64);
        }
        assert_eq!(ts.samples(), &[0.0, 10.0, 20.0, 30.0]);
        assert_eq!(ts.period(), 10);
    }

    #[test]
    fn time_series_tolerates_cycle_gaps() {
        let mut ts = TimeSeries::new(10);
        ts.sample_if_due(Cycle::new(0), || 1.0);
        ts.sample_if_due(Cycle::new(25), || 2.0); // due (past 10)
        ts.sample_if_due(Cycle::new(30), || 3.0); // not due until 35
        ts.sample_if_due(Cycle::new(35), || 4.0);
        assert_eq!(ts.samples(), &[1.0, 2.0, 4.0]);
    }
}
