//! Measurement primitives used to produce the paper's tables and figures.
//!
//! The paper's bottom-line metric is *"the number of packets delivered within
//! a fixed number of cycles"* (Figures 2 and 3), plus latency statistics,
//! per-receiver congestion time series (Figure 5), and per-phase cycle counts
//! (Figures 6–9). [`Counter`], [`Stats`], [`Histogram`] and [`TimeSeries`]
//! cover those needs.

use std::fmt;

use crate::Cycle;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use nifdy_sim::metrics::Counter;
///
/// let mut delivered = Counter::new();
/// delivered.add(3);
/// delivered.incr();
/// assert_eq!(delivered.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Returns the current count.
    #[inline]
    pub const fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Running summary statistics (count / mean / min / max / variance) over a
/// stream of samples, computed online with Welford's algorithm.
///
/// # Examples
///
/// ```
/// use nifdy_sim::metrics::Stats;
///
/// let mut latency = Stats::new();
/// for v in [10.0, 20.0, 30.0] {
///     latency.record(v);
/// }
/// assert_eq!(latency.count(), 3);
/// assert_eq!(latency.mean(), 20.0);
/// assert_eq!(latency.min(), 10.0);
/// assert_eq!(latency.max(), 30.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Stats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Stats {
    /// Creates an empty statistics accumulator.
    pub fn new() -> Self {
        Stats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples, or `0.0` if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the samples, or `0.0` for fewer than two.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation of the samples.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `0.0` if none were recorded.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or `0.0` if none were recorded.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.0} max={:.0}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// A histogram with fixed-width buckets plus an overflow bucket.
///
/// # Examples
///
/// ```
/// use nifdy_sim::metrics::Histogram;
///
/// let mut h = Histogram::new(10.0, 4); // buckets [0,10), [10,20), [20,30), [30,40), overflow
/// h.record(5.0);
/// h.record(35.0);
/// h.record(1e9);
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(3), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive or `buckets` is zero.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            buckets: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one sample; negative samples land in bucket 0.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        let idx = (value.max(0.0) / self.width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of samples in bucket `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Number of buckets (excluding overflow).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of samples beyond the last bucket.
    pub const fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of samples recorded.
    pub const fn total(&self) -> u64 {
        self.total
    }
}

/// A latency histogram with logarithmic buckets and sub-bucket resolution,
/// supporting quantile estimation (p50/p90/p99/p999) over cycle counts.
///
/// Values below 16 are counted exactly; larger values land in one of 16
/// sub-buckets per power of two, bounding the relative quantile error to
/// about 1/16 (6%) while keeping the memory footprint a few kilobytes
/// regardless of the value range. This is the measurement substrate for the
/// tail-latency columns of the experiment tables: recording is O(1) with no
/// allocation on the hot path once the bucket vector has grown.
///
/// # Examples
///
/// ```
/// use nifdy_sim::metrics::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.p50();
/// assert!((450..=550).contains(&p50), "p50 {p50}");
/// let p99 = h.p99();
/// assert!((930..=1000).contains(&p99), "p99 {p99}");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Bucket counts, grown on demand (index via [`LogHistogram::index_of`]).
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

/// Linear region: values `0..LINEAR` are counted exactly.
const LINEAR: u64 = 16;
/// log2(sub-buckets per octave).
const SUB_BITS: u32 = 4;

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Bucket index of `value`.
    fn index_of(value: u64) -> usize {
        if value < LINEAR {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let sub = ((value >> (msb - SUB_BITS)) & (LINEAR - 1)) as usize;
        ((msb - SUB_BITS + 1) as usize) * LINEAR as usize + sub
    }

    /// Lower bound of the value range covered by bucket `idx`.
    fn lower_bound(idx: usize) -> u64 {
        if idx < LINEAR as usize {
            return idx as u64;
        }
        let msb = (idx / LINEAR as usize) as u32 + SUB_BITS - 1;
        let sub = (idx % LINEAR as usize) as u64;
        (1u64 << msb) | (sub << (msb - SUB_BITS))
    }

    /// Midpoint of the value range covered by bucket `idx` (the quantile
    /// estimate returned for ranks landing in that bucket).
    fn midpoint(idx: usize) -> u64 {
        if idx < LINEAR as usize {
            return idx as u64;
        }
        let msb = (idx / LINEAR as usize) as u32 + SUB_BITS - 1;
        Self::lower_bound(idx) + (1u64 << (msb - SUB_BITS)) / 2
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::index_of(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.total == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.total += 1;
        self.sum += u128::from(value);
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.total
    }

    /// True when no samples have been recorded.
    pub const fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest sample, or 0 if empty.
    pub const fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub const fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean of the samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the bucket counts,
    /// clamped to the exact observed `[min, max]` range. Returns 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::midpoint(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Folds another histogram's samples into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.total == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        if self.total == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={} p90={} p99={} p999={} max={}",
            self.total,
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            self.max()
        )
    }
}

/// A periodically sampled time series, as used for the Figure 5 congestion
/// heat map (pending packets per receiver over time).
///
/// Call [`TimeSeries::sample_if_due`] every cycle with a closure producing
/// the current value; it stores one sample every `period` cycles.
///
/// # Examples
///
/// ```
/// use nifdy_sim::{Cycle, metrics::TimeSeries};
///
/// let mut ts = TimeSeries::new(100);
/// for c in 0..250u64 {
///     ts.sample_if_due(Cycle::new(c), || c as f64);
/// }
/// assert_eq!(ts.samples(), &[0.0, 100.0, 200.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    period: u64,
    next_due: u64,
    samples: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series sampled once every `period` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "sampling period must be positive");
        TimeSeries {
            period,
            next_due: 0,
            samples: Vec::new(),
        }
    }

    /// Stores `f()` if a sample is due at `now`; otherwise does nothing.
    ///
    /// Sample points stay aligned to the period grid (0, `period`,
    /// `2·period`, …) even when the caller skips cycles: after a gap the
    /// next due point is the first grid multiple after `now`, not
    /// `now + period`, so a single hiccup cannot skew every later sample.
    pub fn sample_if_due<F: FnOnce() -> f64>(&mut self, now: Cycle, f: F) {
        if now.as_u64() >= self.next_due {
            self.samples.push(f());
            self.next_due = (now.as_u64() / self.period + 1) * self.period;
        }
    }

    /// The recorded samples in time order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The sampling period, in cycles.
    pub const fn period(&self) -> u64 {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn stats_welford_matches_naive() {
        let data = [3.0, 7.0, 7.0, 19.0];
        let mut s = Stats::new();
        for &v in &data {
            s.record(v);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn stats_empty_is_zeroes() {
        let s = Stats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(2.0, 3);
        for v in [0.0, 1.9, 2.0, 5.9, 6.0, -3.0] {
            h.record(v);
        }
        assert_eq!(h.bucket_count(0), 3); // 0.0, 1.9, -3.0
        assert_eq!(h.bucket_count(1), 1); // 2.0
        assert_eq!(h.bucket_count(2), 1); // 5.9
        assert_eq!(h.overflow(), 1); // 6.0
        assert_eq!(h.total(), 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn histogram_rejects_zero_width() {
        let _ = Histogram::new(0.0, 3);
    }

    #[test]
    fn time_series_respects_period() {
        let mut ts = TimeSeries::new(10);
        for c in 0..35u64 {
            ts.sample_if_due(Cycle::new(c), || c as f64);
        }
        assert_eq!(ts.samples(), &[0.0, 10.0, 20.0, 30.0]);
        assert_eq!(ts.period(), 10);
    }

    #[test]
    fn time_series_tolerates_cycle_gaps() {
        let mut ts = TimeSeries::new(10);
        ts.sample_if_due(Cycle::new(0), || 1.0);
        ts.sample_if_due(Cycle::new(25), || 2.0); // due (past 10); next grid point is 30
        ts.sample_if_due(Cycle::new(30), || 3.0); // due: sampling stays on the 10-grid
        ts.sample_if_due(Cycle::new(35), || 4.0); // not due until 40
        ts.sample_if_due(Cycle::new(40), || 5.0);
        assert_eq!(ts.samples(), &[1.0, 2.0, 3.0, 5.0]);
    }

    #[test]
    fn log_histogram_quantiles_bound_relative_error() {
        let mut h = LogHistogram::new();
        for v in 0..10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900), (0.999, 9_990)] {
            let est = h.quantile(q);
            let err = est.abs_diff(exact) as f64 / exact as f64;
            assert!(err < 0.07, "q={q}: est {est} vs {exact} (err {err:.3})");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 9_999);
        assert!((h.mean() - 4_999.5).abs() < 1e-6);
    }

    #[test]
    fn log_histogram_small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 15] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.p50(), 2);
    }

    #[test]
    fn log_histogram_empty_is_zeroes() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn log_histogram_merge_matches_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            all.record(v * 3);
        }
        for v in 0..700u64 {
            b.record(v * 7 + 1);
            all.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn log_histogram_quantiles_clamp_to_observed_range() {
        let mut h = LogHistogram::new();
        h.record(1_000);
        assert_eq!(h.p50(), 1_000);
        assert_eq!(h.p999(), 1_000);
    }
}
