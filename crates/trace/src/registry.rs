//! Named telemetry: log-bucketed latency histograms plus cycle-sampled
//! occupancy gauges, exportable as one JSON document.
//!
//! The registry is the aggregate companion to the event log: events answer
//! *"what happened to this packet"*, the registry answers *"what do the
//! tails look like"*. Histograms reuse
//! [`nifdy_sim::metrics::LogHistogram`], so every percentile printed by the
//! harness comes from the same estimator the simulator tests validate.

use std::collections::BTreeMap;

use nifdy_sim::metrics::LogHistogram;
use nifdy_sim::Cycle;

use crate::json::Json;

/// A bounded, cycle-stamped gauge series (occupancy over time).
///
/// When the series fills its bound, every other retained point is discarded
/// and the sampling stride doubles, so arbitrarily long runs keep a
/// uniformly spaced, bounded-size series instead of growing without limit
/// or silently dropping the tail.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSeries {
    points: Vec<(u64, f64)>,
    bound: usize,
    /// Keep every `stride`-th offered sample.
    stride: u64,
    offered: u64,
}

impl GaugeSeries {
    /// Creates a series retaining at most `bound` points.
    ///
    /// # Panics
    ///
    /// Panics if `bound` < 2.
    pub fn new(bound: usize) -> Self {
        assert!(bound >= 2, "gauge bound must be at least 2");
        GaugeSeries {
            points: Vec::new(),
            bound,
            stride: 1,
            offered: 0,
        }
    }

    /// Offers one sample; it is retained if the current stride selects it.
    pub fn push(&mut self, at: Cycle, value: f64) {
        let keep = self.offered.is_multiple_of(self.stride);
        self.offered += 1;
        if !keep {
            return;
        }
        if self.points.len() == self.bound {
            // Decimate: keep even-indexed points, double the stride.
            let mut i = 0;
            self.points.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            self.stride *= 2;
            // The sample that triggered decimation is kept only if it still
            // falls on the doubled stride.
            if !(self.offered - 1).is_multiple_of(self.stride) {
                return;
            }
        }
        self.points.push((at.as_u64(), value));
    }

    /// The retained `(cycle, value)` points, in time order.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Merges another series into this one: points interleave in cycle
    /// order, then the combined series is decimated (every other point)
    /// until it fits the bound again. Deterministic — merging replicas in
    /// a fixed order always yields the same retained points.
    pub fn merge(&mut self, other: &GaugeSeries) {
        let mut combined: Vec<(u64, f64)> = self
            .points
            .iter()
            .chain(other.points.iter())
            .copied()
            .collect();
        combined.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        while combined.len() > self.bound {
            let mut i = 0;
            combined.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            self.stride *= 2;
        }
        self.offered += other.offered;
        self.points = combined;
    }

    /// Largest retained value, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }
}

/// One row of a percentile summary table.
#[derive(Debug, Clone, PartialEq)]
pub struct PercentileRow {
    /// Histogram name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// p50 estimate.
    pub p50: u64,
    /// p90 estimate.
    pub p90: u64,
    /// p99 estimate.
    pub p99: u64,
    /// p99.9 estimate.
    pub p999: u64,
    /// Exact maximum.
    pub max: u64,
}

/// Named histograms and gauges for one run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    hists: BTreeMap<String, LogHistogram>,
    gauges: BTreeMap<String, GaugeSeries>,
    gauge_bound: usize,
}

impl MetricsRegistry {
    /// Creates an empty registry (gauges bounded to 4096 points each).
    pub fn new() -> Self {
        MetricsRegistry {
            hists: BTreeMap::new(),
            gauges: BTreeMap::new(),
            gauge_bound: 4096,
        }
    }

    /// Records one sample into the named histogram, creating it on first
    /// use.
    pub fn record(&mut self, name: &str, value: u64) {
        self.hists.entry_or_default(name).record(value);
    }

    /// Merges an externally built histogram into the named slot.
    pub fn merge_histogram(&mut self, name: &str, hist: &LogHistogram) {
        self.hists.entry_or_default(name).merge(hist);
    }

    /// Samples the named gauge at `at`, creating the series on first use.
    pub fn gauge(&mut self, name: &str, at: Cycle, value: f64) {
        let bound = self.gauge_bound;
        self.gauges
            .entry(name.to_string())
            .or_insert_with(|| GaugeSeries::new(bound))
            .push(at, value);
    }

    /// Merges another registry into this one — the reassembly step after
    /// the parallel experiment executor gives every replica its own
    /// registry. Histograms with the same name pool their buckets; gauge
    /// series with the same name interleave in cycle order (re-bounded by
    /// decimation). Merging replicas in a fixed (canonical cell) order is
    /// deterministic regardless of which worker finished first.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, hist) in &other.hists {
            self.merge_histogram(name, hist);
        }
        for (name, series) in &other.gauges {
            let bound = self.gauge_bound;
            self.gauges
                .entry(name.clone())
                .or_insert_with(|| GaugeSeries::new(bound))
                .merge(series);
        }
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// The named gauge series, if any samples were taken.
    pub fn gauge_series(&self, name: &str) -> Option<&GaugeSeries> {
        self.gauges.get(name)
    }

    /// Histogram names in sorted order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.hists.keys().map(String::as_str)
    }

    /// One summary row per non-empty histogram, sorted by name.
    pub fn percentile_rows(&self) -> Vec<PercentileRow> {
        self.hists
            .iter()
            .filter(|(_, h)| !h.is_empty())
            .map(|(name, h)| PercentileRow {
                name: name.clone(),
                count: h.count(),
                p50: h.p50(),
                p90: h.p90(),
                p99: h.p99(),
                p999: h.p999(),
                max: h.max(),
            })
            .collect()
    }

    /// Exports the whole registry as one JSON document:
    ///
    /// ```json
    /// {
    ///   "histograms": {"<name>": {"count":…,"mean":…,"p50":…,…}},
    ///   "gauges": {"<name>": {"points": [[cycle, value], …]}}
    /// }
    /// ```
    pub fn to_json(&self) -> Json {
        let hists: BTreeMap<String, Json> = self
            .hists
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    Json::obj([
                        ("count", Json::u64(h.count())),
                        ("mean", Json::Num(h.mean())),
                        ("min", Json::u64(h.min())),
                        ("p50", Json::u64(h.p50())),
                        ("p90", Json::u64(h.p90())),
                        ("p99", Json::u64(h.p99())),
                        ("p999", Json::u64(h.p999())),
                        ("max", Json::u64(h.max())),
                    ]),
                )
            })
            .collect();
        let gauges: BTreeMap<String, Json> = self
            .gauges
            .iter()
            .map(|(name, g)| {
                let points = g
                    .points()
                    .iter()
                    .map(|&(c, v)| Json::Arr(vec![Json::u64(c), Json::Num(v)]))
                    .collect();
                (name.clone(), Json::obj([("points", Json::Arr(points))]))
            })
            .collect();
        Json::obj([
            ("histograms", Json::Obj(hists)),
            ("gauges", Json::Obj(gauges)),
        ])
    }
}

/// `BTreeMap::entry(..).or_default()` with a `&str` key, avoiding an
/// allocation when the slot already exists.
trait EntryOrDefault {
    fn entry_or_default(&mut self, name: &str) -> &mut LogHistogram;
}

impl EntryOrDefault for BTreeMap<String, LogHistogram> {
    fn entry_or_default(&mut self, name: &str) -> &mut LogHistogram {
        if !self.contains_key(name) {
            self.insert(name.to_string(), LogHistogram::new());
        }
        self.get_mut(name).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn histograms_accumulate_and_summarize() {
        let mut reg = MetricsRegistry::new();
        for v in 1..=100u64 {
            reg.record("latency.scalar", v);
        }
        let rows = reg.percentile_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "latency.scalar");
        assert_eq!(rows[0].count, 100);
        assert_eq!(rows[0].max, 100);
        assert!(
            rows[0].p50 >= 45 && rows[0].p50 <= 55,
            "p50 {}",
            rows[0].p50
        );
    }

    #[test]
    fn gauge_decimation_bounds_the_series() {
        let mut g = GaugeSeries::new(8);
        for c in 0..1000u64 {
            g.push(Cycle::new(c), c as f64);
        }
        assert!(g.points().len() <= 8, "len {}", g.points().len());
        // Still spans the run: first point at 0, last point late.
        assert_eq!(g.points()[0].0, 0);
        assert!(g.points().last().unwrap().0 >= 750);
        // Uniform stride after decimation.
        let strides: Vec<u64> = g.points().windows(2).map(|w| w[1].0 - w[0].0).collect();
        assert!(strides.windows(2).all(|w| w[0] == w[1]), "{strides:?}");
    }

    #[test]
    fn registry_json_round_trips() {
        let mut reg = MetricsRegistry::new();
        reg.record("latency", 10);
        reg.record("latency", 20);
        reg.gauge("opt", Cycle::new(0), 3.0);
        reg.gauge("opt", Cycle::new(100), 5.0);
        let text = reg.to_json().render();
        let doc = parse(&text).expect("round trip");
        let lat = doc.get("histograms").unwrap().get("latency").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(lat.get("max").unwrap().as_u64(), Some(20));
        let opt = doc.get("gauges").unwrap().get("opt").unwrap();
        assert_eq!(opt.get("points").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn registries_merge_histograms_and_gauges() {
        let mut a = MetricsRegistry::new();
        a.record("lat", 10);
        a.gauge("g", Cycle::new(0), 1.0);
        let mut b = MetricsRegistry::new();
        b.record("lat", 20);
        b.record("other", 5);
        b.gauge("g", Cycle::new(50), 2.0);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.histogram("lat").unwrap().count(), 2);
        assert_eq!(merged.histogram("other").unwrap().count(), 1);
        assert_eq!(
            merged.gauge_series("g").unwrap().points(),
            &[(0, 1.0), (50, 2.0)]
        );
        // Deterministic: repeating the merge from the same inputs gives
        // byte-identical JSON.
        let mut again = a.clone();
        again.merge(&b);
        assert_eq!(merged.to_json().render(), again.to_json().render());
    }

    #[test]
    fn merged_gauges_stay_bounded() {
        let mut a = GaugeSeries::new(8);
        let mut b = GaugeSeries::new(8);
        for c in 0..8u64 {
            a.push(Cycle::new(c * 2), c as f64);
            b.push(Cycle::new(c * 2 + 1), c as f64);
        }
        a.merge(&b);
        assert!(a.points().len() <= 8, "len {}", a.points().len());
        assert!(a.points().windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn merge_histogram_combines_samples() {
        let mut reg = MetricsRegistry::new();
        let mut h = LogHistogram::new();
        h.record(7);
        h.record(9);
        reg.merge_histogram("fabric", &h);
        reg.record("fabric", 11);
        assert_eq!(reg.histogram("fabric").unwrap().count(), 3);
    }
}
