//! A minimal JSON document model: a writer for the exporters and a strict
//! recursive-descent parser for round-trip validation in tests.
//!
//! The workspace is deliberately dependency-light (everything is vendored),
//! so instead of pulling in a serialization framework the exporters build
//! [`Json`] values and render them; the acceptance tests parse the rendered
//! output back and assert on its structure, which is exactly the guarantee a
//! serde round-trip would give.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use a `BTreeMap` so rendered key order is stable
/// across runs (byte-identical artifacts for identical simulations).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (rendered as an integer when it is one).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from any unsigned integer.
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Renders this value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8 by
                    // construction of `&str`).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let doc = Json::obj([
            ("name", Json::str("nifdy")),
            ("n", Json::u64(42)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::u64(1), Json::str("two"), Json::Num(3.5)]),
            ),
        ]);
        let text = doc.render();
        let back = parse(&text).expect("parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let doc = Json::str("a\"b\\c\nd\te\u{1}");
        let text = doc.render();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(parse(&text).expect("parse"), doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::u64(1000).render(), "1000");
        assert_eq!(Json::Num(2.5).render(), "2.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_numbers_in_all_forms() {
        assert_eq!(parse("-12").unwrap().as_f64(), Some(-12.0));
        assert_eq!(parse("3.25").unwrap().as_f64(), Some(3.25));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("250").unwrap().as_u64(), Some(250));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn object_keys_render_sorted() {
        let mut map = BTreeMap::new();
        map.insert("zeta".to_string(), Json::u64(1));
        map.insert("alpha".to_string(), Json::u64(2));
        assert_eq!(Json::Obj(map).render(), "{\"alpha\":2,\"zeta\":1}");
    }
}
