//! Ring-buffered flight recorder and the shareable [`TraceHandle`].
//!
//! Each simulation replica is single-threaded and cycle-synchronous, but
//! whole replicas are fanned out across worker threads by the parallel
//! experiment executor, so the recorder is shared as `Arc<Mutex<_>>`:
//! within one replica the lock is never contended (one thread), and the
//! handle — like every other piece of the replica — is `Send`, which is
//! what lets a fully assembled `Driver` be moved onto a worker thread.
//! Every instrumented component holds a cheap [`TraceHandle`] clone; with
//! the `trace` cargo feature disabled the handle is a zero-sized stub whose
//! [`is_enabled`](TraceHandle::is_enabled) is a constant `false`, so the
//! `trace_event!` macro's branch (and the event payload expression inside
//! it) is statically dead code.

use std::collections::VecDeque;

#[cfg(feature = "trace")]
use std::sync::{Arc, Mutex};

use nifdy_sim::{Cycle, NodeId};

use crate::event::{EventKind, TraceEvent};

/// Bounds and sampling for a recording session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity per node; the oldest events are evicted first. The
    /// flight-recorder dump on a watchdog trip shows at most this many
    /// events for the wedged node.
    pub capacity_per_node: usize,
    /// Record every `sample_every`-th *frequent* event per node (sends, OPT
    /// churn, deliveries, RTT samples). Rare events — drops, retransmits,
    /// dialog lifecycle, failures, watchdog fires — always record, so loss
    /// accounting stays exact under sampling. `1` records everything;
    /// `u64::MAX` suppresses all frequent events (the overhead-guard
    /// configuration).
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity_per_node: 4096,
            sample_every: 1,
        }
    }
}

impl TraceConfig {
    /// Default bounds: 4096 events per node, no sampling.
    pub fn new() -> Self {
        TraceConfig::default()
    }

    /// Sets the per-node ring capacity.
    pub fn with_capacity_per_node(mut self, cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        self.capacity_per_node = cap;
        self
    }

    /// Sets the sampling stride for frequent events.
    pub fn with_sample_every(mut self, stride: u64) -> Self {
        assert!(stride > 0, "sampling stride must be positive");
        self.sample_every = stride;
        self
    }
}

/// Per-node loss accounting for a recording session.
///
/// The rings are bounded, so a long run can silently shed history: the
/// oldest events are evicted once a node's ring fills, and frequent events
/// are skipped by the sampling stride. Both losses are counted **per node**
/// here so consumers — the exporters and the journey analyzer — can tell
/// exactly which nodes' histories are trustworthy instead of discovering a
/// gap as a stitching failure. A journey touching a node with evictions is
/// *incomplete*, never silently wrong.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceLoss {
    /// Events evicted by the ring bound, indexed by node.
    pub evicted: Vec<u64>,
    /// Frequent events skipped by the sampling stride, indexed by node.
    pub sampled_out: Vec<u64>,
}

impl TraceLoss {
    /// Total evicted events across all nodes.
    pub fn evicted_total(&self) -> u64 {
        self.evicted.iter().sum()
    }

    /// Total sampled-out frequent events across all nodes.
    pub fn sampled_out_total(&self) -> u64 {
        self.sampled_out.iter().sum()
    }

    /// True when every recorded event was retained: nothing evicted,
    /// nothing sampled out. Only then can event-counting invariants
    /// (journeys = deliveries) be checked exactly.
    pub fn is_lossless(&self) -> bool {
        self.evicted_total() == 0 && self.sampled_out_total() == 0
    }

    /// Nodes whose rings evicted at least one event — the nodes whose
    /// journeys must be flagged incomplete.
    pub fn lossy_nodes(&self) -> Vec<usize> {
        self.evicted
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Per-node ring state.
#[derive(Debug, Default)]
struct NodeRing {
    ring: VecDeque<TraceEvent>,
    /// Frequent events offered to this ring so far (sampling clock).
    frequent_seen: u64,
    /// Events evicted from the ring after it filled.
    evicted: u64,
    /// Frequent events skipped by the sampling stride.
    sampled_out: u64,
}

/// The event store: one bounded ring per node plus global ordering state.
#[derive(Debug)]
pub struct Recorder {
    cfg: TraceConfig,
    nodes: Vec<NodeRing>,
    next_seq: u64,
}

impl Recorder {
    /// Creates a recorder with the given bounds.
    pub fn new(cfg: TraceConfig) -> Self {
        Recorder {
            cfg,
            nodes: Vec::new(),
            next_seq: 0,
        }
    }

    fn ring_mut(&mut self, node: NodeId) -> &mut NodeRing {
        let idx = node.index();
        if idx >= self.nodes.len() {
            self.nodes.resize_with(idx + 1, NodeRing::default);
        }
        &mut self.nodes[idx]
    }

    /// Records one event, honoring sampling (frequent kinds only) and the
    /// per-node ring bound.
    pub fn record(&mut self, at: Cycle, node: NodeId, kind: EventKind) {
        let stride = self.cfg.sample_every;
        let cap = self.cfg.capacity_per_node;
        let seq = self.next_seq;
        let ring = self.ring_mut(node);
        if !kind.is_rare() {
            let tick = ring.frequent_seen;
            ring.frequent_seen += 1;
            if !tick.is_multiple_of(stride) {
                ring.sampled_out += 1;
                return;
            }
        }
        self.next_seq += 1;
        let ring = &mut self.nodes[node.index()];
        if ring.ring.len() == cap {
            ring.ring.pop_front();
            ring.evicted += 1;
        }
        ring.ring.push_back(TraceEvent {
            seq,
            at,
            node,
            kind,
        });
    }

    /// Total events currently held across all rings.
    pub fn len(&self) -> usize {
        self.nodes.iter().map(|n| n.ring.len()).sum()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by ring bounds, across all nodes.
    pub fn evicted(&self) -> u64 {
        self.nodes.iter().map(|n| n.evicted).sum()
    }

    /// Frequent events skipped by the sampling stride, across all nodes.
    pub fn sampled_out(&self) -> u64 {
        self.nodes.iter().map(|n| n.sampled_out).sum()
    }

    /// Per-node loss accounting (evictions and sampling skips).
    pub fn loss(&self) -> TraceLoss {
        TraceLoss {
            evicted: self.nodes.iter().map(|n| n.evicted).collect(),
            sampled_out: self.nodes.iter().map(|n| n.sampled_out).collect(),
        }
    }

    /// All retained events merged into one global time order (cycle, then
    /// record sequence as the same-cycle tiebreak).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self
            .nodes
            .iter()
            .flat_map(|n| n.ring.iter().copied())
            .collect();
        out.sort_by_key(|e| (e.at.as_u64(), e.seq));
        out
    }

    /// The last up-to-`n` events retained for `node`, oldest first — the
    /// flight-recorder dump for a wedged unit.
    pub fn last_events(&self, node: NodeId, n: usize) -> Vec<TraceEvent> {
        match self.nodes.get(node.index()) {
            None => Vec::new(),
            Some(ring) => {
                let skip = ring.ring.len().saturating_sub(n);
                ring.ring.iter().skip(skip).copied().collect()
            }
        }
    }
}

/// A cheap, cloneable handle to a shared [`Recorder`] — or to nothing.
///
/// Instrumented components store one of these and call it through the
/// [`trace_event!`](crate::trace_event) macro. Three states:
///
/// * feature `trace` **off**: zero-sized; recording is statically impossible,
/// * [`TraceHandle::off`]: present but disconnected (`is_enabled()` is a
///   dynamic `false`, one branch per call site),
/// * [`TraceHandle::recording`]: connected to a live recorder.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    #[cfg(feature = "trace")]
    inner: Option<Arc<Mutex<Recorder>>>,
}

/// Locks the shared recorder. A poisoned lock means a replica thread
/// panicked mid-record; the recorder state is still consistent (every
/// mutation is a single push/pop), so recover the guard rather than
/// cascading the panic into unrelated replicas.
#[cfg(feature = "trace")]
fn lock(rec: &Arc<Mutex<Recorder>>) -> std::sync::MutexGuard<'_, Recorder> {
    rec.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl TraceHandle {
    /// A disconnected handle: every record call is a cheap no-op.
    pub fn off() -> Self {
        TraceHandle::default()
    }

    /// A handle connected to a fresh recorder with the given bounds.
    /// Clones share the same recorder.
    #[cfg(feature = "trace")]
    pub fn recording(cfg: TraceConfig) -> Self {
        TraceHandle {
            inner: Some(Arc::new(Mutex::new(Recorder::new(cfg)))),
        }
    }

    /// With the `trace` feature off, recording handles cannot exist; this
    /// stub keeps caller code compiling unchanged.
    #[cfg(not(feature = "trace"))]
    pub fn recording(_cfg: TraceConfig) -> Self {
        TraceHandle::default()
    }

    /// Whether events will actually be stored. With the `trace` feature off
    /// this is a constant `false`, making `trace_event!` bodies dead code.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Records one event. Call through [`trace_event!`](crate::trace_event)
    /// so disabled handles skip evaluating the event payload entirely.
    #[inline]
    pub fn record(&self, at: Cycle, node: NodeId, kind: EventKind) {
        #[cfg(feature = "trace")]
        if let Some(rec) = &self.inner {
            lock(rec).record(at, node, kind);
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (at, node, kind);
        }
    }

    /// A merged, time-ordered snapshot of all retained events (empty when
    /// disconnected or the feature is off).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        #[cfg(feature = "trace")]
        {
            match &self.inner {
                Some(rec) => lock(rec).snapshot(),
                None => Vec::new(),
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            Vec::new()
        }
    }

    /// The last up-to-`n` events for `node`, oldest first (empty when
    /// disconnected).
    pub fn last_events(&self, node: NodeId, n: usize) -> Vec<TraceEvent> {
        #[cfg(feature = "trace")]
        {
            match &self.inner {
                Some(rec) => lock(rec).last_events(node, n),
                None => Vec::new(),
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (node, n);
            Vec::new()
        }
    }

    /// Events currently retained (0 when disconnected).
    pub fn recorded(&self) -> usize {
        #[cfg(feature = "trace")]
        {
            match &self.inner {
                Some(rec) => lock(rec).len(),
                None => 0,
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// Events evicted by ring bounds (0 when disconnected).
    pub fn evicted(&self) -> u64 {
        #[cfg(feature = "trace")]
        {
            match &self.inner {
                Some(rec) => lock(rec).evicted(),
                None => 0,
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// Per-node loss accounting (empty when disconnected or the feature is
    /// off — matching the empty snapshot those states produce).
    pub fn loss(&self) -> TraceLoss {
        #[cfg(feature = "trace")]
        {
            match &self.inner {
                Some(rec) => lock(rec).loss(),
                None => TraceLoss::default(),
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            TraceLoss::default()
        }
    }
}

#[cfg(test)]
mod send_tests {
    use super::*;

    #[test]
    fn handles_are_send_and_sync() {
        // The parallel experiment executor moves whole replicas (driver,
        // fabric, NICs, their trace handles) onto worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceHandle>();
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use crate::event::DropReason;

    fn send(dst: usize) -> EventKind {
        EventKind::ScalarSend {
            dst: NodeId::new(dst),
            size_words: 8,
        }
    }

    fn drop_ev() -> EventKind {
        EventKind::Drop {
            src: NodeId::new(0),
            dst: NodeId::new(1),
            ack: false,
            cause: DropReason::Uniform,
        }
    }

    #[test]
    fn off_handle_records_nothing() {
        let h = TraceHandle::off();
        assert!(!h.is_enabled());
        h.record(Cycle::new(1), NodeId::new(0), send(1));
        assert_eq!(h.recorded(), 0);
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn ring_bound_evicts_oldest() {
        let h = TraceHandle::recording(TraceConfig::new().with_capacity_per_node(3));
        for c in 0..5u64 {
            h.record(Cycle::new(c), NodeId::new(0), send(1));
        }
        let events = h.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].at, Cycle::new(2));
        assert_eq!(h.evicted(), 2);
    }

    #[test]
    fn sampling_keeps_rare_events_exact() {
        let h = TraceHandle::recording(TraceConfig::new().with_sample_every(10));
        for c in 0..100u64 {
            h.record(Cycle::new(c), NodeId::new(0), send(1));
            h.record(Cycle::new(c), NodeId::new(0), drop_ev());
        }
        let events = h.snapshot();
        let drops = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Drop { .. }))
            .count();
        let sends = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ScalarSend { .. }))
            .count();
        assert_eq!(drops, 100, "rare events must bypass sampling");
        assert_eq!(sends, 10, "frequent events honor the stride");
    }

    #[test]
    fn loss_accounting_is_per_node() {
        let h = TraceHandle::recording(
            TraceConfig::new()
                .with_capacity_per_node(2)
                .with_sample_every(2),
        );
        // Node 0: 6 frequent offers → ticks 0,2,4 recorded (3 sampled out),
        // ring cap 2 → 1 evicted. Node 2: a single recorded event.
        for c in 0..6u64 {
            h.record(Cycle::new(c), NodeId::new(0), send(1));
        }
        h.record(Cycle::new(9), NodeId::new(2), send(0));
        let loss = h.loss();
        assert_eq!(loss.evicted, vec![1, 0, 0]);
        assert_eq!(loss.sampled_out, vec![3, 0, 0]);
        assert_eq!(loss.evicted_total(), 1);
        assert_eq!(loss.sampled_out_total(), 3);
        assert!(!loss.is_lossless());
        assert_eq!(loss.lossy_nodes(), vec![0]);
        assert!(TraceHandle::off().loss().is_lossless());
    }

    #[test]
    fn snapshot_merges_nodes_in_time_order() {
        let h = TraceHandle::recording(TraceConfig::new());
        h.record(Cycle::new(5), NodeId::new(1), send(0));
        h.record(Cycle::new(2), NodeId::new(0), send(1));
        h.record(Cycle::new(5), NodeId::new(0), send(1));
        let events = h.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].at, Cycle::new(2));
        // Same-cycle tiebreak follows record order.
        assert_eq!(events[1].node, NodeId::new(1));
        assert_eq!(events[2].node, NodeId::new(0));
    }

    #[test]
    fn last_events_returns_the_tail() {
        let h = TraceHandle::recording(TraceConfig::new());
        for c in 0..10u64 {
            h.record(Cycle::new(c), NodeId::new(3), send(1));
        }
        let tail = h.last_events(NodeId::new(3), 4);
        assert_eq!(tail.len(), 4);
        assert_eq!(tail[0].at, Cycle::new(6));
        assert_eq!(tail[3].at, Cycle::new(9));
        assert!(h.last_events(NodeId::new(99), 4).is_empty());
    }

    #[test]
    fn clones_share_the_recorder() {
        let h = TraceHandle::recording(TraceConfig::new());
        let h2 = h.clone();
        h.record(Cycle::new(1), NodeId::new(0), send(1));
        h2.record(Cycle::new(2), NodeId::new(1), send(0));
        assert_eq!(h.recorded(), 2);
        assert_eq!(h2.recorded(), 2);
    }
}
