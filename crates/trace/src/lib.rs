//! Protocol flight recorder for the NIFDY reproduction: structured event
//! tracing, percentile telemetry, and Perfetto export.
//!
//! The paper's evaluation hinges on visibility into protocol state — OPT
//! occupancy, buffer-pool eligibility, bulk-window progress, per-receiver
//! congestion — that end-of-run counters cannot reconstruct. This crate is
//! the stack's measurement substrate:
//!
//! * [`TraceEvent`] / [`EventKind`] — a typed vocabulary for every protocol
//!   transition (scalar send/ack, OPT insert/clear, eligibility stall, bulk
//!   dialog request/grant/reject/close, window advance, retransmit with its
//!   RTO, drop with its cause, watchdog fire),
//! * [`TraceHandle`] / [`Recorder`] — a ring-buffered, per-node,
//!   sampled-and-bounded event log shared by every instrumented component;
//!   the rings double as the **flight recorder** the stall watchdog dumps
//!   when a node wedges,
//! * [`MetricsRegistry`] — named log-bucketed latency histograms
//!   (p50/p90/p99/p999) and cycle-sampled occupancy gauges,
//! * [`export`] — JSONL and Chrome trace-event JSON (open in
//!   [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`), with one
//!   track per NIC and an async span per bulk dialog,
//! * [`json`] — the dependency-free JSON writer/parser backing the
//!   exporters and their round-trip tests.
//!
//! # Zero cost when disabled
//!
//! Instrumented code records through the [`trace_event!`] macro:
//!
//! ```
//! use nifdy_sim::{Cycle, NodeId};
//! use nifdy_trace::{trace_event, EventKind, TraceConfig, TraceHandle};
//!
//! let trace = TraceHandle::recording(TraceConfig::new());
//! trace_event!(trace, Cycle::new(5), NodeId::new(0), EventKind::ScalarSend {
//!     dst: NodeId::new(1),
//!     size_words: 8,
//! });
//! # #[cfg(feature = "trace")]
//! assert_eq!(trace.snapshot().len(), 1);
//! ```
//!
//! The macro guards the record call behind
//! [`TraceHandle::is_enabled`]. With the crate's `trace` cargo feature
//! disabled that method is a constant `false` — the branch, the record
//! call, *and the event payload expression* are dead code the optimizer
//! removes, so production binaries built without the feature pay nothing.
//! With the feature on but the handle [`off`](TraceHandle::off), the cost
//! is one pointer-null check per call site. The feature lives here (not in
//! a `#[cfg]` inside the macro body) because `cfg` inside a
//! `macro_rules!` expansion would be evaluated against the *calling*
//! crate's features.
//!
//! # Bounded when enabled
//!
//! The recorder keeps one bounded ring per node
//! ([`TraceConfig::capacity_per_node`]) and samples frequent events by
//! stride ([`TraceConfig::sample_every`]); rare events — drops,
//! retransmits, dialog lifecycle, delivery failures, watchdog fires —
//! always record, so loss accounting stays exact under sampling and is
//! property-tested against `FabricStats`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod export;
pub mod json;
mod recorder;
mod registry;

pub use event::{DialogEnd, DropReason, EventKind, TraceEvent, WireFaultCause};
pub use recorder::{Recorder, TraceConfig, TraceHandle, TraceLoss};
pub use registry::{GaugeSeries, MetricsRegistry, PercentileRow};

/// Records one protocol event if the handle is live.
///
/// Expands to `if handle.is_enabled() { handle.record(at, node, kind) }`,
/// so the `kind` expression (which may compute occupancies or RTTs) is
/// never evaluated when tracing is off, and is removed entirely when the
/// `trace` feature is disabled.
#[macro_export]
macro_rules! trace_event {
    ($handle:expr, $at:expr, $node:expr, $kind:expr) => {
        if $handle.is_enabled() {
            $handle.record($at, $node, $kind);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use nifdy_sim::{Cycle, NodeId};

    #[test]
    fn macro_skips_payload_evaluation_when_off() {
        let trace = TraceHandle::off();
        let mut evaluated = false;
        trace_event!(trace, Cycle::ZERO, NodeId::new(0), {
            evaluated = true;
            EventKind::AckSend {
                dst: NodeId::new(1),
            }
        });
        assert!(!evaluated, "payload must not run when tracing is off");
        assert_eq!(trace.recorded(), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn macro_records_through_a_live_handle() {
        let trace = TraceHandle::recording(TraceConfig::new());
        trace_event!(
            trace,
            Cycle::new(3),
            NodeId::new(2),
            EventKind::AckSend {
                dst: NodeId::new(1),
            }
        );
        let events = trace.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at, Cycle::new(3));
        assert_eq!(events[0].node, NodeId::new(2));
    }
}
