//! The typed protocol event vocabulary.
//!
//! Every observable protocol transition in the NIFDY stack maps to one
//! [`EventKind`] variant. Events are deliberately small `Copy` values — a
//! cycle, a node, and a handful of scalar fields — so recording one is a
//! ring-buffer push, never an allocation.

use std::fmt;

use nifdy_sim::{Cycle, NodeId};

/// Why the fabric dropped a packet, mirrored from the fabric's own
/// accounting so the trace layer stays dependency-free.
///
/// `nifdy-net` converts its `DropCause` into this enum when emitting
/// [`EventKind::Drop`]; the per-cause event counts are property-tested to
/// match `FabricStats` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The legacy uniform edge-drop lottery.
    Uniform,
    /// Uniform data-lane (request) loss from the fault plane.
    Data,
    /// Uniform ack-lane (reply) loss from the fault plane.
    Ack,
    /// Gilbert–Elliott burst loss.
    Burst,
    /// A scheduled link-down window.
    LinkDown,
    /// Per-destination targeted loss.
    Targeted,
}

impl DropReason {
    /// Every cause, in a stable order (used by parity checks and exports).
    pub const ALL: [DropReason; 6] = [
        DropReason::Uniform,
        DropReason::Data,
        DropReason::Ack,
        DropReason::Burst,
        DropReason::LinkDown,
        DropReason::Targeted,
    ];

    /// Stable short label.
    pub const fn label(self) -> &'static str {
        match self {
            DropReason::Uniform => "uniform",
            DropReason::Data => "data",
            DropReason::Ack => "ack",
            DropReason::Burst => "burst",
            DropReason::LinkDown => "link_down",
            DropReason::Targeted => "targeted",
        }
    }
}

/// What the wire-layer chaos plane did to a frame, mirrored from
/// `nifdy-wire`'s own accounting so the trace layer stays dependency-free
/// (the same arrangement as [`DropReason`] for the fabric's fault plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireFaultCause {
    /// Uniform data-lane (request) frame drop.
    Drop,
    /// Uniform ack-lane (reply) frame drop.
    AckDrop,
    /// Gilbert–Elliott burst-loss drop.
    Burst,
    /// A scheduled partition window swallowed the frame.
    Partition,
    /// One frame byte was flipped in flight (the checksum catches it).
    Corrupt,
    /// The frame was delivered twice.
    Duplicate,
    /// The frame was held back a seeded number of cycles.
    Delay,
    /// The frame was deferred one tick so later sends overtake it.
    Reorder,
}

impl WireFaultCause {
    /// Every cause, in a stable order (used by counters and JSON reports).
    pub const ALL: [WireFaultCause; 8] = [
        WireFaultCause::Drop,
        WireFaultCause::AckDrop,
        WireFaultCause::Burst,
        WireFaultCause::Partition,
        WireFaultCause::Corrupt,
        WireFaultCause::Duplicate,
        WireFaultCause::Delay,
        WireFaultCause::Reorder,
    ];

    /// Stable short label.
    pub const fn label(self) -> &'static str {
        match self {
            WireFaultCause::Drop => "drop",
            WireFaultCause::AckDrop => "ack_drop",
            WireFaultCause::Burst => "burst",
            WireFaultCause::Partition => "partition",
            WireFaultCause::Corrupt => "corrupt",
            WireFaultCause::Duplicate => "duplicate",
            WireFaultCause::Delay => "delay",
            WireFaultCause::Reorder => "reorder",
        }
    }
}

/// How a bulk dialog ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DialogEnd {
    /// Normal exit: the sender flagged its last packet and the final ack
    /// arrived (sender side), or the exit packet streamed through
    /// (receiver side).
    Exit,
    /// The sender's retry budget tore the dialog down mid-window.
    TornDown,
    /// The receiver reclaimed a granted slot after its sender went silent.
    Reclaimed,
}

impl DialogEnd {
    /// Stable short label.
    pub const fn label(self) -> &'static str {
        match self {
            DialogEnd::Exit => "exit",
            DialogEnd::TornDown => "torn_down",
            DialogEnd::Reclaimed => "reclaimed",
        }
    }
}

/// One protocol transition. The `node` on the enclosing [`TraceEvent`] is
/// the unit that observed the transition (sender-side events carry the
/// sender, receiver-side events the receiver, fabric events the receiving
/// edge).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A scalar data packet left the pool for the fabric.
    ScalarSend {
        /// Destination node.
        dst: NodeId,
        /// Packet length in words.
        size_words: u16,
    },
    /// A bulk-mode data packet left the pool for the fabric.
    BulkSend {
        /// Destination node (the dialog peer).
        dst: NodeId,
        /// Wire dialog id.
        dialog: u8,
        /// Wire sequence number.
        seq: u8,
        /// This packet carries the bulk-exit flag.
        exit: bool,
    },
    /// A standalone acknowledgment was injected on the reply lane.
    AckSend {
        /// Node being acknowledged.
        dst: NodeId,
    },
    /// A scalar packet became outstanding (OPT entry created).
    OptInsert {
        /// Destination of the outstanding packet.
        dst: NodeId,
        /// OPT occupancy after the insert.
        occupancy: u32,
    },
    /// A scalar ack cleared an OPT entry.
    OptClear {
        /// Destination whose entry cleared.
        dst: NodeId,
        /// OPT occupancy after the clear.
        occupancy: u32,
    },
    /// The unit had pool packets and a free injection slot but nothing was
    /// eligible (every destination blocked on the OPT, window, or FIFO
    /// order) — the protocol's own admission control stalling the sender.
    EligStall {
        /// Pool occupancy at the stall.
        pool: u32,
        /// OPT occupancy at the stall.
        opt: u32,
    },
    /// A scalar packet carried a bulk-dialog request bit.
    BulkRequest {
        /// Requested peer.
        dst: NodeId,
    },
    /// Sender side: a grant arrived and the outgoing dialog opened.
    DialogOpen {
        /// Granting receiver.
        peer: NodeId,
        /// Granted dialog slot.
        dialog: u8,
        /// Granted window size `W`.
        window: u8,
    },
    /// Receiver side: a dialog slot was granted to `peer`.
    DialogGrant {
        /// Requesting sender.
        peer: NodeId,
        /// Slot assigned.
        dialog: u8,
    },
    /// Receiver side: a bulk request was rejected (all `D` slots busy).
    DialogReject {
        /// Rejected sender.
        peer: NodeId,
    },
    /// Sender side: a cumulative bulk ack advanced the window.
    WindowAdvance {
        /// Dialog peer.
        peer: NodeId,
        /// Wire dialog id.
        dialog: u8,
        /// Absolute packets acknowledged after the advance.
        acked: u64,
        /// Packets still unacknowledged after the advance.
        outstanding: u64,
    },
    /// A bulk dialog closed.
    DialogClose {
        /// Dialog peer.
        peer: NodeId,
        /// Wire dialog id.
        dialog: u8,
        /// How it ended.
        end: DialogEnd,
    },
    /// A retransmission timer fired and the copy was staged.
    Retransmit {
        /// Destination being retried.
        dst: NodeId,
        /// The RTO value (cycles) armed for the *next* wait.
        rto: u64,
        /// Retransmissions of this packet so far (including this one).
        retries: u32,
        /// The copy belongs to a bulk dialog.
        bulk: bool,
        /// Wire sequence number of the retried bulk copy (`seq mod 256`);
        /// zero for scalar retransmissions, which need no sequence — the
        /// OPT admits at most one outstanding scalar per destination.
        seq: u8,
    },
    /// An RTT sample fed the per-destination estimator (adaptive RTO).
    RttSample {
        /// Destination measured.
        dst: NodeId,
        /// The raw round-trip sample, cycles.
        rtt: u64,
        /// Smoothed RTT after the sample.
        srtt: u64,
        /// Suggested RTO after the sample.
        rto: u64,
    },
    /// A transfer was abandoned after exhausting its retry budget.
    DeliveryFail {
        /// Unreachable destination.
        dst: NodeId,
        /// Retries attempted before giving up.
        retries: u32,
    },
    /// The fabric dropped a packet at the receiving edge.
    Drop {
        /// Sending node.
        src: NodeId,
        /// Destination node (the edge that dropped).
        dst: NodeId,
        /// The packet travelled on the reply (ack) lane.
        ack: bool,
        /// Which loss model fired.
        cause: DropReason,
    },
    /// The fabric completed delivery of a packet to a node's ready queue.
    Deliver {
        /// Sending node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// The packet travelled on the reply (ack) lane.
        ack: bool,
        /// Injection-to-delivery latency, cycles.
        latency: u64,
    },
    /// Receiver side: a scalar data packet was accepted into the arrivals
    /// FIFO. Emitted by the protocol unit itself — identically over the
    /// simulated fabric and the byte wire — so it is the
    /// carrier-independent delivery point journey stitching keys on.
    ScalarAccept {
        /// Sending node.
        src: NodeId,
    },
    /// Receiver side: an in-order bulk packet streamed from its dialog's
    /// reorder buffer into the arrivals FIFO (the bulk delivery point,
    /// carrier-independent like [`EventKind::ScalarAccept`]).
    BulkAccept {
        /// Sending node (the dialog peer).
        src: NodeId,
        /// Wire dialog id.
        dialog: u8,
        /// Wire sequence number of the accepted packet.
        seq: u8,
        /// The packet carried the bulk-exit flag.
        exit: bool,
    },
    /// A transport (loopback, UDP) put an encoded frame on the wire.
    FrameSend {
        /// Destination node of the frame.
        dst: NodeId,
        /// The frame travelled on the reply (ack) lane.
        ack: bool,
        /// Encoded frame length in bytes.
        bytes: u32,
    },
    /// A transport received and decoded a frame.
    FrameRecv {
        /// Source node the decoder attributed the frame to (for bulk
        /// frames this is the dialog peer, re-substituted per §3).
        src: NodeId,
        /// The frame travelled on the reply (ack) lane.
        ack: bool,
        /// Encoded frame length in bytes.
        bytes: u32,
    },
    /// A transport received bytes that failed to decode (corruption, a
    /// foreign datagram, or a truncated read) and discarded them.
    FrameReject {
        /// Length of the rejected byte string.
        bytes: u32,
    },
    /// A stall watchdog tripped for a unit.
    WatchdogFire {
        /// The wedged unit (node index).
        unit: u32,
        /// Cycle of the last observed progress.
        since: Cycle,
        /// The frozen progress fingerprint.
        fingerprint: u64,
    },
    /// The wire chaos plane injected a fault into a frame.
    WireFault {
        /// Which fault model fired.
        cause: WireFaultCause,
        /// Length of the affected frame in bytes.
        bytes: u32,
    },
    /// A liveness heartbeat was sent to (or received from) a peer.
    Heartbeat {
        /// The peer the heartbeat names.
        peer: NodeId,
        /// The announcing endpoint's incarnation epoch.
        epoch: u32,
        /// `true` when this node sent the heartbeat, `false` on receive.
        sent: bool,
    },
    /// A supervised endpoint declared a peer dead after heartbeat silence.
    PeerDown {
        /// The silent peer.
        peer: NodeId,
        /// Cycles since the peer was last heard from.
        silent_for: u64,
    },
    /// A peer's heartbeat epoch jumped: it crashed and restarted, and its
    /// dialog state toward this node is gone.
    PeerRestart {
        /// The restarted peer.
        peer: NodeId,
        /// The peer's new incarnation epoch.
        epoch: u32,
    },
    /// A supervisor restarted its endpoint after a crash, with backoff.
    EndpointRestart {
        /// The new incarnation's epoch.
        epoch: u32,
        /// Backoff waited before this restart, in cycles.
        backoff: u64,
    },
}

impl EventKind {
    /// Number of `EventKind` variants. Kept next to the enum so a new
    /// variant cannot land without updating it; `nifdy-lint` (rule R3) and
    /// the exporter-coverage fixture both cross-check it against the enum.
    pub const VARIANT_COUNT: usize = 28;

    /// Stable event name (JSONL `ev` field and Perfetto slice name).
    pub const fn name(&self) -> &'static str {
        match self {
            EventKind::ScalarSend { .. } => "scalar_send",
            EventKind::BulkSend { .. } => "bulk_send",
            EventKind::AckSend { .. } => "ack_send",
            EventKind::OptInsert { .. } => "opt_insert",
            EventKind::OptClear { .. } => "opt_clear",
            EventKind::EligStall { .. } => "elig_stall",
            EventKind::BulkRequest { .. } => "bulk_request",
            EventKind::DialogOpen { .. } => "dialog_open",
            EventKind::DialogGrant { .. } => "dialog_grant",
            EventKind::DialogReject { .. } => "dialog_reject",
            EventKind::WindowAdvance { .. } => "window_advance",
            EventKind::DialogClose { .. } => "dialog_close",
            EventKind::Retransmit { .. } => "retransmit",
            EventKind::RttSample { .. } => "rtt_sample",
            EventKind::DeliveryFail { .. } => "delivery_fail",
            EventKind::Drop { .. } => "drop",
            EventKind::Deliver { .. } => "deliver",
            EventKind::ScalarAccept { .. } => "scalar_accept",
            EventKind::BulkAccept { .. } => "bulk_accept",
            EventKind::FrameSend { .. } => "frame_send",
            EventKind::FrameRecv { .. } => "frame_recv",
            EventKind::FrameReject { .. } => "frame_reject",
            EventKind::WatchdogFire { .. } => "watchdog_fire",
            EventKind::WireFault { .. } => "wire_fault",
            EventKind::Heartbeat { .. } => "heartbeat",
            EventKind::PeerDown { .. } => "peer_down",
            EventKind::PeerRestart { .. } => "peer_restart",
            EventKind::EndpointRestart { .. } => "endpoint_restart",
        }
    }

    /// Rare events bypass sampling: they are cheap in aggregate and exactly
    /// the ones post-mortems need (drops, failures, dialog lifecycle,
    /// retransmissions, watchdog trips). Frequent per-packet events
    /// (sends, OPT churn, deliveries) honor the configured sampling stride.
    pub const fn is_rare(&self) -> bool {
        matches!(
            self,
            EventKind::BulkRequest { .. }
                | EventKind::DialogOpen { .. }
                | EventKind::DialogGrant { .. }
                | EventKind::DialogReject { .. }
                | EventKind::DialogClose { .. }
                | EventKind::Retransmit { .. }
                | EventKind::DeliveryFail { .. }
                | EventKind::Drop { .. }
                | EventKind::FrameReject { .. }
                | EventKind::WatchdogFire { .. }
                | EventKind::WireFault { .. }
                | EventKind::PeerDown { .. }
                | EventKind::PeerRestart { .. }
                | EventKind::EndpointRestart { .. }
        )
    }
}

/// One recorded event: when, where, what.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Global record sequence number (stable tiebreak for same-cycle events).
    pub seq: u64,
    /// Simulation cycle the event occurred at.
    pub at: Cycle,
    /// Unit that observed the event.
    pub node: NodeId,
    /// The transition.
    pub kind: EventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} n{:03}] {:?}", self.at, self.node.index(), self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique() {
        let kinds = [
            EventKind::ScalarSend {
                dst: NodeId::new(1),
                size_words: 8,
            },
            EventKind::Drop {
                src: NodeId::new(0),
                dst: NodeId::new(1),
                ack: false,
                cause: DropReason::Burst,
            },
            EventKind::WatchdogFire {
                unit: 3,
                since: Cycle::ZERO,
                fingerprint: 0,
            },
        ];
        let names: Vec<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["scalar_send", "drop", "watchdog_fire"]);
    }

    #[test]
    fn rarity_covers_the_postmortem_set() {
        assert!(EventKind::Drop {
            src: NodeId::new(0),
            dst: NodeId::new(1),
            ack: true,
            cause: DropReason::Ack,
        }
        .is_rare());
        assert!(!EventKind::ScalarSend {
            dst: NodeId::new(1),
            size_words: 8
        }
        .is_rare());
    }

    #[test]
    fn drop_reason_labels_are_distinct() {
        let mut labels: Vec<_> = DropReason::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), DropReason::ALL.len());
    }
}
