//! Exporters: one event per line (JSONL) for ad-hoc tooling, and Chrome
//! trace-event JSON loadable in Perfetto / `chrome://tracing`.
//!
//! The Chrome export maps the protocol onto the trace-event model:
//!
//! * one **track per NIC** (`ph:"M"` `thread_name` metadata, `pid` 1,
//!   `tid` = node index),
//! * **instant events** (`ph:"i"`) for sends, drops (with cause),
//!   retransmits, stalls and watchdog fires,
//! * **async spans** (`ph:"b"`/`ph:"e"`, category `bulk`) spanning each
//!   bulk dialog from open/grant to close, so dialog lifetimes render as
//!   bars on Perfetto's async tracks,
//! * **counter events** (`ph:"C"`) for OPT occupancy and window
//!   outstanding counts.
//!
//! Timestamps are microseconds in the trace-event model; the export uses
//! the 1-cycle = 1 µs convention so cycle arithmetic survives unchanged.

use std::collections::BTreeMap;

use crate::event::{EventKind, TraceEvent};
use crate::json::Json;
use crate::recorder::TraceLoss;

/// Merges per-replica event snapshots into one deterministic order.
///
/// The parallel experiment executor gives every replica its own recorder;
/// after the fan-out completes, their snapshots are combined here. Events
/// sort by `(cycle, replica index, sequence)` — replica index breaks
/// same-cycle ties between independent replicas, so the merged stream is a
/// pure function of the snapshots and never depends on which worker thread
/// finished first.
///
/// # Examples
///
/// ```
/// use nifdy_trace::export::merge_snapshots;
///
/// let merged = merge_snapshots(vec![Vec::new(), Vec::new()]);
/// assert!(merged.is_empty());
/// ```
pub fn merge_snapshots(snapshots: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut tagged: Vec<(usize, TraceEvent)> = snapshots
        .into_iter()
        .enumerate()
        .flat_map(|(replica, events)| events.into_iter().map(move |e| (replica, e)))
        .collect();
    tagged.sort_by_key(|(replica, e)| (e.at.as_u64(), *replica, e.seq));
    tagged.into_iter().map(|(_, e)| e).collect()
}

/// Renders events as JSON Lines: one compact object per event, in the
/// order given. Schema per line:
/// `{"seq":…,"cycle":…,"node":…,"ev":"<name>", …kind-specific fields…}`.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_json(ev).render());
        out.push('\n');
    }
    out
}

/// Renders events as JSON Lines followed by one **loss-accounting
/// trailer** line, schema
/// `{"ev":"trace_loss","evicted":[…],"evicted_total":…,"sampled_out":[…],"sampled_out_total":…}`
/// (per-node arrays indexed by node). The trailer is always present — a
/// zero record is the proof the stream is complete, absence would be
/// ambiguous — and uses an `ev` name no [`EventKind`] variant can collide
/// with.
pub fn to_jsonl_with_loss(events: &[TraceEvent], loss: &TraceLoss) -> String {
    let mut out = to_jsonl(events);
    out.push_str(&loss_json(loss).render());
    out.push('\n');
    out
}

/// The loss-accounting record shared by both exporters.
fn loss_json(loss: &TraceLoss) -> Json {
    Json::obj([
        ("ev", Json::str("trace_loss")),
        (
            "evicted",
            Json::Arr(loss.evicted.iter().map(|&n| Json::u64(n)).collect()),
        ),
        ("evicted_total", Json::u64(loss.evicted_total())),
        (
            "sampled_out",
            Json::Arr(loss.sampled_out.iter().map(|&n| Json::u64(n)).collect()),
        ),
        ("sampled_out_total", Json::u64(loss.sampled_out_total())),
    ])
}

/// One JSONL record.
fn event_json(ev: &TraceEvent) -> Json {
    let mut map = BTreeMap::new();
    map.insert("seq".to_string(), Json::u64(ev.seq));
    map.insert("cycle".to_string(), Json::u64(ev.at.as_u64()));
    map.insert("node".to_string(), Json::u64(ev.node.index() as u64));
    map.insert("ev".to_string(), Json::str(ev.kind.name()));
    if let Json::Obj(fields) = kind_args(&ev.kind) {
        map.extend(fields);
    }
    Json::Obj(map)
}

/// Kind-specific fields, shared between the JSONL schema and the Chrome
/// export's `args` object.
fn kind_args(kind: &EventKind) -> Json {
    match *kind {
        EventKind::ScalarSend { dst, size_words } => Json::obj([
            ("dst", Json::u64(dst.index() as u64)),
            ("size_words", Json::u64(size_words as u64)),
        ]),
        EventKind::BulkSend {
            dst,
            dialog,
            seq,
            exit,
        } => Json::obj([
            ("dst", Json::u64(dst.index() as u64)),
            ("dialog", Json::u64(dialog as u64)),
            ("wire_seq", Json::u64(seq as u64)),
            ("exit", Json::Bool(exit)),
        ]),
        EventKind::AckSend { dst } => Json::obj([("dst", Json::u64(dst.index() as u64))]),
        EventKind::OptInsert { dst, occupancy } => Json::obj([
            ("dst", Json::u64(dst.index() as u64)),
            ("occupancy", Json::u64(occupancy as u64)),
        ]),
        EventKind::OptClear { dst, occupancy } => Json::obj([
            ("dst", Json::u64(dst.index() as u64)),
            ("occupancy", Json::u64(occupancy as u64)),
        ]),
        EventKind::EligStall { pool, opt } => Json::obj([
            ("pool", Json::u64(pool as u64)),
            ("opt", Json::u64(opt as u64)),
        ]),
        EventKind::BulkRequest { dst } => Json::obj([("dst", Json::u64(dst.index() as u64))]),
        EventKind::DialogOpen {
            peer,
            dialog,
            window,
        } => Json::obj([
            ("peer", Json::u64(peer.index() as u64)),
            ("dialog", Json::u64(dialog as u64)),
            ("window", Json::u64(window as u64)),
        ]),
        EventKind::DialogGrant { peer, dialog } => Json::obj([
            ("peer", Json::u64(peer.index() as u64)),
            ("dialog", Json::u64(dialog as u64)),
        ]),
        EventKind::DialogReject { peer } => Json::obj([("peer", Json::u64(peer.index() as u64))]),
        EventKind::WindowAdvance {
            peer,
            dialog,
            acked,
            outstanding,
        } => Json::obj([
            ("peer", Json::u64(peer.index() as u64)),
            ("dialog", Json::u64(dialog as u64)),
            ("acked", Json::u64(acked)),
            ("outstanding", Json::u64(outstanding)),
        ]),
        EventKind::DialogClose { peer, dialog, end } => Json::obj([
            ("peer", Json::u64(peer.index() as u64)),
            ("dialog", Json::u64(dialog as u64)),
            ("end", Json::str(end.label())),
        ]),
        EventKind::Retransmit {
            dst,
            rto,
            retries,
            bulk,
            seq,
        } => Json::obj([
            ("dst", Json::u64(dst.index() as u64)),
            ("rto", Json::u64(rto)),
            ("retries", Json::u64(retries as u64)),
            ("bulk", Json::Bool(bulk)),
            ("wire_seq", Json::u64(seq as u64)),
        ]),
        EventKind::RttSample {
            dst,
            rtt,
            srtt,
            rto,
        } => Json::obj([
            ("dst", Json::u64(dst.index() as u64)),
            ("rtt", Json::u64(rtt)),
            ("srtt", Json::u64(srtt)),
            ("rto", Json::u64(rto)),
        ]),
        EventKind::DeliveryFail { dst, retries } => Json::obj([
            ("dst", Json::u64(dst.index() as u64)),
            ("retries", Json::u64(retries as u64)),
        ]),
        EventKind::Drop {
            src,
            dst,
            ack,
            cause,
        } => Json::obj([
            ("src", Json::u64(src.index() as u64)),
            ("dst", Json::u64(dst.index() as u64)),
            ("ack", Json::Bool(ack)),
            ("cause", Json::str(cause.label())),
        ]),
        EventKind::Deliver {
            src,
            dst,
            ack,
            latency,
        } => Json::obj([
            ("src", Json::u64(src.index() as u64)),
            ("dst", Json::u64(dst.index() as u64)),
            ("ack", Json::Bool(ack)),
            ("latency", Json::u64(latency)),
        ]),
        EventKind::ScalarAccept { src } => Json::obj([("src", Json::u64(src.index() as u64))]),
        EventKind::BulkAccept {
            src,
            dialog,
            seq,
            exit,
        } => Json::obj([
            ("src", Json::u64(src.index() as u64)),
            ("dialog", Json::u64(dialog as u64)),
            ("wire_seq", Json::u64(seq as u64)),
            ("exit", Json::Bool(exit)),
        ]),
        EventKind::FrameSend { dst, ack, bytes } => Json::obj([
            ("dst", Json::u64(dst.index() as u64)),
            ("ack", Json::Bool(ack)),
            ("bytes", Json::u64(bytes as u64)),
        ]),
        EventKind::FrameRecv { src, ack, bytes } => Json::obj([
            ("src", Json::u64(src.index() as u64)),
            ("ack", Json::Bool(ack)),
            ("bytes", Json::u64(bytes as u64)),
        ]),
        EventKind::FrameReject { bytes } => Json::obj([("bytes", Json::u64(bytes as u64))]),
        EventKind::WatchdogFire {
            unit,
            since,
            fingerprint,
        } => Json::obj([
            ("unit", Json::u64(unit as u64)),
            ("since", Json::u64(since.as_u64())),
            ("fingerprint", Json::u64(fingerprint)),
        ]),
        EventKind::WireFault { cause, bytes } => Json::obj([
            ("cause", Json::str(cause.label())),
            ("bytes", Json::u64(bytes as u64)),
        ]),
        EventKind::Heartbeat { peer, epoch, sent } => Json::obj([
            ("peer", Json::u64(peer.index() as u64)),
            ("epoch", Json::u64(epoch as u64)),
            ("sent", Json::Bool(sent)),
        ]),
        EventKind::PeerDown { peer, silent_for } => Json::obj([
            ("peer", Json::u64(peer.index() as u64)),
            ("silent_for", Json::u64(silent_for)),
        ]),
        EventKind::PeerRestart { peer, epoch } => Json::obj([
            ("peer", Json::u64(peer.index() as u64)),
            ("epoch", Json::u64(epoch as u64)),
        ]),
        EventKind::EndpointRestart { epoch, backoff } => Json::obj([
            ("epoch", Json::u64(epoch as u64)),
            ("backoff", Json::u64(backoff)),
        ]),
    }
}

/// Shared fields for one Chrome trace event.
fn chrome_event(
    name: &str,
    ph: &str,
    ts: u64,
    tid: u64,
    extra: impl IntoIterator<Item = (&'static str, Json)>,
) -> Json {
    let mut map = BTreeMap::new();
    map.insert("name".to_string(), Json::str(name));
    map.insert("ph".to_string(), Json::str(ph));
    map.insert("ts".to_string(), Json::u64(ts));
    map.insert("pid".to_string(), Json::u64(1));
    map.insert("tid".to_string(), Json::u64(tid));
    for (k, v) in extra {
        map.insert(k.to_string(), v);
    }
    Json::Obj(map)
}

/// A stable async-span id for a bulk dialog: receiver node and wire dialog
/// slot identify one live dialog at any instant; an open counter
/// disambiguates reuse of the same slot over time.
fn dialog_span_id(receiver: usize, dialog: u8, generation: u64) -> String {
    format!("d{receiver}.{dialog}.g{generation}")
}

/// Converts a time-ordered event snapshot into a Chrome trace-event JSON
/// document (the `{"traceEvents": […]}` object form).
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out: Vec<Json> = Vec::new();

    // One named track per NIC that appears in the trace.
    let mut nodes: Vec<usize> = events.iter().map(|e| e.node.index()).collect();
    for e in events {
        // Dialog spans are emitted on the *receiver's* track; make sure
        // peers referenced only as dialog endpoints get a track too.
        if let EventKind::DialogOpen { peer, .. } = e.kind {
            nodes.push(peer.index());
        }
    }
    nodes.sort_unstable();
    nodes.dedup();
    for &n in &nodes {
        out.push(chrome_event(
            "thread_name",
            "M",
            0,
            n as u64,
            [("args", Json::obj([("name", Json::str(format!("nic {n}")))]))],
        ));
    }

    // Async bulk-dialog spans: keyed by (receiver, slot); a generation
    // counter keeps reused slots distinct. Sender-side DialogOpen and
    // receiver-side DialogGrant both map to the same span begin; whichever
    // arrives first in the merged order opens it.
    let mut generations: BTreeMap<(usize, u8), u64> = BTreeMap::new();
    let mut open: BTreeMap<(usize, u8), String> = BTreeMap::new();

    for ev in events {
        let ts = ev.at.as_u64();
        let tid = ev.node.index() as u64;
        let name = ev.kind.name();
        match ev.kind {
            EventKind::DialogOpen { peer, dialog, .. }
            | EventKind::DialogGrant { peer, dialog } => {
                // Normalize to the receiver's identity: for DialogOpen the
                // observer is the sender and `peer` the receiver; for
                // DialogGrant the observer is the receiver.
                let receiver = if matches!(ev.kind, EventKind::DialogOpen { .. }) {
                    peer.index()
                } else {
                    ev.node.index()
                };
                let key = (receiver, dialog);
                if let std::collections::btree_map::Entry::Vacant(slot) = open.entry(key) {
                    let generation = generations.entry(key).or_insert(0);
                    *generation += 1;
                    let id = dialog_span_id(receiver, dialog, *generation);
                    out.push(chrome_event(
                        "bulk_dialog",
                        "b",
                        ts,
                        receiver as u64,
                        [
                            ("cat", Json::str("bulk")),
                            ("id", Json::str(id.clone())),
                            ("args", kind_args(&ev.kind)),
                        ],
                    ));
                    slot.insert(id);
                }
            }
            EventKind::DialogClose { peer, dialog, .. } => {
                // Close events come from both ends; the receiver is
                // whichever endpoint owns the granted slot. Try the
                // observer first (receiver-side reclaim), then the peer
                // (sender-side exit/teardown).
                let key = [(ev.node.index(), dialog), (peer.index(), dialog)]
                    .into_iter()
                    .find(|k| open.contains_key(k));
                if let Some(key) = key {
                    let id = open.remove(&key).expect("checked above");
                    out.push(chrome_event(
                        "bulk_dialog",
                        "e",
                        ts,
                        key.0 as u64,
                        [
                            ("cat", Json::str("bulk")),
                            ("id", Json::str(id)),
                            ("args", kind_args(&ev.kind)),
                        ],
                    ));
                }
            }
            EventKind::OptInsert { occupancy, .. } | EventKind::OptClear { occupancy, .. } => {
                out.push(chrome_event(
                    "opt_occupancy",
                    "C",
                    ts,
                    tid,
                    [(
                        "args",
                        Json::obj([("entries", Json::u64(occupancy as u64))]),
                    )],
                ));
            }
            EventKind::WindowAdvance { outstanding, .. } => {
                out.push(chrome_event(
                    "window_outstanding",
                    "C",
                    ts,
                    tid,
                    [("args", Json::obj([("packets", Json::u64(outstanding))]))],
                ));
            }
            _ => {
                out.push(chrome_event(
                    name,
                    "i",
                    ts,
                    tid,
                    [("s", Json::str("t")), ("args", kind_args(&ev.kind))],
                ));
            }
        }
    }

    // Close any span still open at the end of the trace so Perfetto does
    // not render dangling async begins.
    if let Some(last) = events.last() {
        let ts = last.at.as_u64();
        for ((receiver, _), id) in open {
            out.push(chrome_event(
                "bulk_dialog",
                "e",
                ts,
                receiver as u64,
                [
                    ("cat", Json::str("bulk")),
                    ("id", Json::str(id)),
                    ("args", Json::obj([("end", Json::str("trace_truncated"))])),
                ],
            ));
        }
    }

    Json::obj([
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::str("ns")),
    ])
    .render()
}

/// [`to_chrome_trace`] plus per-node `trace_loss` instant events (phase
/// `"i"`, placed at the last traced cycle on each lossy node's track) so a
/// Perfetto view shows *where* ring eviction or sampling shed history. A
/// top-level `"traceLoss"` object carries the totals even when no node was
/// lossy.
pub fn to_chrome_trace_with_loss(events: &[TraceEvent], loss: &TraceLoss) -> String {
    let base = to_chrome_trace(events);
    let mut doc = crate::json::parse(&base).expect("to_chrome_trace emits well-formed JSON");
    let last_ts = events.last().map_or(0, |e| e.at.as_u64());
    if let Json::Obj(map) = &mut doc {
        if let Some(Json::Arr(out)) = map.get_mut("traceEvents") {
            for (node, (&ev, &sk)) in loss.evicted.iter().zip(loss.sampled_out.iter()).enumerate() {
                if ev == 0 && sk == 0 {
                    continue;
                }
                out.push(chrome_event(
                    "trace_loss",
                    "i",
                    last_ts,
                    node as u64,
                    [
                        ("s", Json::str("t")),
                        (
                            "args",
                            Json::obj([("evicted", Json::u64(ev)), ("sampled_out", Json::u64(sk))]),
                        ),
                    ],
                ));
            }
        }
        map.insert("traceLoss".to_string(), loss_json(loss));
    }
    doc.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DialogEnd, DropReason};
    use crate::json::parse;
    use nifdy_sim::{Cycle, NodeId};

    fn ev(seq: u64, at: u64, node: usize, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            at: Cycle::new(at),
            node: NodeId::new(node),
            kind,
        }
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            ev(
                0,
                10,
                0,
                EventKind::ScalarSend {
                    dst: NodeId::new(1),
                    size_words: 8,
                },
            ),
            ev(
                1,
                12,
                1,
                EventKind::DialogGrant {
                    peer: NodeId::new(0),
                    dialog: 2,
                },
            ),
            ev(
                2,
                14,
                0,
                EventKind::DialogOpen {
                    peer: NodeId::new(1),
                    dialog: 2,
                    window: 16,
                },
            ),
            ev(
                3,
                20,
                1,
                EventKind::Drop {
                    src: NodeId::new(0),
                    dst: NodeId::new(1),
                    ack: false,
                    cause: DropReason::Burst,
                },
            ),
            ev(
                4,
                40,
                0,
                EventKind::DialogClose {
                    peer: NodeId::new(1),
                    dialog: 2,
                    end: DialogEnd::Exit,
                },
            ),
        ]
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let text = to_jsonl(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        let first = parse(lines[0]).expect("line 0");
        assert_eq!(first.get("ev").unwrap().as_str(), Some("scalar_send"));
        assert_eq!(first.get("cycle").unwrap().as_u64(), Some(10));
        let drop = parse(lines[3]).expect("line 3");
        assert_eq!(drop.get("cause").unwrap().as_str(), Some("burst"));
    }

    #[test]
    fn chrome_trace_round_trips_and_has_tracks_spans_and_drops() {
        let text = to_chrome_trace(&sample_events());
        let doc = parse(&text).expect("well-formed chrome trace");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();

        let phase = |e: &Json| e.get("ph").unwrap().as_str().unwrap().to_string();
        let tracks: Vec<&Json> = events.iter().filter(|e| phase(e) == "M").collect();
        assert_eq!(tracks.len(), 2, "one metadata track per NIC");

        let begins: Vec<&Json> = events.iter().filter(|e| phase(e) == "b").collect();
        let ends: Vec<&Json> = events.iter().filter(|e| phase(e) == "e").collect();
        assert_eq!(begins.len(), 1, "one dialog span");
        assert_eq!(ends.len(), 1);
        assert_eq!(
            begins[0].get("id").unwrap().as_str(),
            ends[0].get("id").unwrap().as_str(),
            "begin/end share the async id"
        );
        assert_eq!(begins[0].get("cat").unwrap().as_str(), Some("bulk"));

        let drops: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("drop"))
            .collect();
        assert_eq!(drops.len(), 1);
        assert_eq!(
            drops[0].get("args").unwrap().get("cause").unwrap().as_str(),
            Some("burst")
        );
    }

    #[test]
    fn grant_then_open_yields_a_single_span() {
        // Both endpoints log the dialog start; only one span must open.
        let events = sample_events();
        let text = to_chrome_trace(&events);
        let doc = parse(&text).expect("parse");
        let begins = doc
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("b"))
            .count();
        assert_eq!(begins, 1);
    }

    #[test]
    fn dangling_spans_are_closed_at_trace_end() {
        let events = vec![ev(
            0,
            5,
            1,
            EventKind::DialogGrant {
                peer: NodeId::new(0),
                dialog: 0,
            },
        )];
        let text = to_chrome_trace(&events);
        let doc = parse(&text).expect("parse");
        let phases: Vec<String> = doc
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(phases.contains(&"b".to_string()));
        assert!(phases.contains(&"e".to_string()));
    }

    #[test]
    fn counter_events_for_occupancy() {
        let events = vec![ev(
            0,
            7,
            2,
            EventKind::OptInsert {
                dst: NodeId::new(3),
                occupancy: 5,
            },
        )];
        let text = to_chrome_trace(&events);
        let doc = parse(&text).expect("parse");
        let counters: Vec<&Json> = doc
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .collect();
        assert_eq!(counters.len(), 1);
        assert_eq!(
            counters[0]
                .get("args")
                .unwrap()
                .get("entries")
                .unwrap()
                .as_u64(),
            Some(5)
        );
    }
}
