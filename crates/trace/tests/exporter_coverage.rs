//! Trace-parity fixture (`nifdy-lint` rule R3): constructs every
//! [`EventKind`] variant once, runs both exporters over the set, and
//! asserts each variant's stable wire name appears in both outputs. A new
//! variant that is not added here (and to `EventKind::VARIANT_COUNT`)
//! fails this test and the lint pass.

use nifdy_sim::{Cycle, NodeId};
use nifdy_trace::export::{
    to_chrome_trace, to_chrome_trace_with_loss, to_jsonl, to_jsonl_with_loss,
};
use nifdy_trace::{DialogEnd, DropReason, EventKind, TraceEvent, TraceLoss, WireFaultCause};

/// One event of every variant, in declaration order.
fn one_of_each() -> Vec<EventKind> {
    let a = NodeId::new(0);
    let b = NodeId::new(1);
    vec![
        EventKind::ScalarSend {
            dst: b,
            size_words: 8,
        },
        EventKind::BulkSend {
            dst: b,
            dialog: 2,
            seq: 5,
            exit: false,
        },
        EventKind::AckSend { dst: a },
        EventKind::OptInsert {
            dst: b,
            occupancy: 1,
        },
        EventKind::OptClear {
            dst: b,
            occupancy: 0,
        },
        EventKind::EligStall { pool: 4, opt: 4 },
        EventKind::BulkRequest { dst: b },
        EventKind::DialogOpen {
            peer: b,
            dialog: 2,
            window: 8,
        },
        EventKind::DialogGrant { peer: a, dialog: 2 },
        EventKind::DialogReject { peer: a },
        EventKind::WindowAdvance {
            peer: b,
            dialog: 2,
            acked: 3,
            outstanding: 5,
        },
        EventKind::DialogClose {
            peer: b,
            dialog: 2,
            end: DialogEnd::Exit,
        },
        EventKind::Retransmit {
            dst: b,
            rto: 64,
            retries: 1,
            bulk: false,
            seq: 0,
        },
        EventKind::RttSample {
            dst: b,
            rtt: 40,
            srtt: 42,
            rto: 80,
        },
        EventKind::DeliveryFail { dst: b, retries: 7 },
        EventKind::Drop {
            src: a,
            dst: b,
            ack: false,
            cause: DropReason::Burst,
        },
        EventKind::Deliver {
            src: a,
            dst: b,
            ack: false,
            latency: 12,
        },
        EventKind::ScalarAccept { src: a },
        EventKind::BulkAccept {
            src: a,
            dialog: 2,
            seq: 5,
            exit: false,
        },
        EventKind::FrameSend {
            dst: b,
            ack: false,
            bytes: 32,
        },
        EventKind::FrameRecv {
            src: a,
            ack: true,
            bytes: 8,
        },
        EventKind::FrameReject { bytes: 3 },
        EventKind::WatchdogFire {
            unit: 1,
            since: Cycle::ZERO,
            fingerprint: 0xdead,
        },
        EventKind::WireFault {
            cause: WireFaultCause::Corrupt,
            bytes: 26,
        },
        EventKind::Heartbeat {
            peer: b,
            epoch: 2,
            sent: true,
        },
        EventKind::PeerDown {
            peer: b,
            silent_for: 4_000,
        },
        EventKind::PeerRestart { peer: b, epoch: 3 },
        EventKind::EndpointRestart {
            epoch: 3,
            backoff: 128,
        },
    ]
}

fn events() -> Vec<TraceEvent> {
    one_of_each()
        .into_iter()
        .enumerate()
        .map(|(i, kind)| TraceEvent {
            seq: i as u64,
            at: Cycle::new(i as u64),
            node: NodeId::new(0),
            kind,
        })
        .collect()
}

/// The string that proves a variant survived the Chrome export: the wire
/// name for instants, the span/counter track name for the variants the
/// exporter maps onto richer trace-event phases.
fn chrome_marker(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::DialogOpen { .. }
        | EventKind::DialogGrant { .. }
        | EventKind::DialogClose { .. } => "bulk_dialog",
        EventKind::OptInsert { .. } | EventKind::OptClear { .. } => "opt_occupancy",
        EventKind::WindowAdvance { .. } => "window_outstanding",
        other => other.name(),
    }
}

#[test]
fn fixture_covers_every_variant() {
    let kinds = one_of_each();
    assert_eq!(
        kinds.len(),
        EventKind::VARIANT_COUNT,
        "one_of_each() must construct every EventKind variant exactly once \
         (update it and VARIANT_COUNT together)"
    );
    // Names are the wire identity; a duplicate means a variant is missing.
    let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), EventKind::VARIANT_COUNT, "duplicate wire name");
}

#[test]
fn jsonl_exports_every_variant() {
    let events = events();
    let jsonl = to_jsonl(&events);
    assert_eq!(jsonl.lines().count(), EventKind::VARIANT_COUNT);
    for kind in one_of_each() {
        let quoted = format!("\"{}\"", kind.name());
        assert!(
            jsonl.contains(&quoted),
            "JSONL export lost variant {quoted}"
        );
    }
}

#[test]
fn chrome_trace_exports_every_variant() {
    let events = events();
    let chrome = to_chrome_trace(&events);
    for kind in one_of_each() {
        let quoted = format!("\"{}\"", chrome_marker(&kind));
        assert!(
            chrome.contains(&quoted),
            "Chrome export lost variant {} (marker {quoted})",
            kind.name()
        );
    }
}

/// Both exporters surface the per-node loss accounting: the JSONL trailer
/// line and the Chrome `traceLoss` object plus per-node instants.
#[test]
fn loss_accounting_reaches_both_exporters() {
    let events = events();
    let loss = TraceLoss {
        evicted: vec![3, 0, 7],
        sampled_out: vec![0, 2, 0],
    };

    let jsonl = to_jsonl_with_loss(&events, &loss);
    assert_eq!(jsonl.lines().count(), EventKind::VARIANT_COUNT + 1);
    let trailer = jsonl.lines().last().unwrap();
    assert!(trailer.contains("\"trace_loss\""), "{trailer}");
    assert!(trailer.contains("\"evicted_total\":10"), "{trailer}");
    assert!(trailer.contains("\"sampled_out_total\":2"), "{trailer}");
    assert!(trailer.contains("[3,0,7]"), "{trailer}");

    let chrome = to_chrome_trace_with_loss(&events, &loss);
    assert!(chrome.contains("\"traceLoss\""), "missing totals object");
    // Nodes 0, 1, and 2 each shed history, so each gets an instant.
    assert_eq!(chrome.matches("\"trace_loss\"").count(), 1 + 3);

    // A lossless session still gets the zero trailer (completeness proof).
    let clean = to_jsonl_with_loss(&events, &TraceLoss::default());
    assert!(clean
        .lines()
        .last()
        .unwrap()
        .contains("\"evicted_total\":0"));
}
