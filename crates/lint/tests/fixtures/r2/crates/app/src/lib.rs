//! R2 fixture: wall clock, ambient RNG, and a hash-ordered container in a
//! crate configured as deterministic.

use std::collections::HashMap;
use std::time::Instant;

pub fn jitter() -> u128 {
    let t = Instant::now();
    t.elapsed().as_nanos()
}

pub fn roll() -> u8 {
    rand::random::<u8>()
}

pub fn count(keys: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_in_tests_are_fine() {
        let _ = std::time::Instant::now();
    }
}
