//! R7 fixture: bare `+`/`+=` on narrow wire-seq fields (must fire), a
//! 64-bit absolute counter and wrapping_/% lines (must not).

pub struct Dialog {
    seq: u8,
    next_epoch: u16,
    total: u64,
}

impl Dialog {
    pub fn bump(&mut self) {
        self.seq = self.seq + 1;
        self.next_epoch += 1;
        self.total += 1;
    }

    pub fn wrapped(&mut self) {
        self.seq = self.seq.wrapping_add(1);
        self.next_epoch = (self.next_epoch + 1) % 512;
    }
}
