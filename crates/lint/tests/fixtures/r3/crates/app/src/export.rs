//! R3 fixture exporters: `kind_args` (JSONL) hides `Beta` behind a
//! catch-all; the Chrome exporter has no catch-all and no `Beta` arm.

use crate::event::EventKind;

fn kind_args(kind: &EventKind) -> String {
    match kind {
        EventKind::Alpha { x } => format!("x={x}"),
        _ => String::new(),
    }
}

pub fn to_jsonl(events: &[EventKind]) -> String {
    events.iter().map(kind_args).collect()
}

pub fn to_chrome_trace(events: &[EventKind]) -> String {
    let mut out = String::new();
    for ev in events {
        if let EventKind::Alpha { .. } = ev {
            out.push('a');
        }
    }
    out
}
