//! R3 fixture: two variants, a deliberately wrong `VARIANT_COUNT`, and a
//! `Beta` variant the exporters and fixtures fail to cover.

pub enum EventKind {
    Alpha { x: u8 },
    Beta { y: u8 },
}

impl EventKind {
    pub const VARIANT_COUNT: usize = 3;

    pub const fn name(&self) -> &'static str {
        match self {
            EventKind::Alpha { .. } => "alpha",
            EventKind::Beta { .. } => "beta",
        }
    }
}
