//! R3 fixture test file: covers only the first variant's wire name,
//! leaving the second uncovered.

#[test]
fn alpha_round_trips() {
    let line = "{\"ev\":\"alpha\"}";
    assert!(line.contains("alpha"));
}
