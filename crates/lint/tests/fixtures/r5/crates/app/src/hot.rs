//! R5 fixture: a fake stepped hot path with a per-call box, a fresh
//! vector, and a `collect`; the setup-path and test-module allocations
//! must NOT be flagged.

pub fn step(state: &mut Vec<Box<u64>>) {
    let boxed = Box::new(7u64);
    state.push(boxed);
    let scratch = vec![1u8, 2, 3];
    let doubled: Vec<u8> = scratch.iter().map(|b| b * 2).collect();
    let _ = doubled;
}

pub fn setup() -> Vec<u8> {
    // Outside the configured hot functions: not a violation.
    Vec::with_capacity(64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn allocs_in_tests_are_fine() {
        let v: Vec<u8> = (0..4).collect();
        assert_eq!(v.len(), 4);
    }
}
