//! R1 fixture: a fake hot path with one indexing, one unwrap, and one
//! panic; the test-module unwrap must NOT be flagged.

pub fn decode(bytes: &[u8]) -> u8 {
    bytes[0]
}

pub fn step(queue: &mut Vec<u8>) {
    let head = queue.pop().unwrap();
    if head == 0 {
        panic!("zero");
    }
}

pub fn cold() -> u8 {
    // Outside the configured hot functions: not a violation.
    Some(1u8).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn ok() {
        assert_eq!(super::decode(&[1]), 1);
    }

    #[test]
    fn test_unwrap_is_fine() {
        let v = Some(3u8).unwrap();
        assert_eq!(v, 3);
    }
}
