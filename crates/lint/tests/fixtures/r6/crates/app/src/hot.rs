//! R6 fixture: a fixed-capacity ring pushed without a guard in `step`
//! (must fire) and with a capacity check in `guarded` (must not).

use std::collections::VecDeque;

pub struct Ring {
    buf: VecDeque<u8>,
}

impl Ring {
    pub fn new() -> Ring {
        Ring {
            buf: VecDeque::with_capacity(8),
        }
    }

    pub fn step(&mut self, v: u8) {
        self.buf.push_back(v);
    }

    pub fn guarded(&mut self, v: u8) {
        if self.buf.len() < 8 {
            self.buf.push_back(v);
        }
    }
}
