//! Call-graph fixture, crate alpha: the entry `Unit::step` dispatches
//! through a `dyn Nic` receiver (both impls must join the closure), a
//! `self` call that must resolve precisely to `Unit::finish`, and a
//! receiver call on `finish` whose name is shadowed by an unrelated
//! impl in crate beta.

pub trait Nic {
    fn poll(&mut self) -> u8;
}

pub struct FastNic;

impl Nic for FastNic {
    fn poll(&mut self) -> u8 {
        fast_inner()
    }
}

pub struct SlowNic;

impl Nic for SlowNic {
    fn poll(&mut self) -> u8 {
        7
    }
}

pub struct Unit {
    acc: u8,
}

impl Unit {
    pub fn step(&mut self, nic: &mut dyn Nic, ledger: &mut Ledger) -> u8 {
        let v = nic.poll();
        ledger.finish(v);
        self.finish(v)
    }

    pub fn finish(&mut self, v: u8) -> u8 {
        self.acc = beta::shared(v);
        self.acc
    }
}

fn fast_inner() -> u8 {
    3
}

pub fn outside(u: &mut Unit, n: &mut dyn Nic, l: &mut Ledger) -> u8 {
    // Calls the entry but is itself unreachable from it: the closure is
    // callee-directed, so callers stay out.
    u.step(n, l)
}
