//! Call-graph fixture, crate beta: the cross-crate free-call target and
//! an unrelated `finish` method that receiver-call resolution in alpha
//! must pull in conservatively (name shadowing, no type inference).

pub struct Ledger {
    total: u64,
}

impl Ledger {
    pub fn finish(&mut self, v: u8) -> u64 {
        self.total = u64::from(v);
        self.total
    }
}

pub fn shared(v: u8) -> u8 {
    lane_of(v)
}

fn lane_of(v: u8) -> u8 {
    v & 1
}

pub fn unreached() -> u8 {
    9
}
