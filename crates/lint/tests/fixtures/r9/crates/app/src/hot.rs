//! R9 fixture: a Mutex guard held across a step call in `drive` and a
//! registry-before-trace lock-order inversion in `inverted` (both must
//! fire); `clean` drops its guard in an inner scope before stepping.

use std::sync::Mutex;

pub struct App {
    pub stats: Mutex<u64>,
    pub registry_lock: Mutex<u64>,
    pub trace_lock: Mutex<u64>,
}

pub struct Engine;

impl Engine {
    pub fn step(&mut self) {}
}

pub fn drive(app: &App, engine: &mut Engine) {
    let stats = app.stats.lock().unwrap();
    engine.step();
    drop(stats);
}

pub fn inverted(app: &App) {
    let r = app.registry_lock.lock().unwrap();
    let t = app.trace_lock.lock().unwrap();
    drop(t);
    drop(r);
}

pub fn clean(app: &App, engine: &mut Engine) {
    {
        let stats = app.stats.lock().unwrap();
        drop(stats);
    }
    engine.step();
}
