//! R4 fixture: `window` is validated, `depth` has a builder setter, and
//! `orphan_knob` is reachable by neither — the violation.

pub struct AppConfig {
    pub window: u8,
    pub depth: u8,
    pub orphan_knob: u8,
}

impl AppConfig {
    pub fn with_depth(mut self, d: u8) -> Self {
        self.depth = d;
        self
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("window must be positive".into());
        }
        Ok(())
    }
}
