//! R8 fixture: a wildcard arm in a match over the protocol enum `Wire`
//! (must fire) and over the out-of-scope enum `Local` (must not).

pub enum Wire {
    Data(u8),
    Ack(u8),
    Nack(u8),
}

pub fn classify(w: &Wire) -> u8 {
    match w {
        Wire::Data(v) => *v,
        Wire::Ack(_) => 1,
        _ => 0,
    }
}

pub enum Local {
    A,
    B,
}

pub fn other(l: &Local) -> u8 {
    match l {
        Local::A => 0,
        _ => 1,
    }
}
