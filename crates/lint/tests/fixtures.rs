//! Fixture-driven rule tests: each rule R1–R9 is demonstrated by a small
//! fake workspace under `tests/fixtures/` that must FAIL the pass, the
//! call-graph builder is checked against a golden closure over a fixture
//! crate pair (trait dispatch, method shadowing, cross-crate calls), the
//! allowlist machinery is exercised against schema-broken / stale / valid
//! suppression files, and a final self-test asserts the live NIFDY
//! workspace itself is clean.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use nifdy_lint::graph::{crate_of, Demands, EntryPoint, Graph};
use nifdy_lint::rules::{
    ConfigCoverageScope, DeterminismScope, SeqHygieneScope, TraceParityScope, WildcardScope,
};
use nifdy_lint::source::SourceFile;
use nifdy_lint::{run, LintConfig, LintReport};

const PANIC: Demands = Demands {
    panic: true,
    index: false,
    alloc: false,
};
const PANIC_INDEX: Demands = Demands {
    panic: true,
    index: true,
    alloc: false,
};
const ALLOC_ONLY: Demands = Demands {
    panic: false,
    index: false,
    alloc: true,
};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn entry(type_name: Option<&str>, fn_name: &str, demands: Demands) -> EntryPoint {
    EntryPoint {
        type_name: type_name.map(str::to_string),
        fn_name: fn_name.to_string(),
        demands,
    }
}

/// A config with every rule disabled, rooted at a fixture tree.
fn base_config(fixture: &str) -> LintConfig {
    LintConfig {
        root: fixture_root(fixture),
        src_dirs: vec!["crates/app/src".to_string()],
        graph_exclude: Vec::new(),
        entry_points: Vec::new(),
        determinism: None,
        trace_parity: None,
        config_coverage: Vec::new(),
        seq_hygiene: None,
        wildcard: None,
        lock_crates: Vec::new(),
        allowlist: None,
    }
}

fn rules_fired(report: &LintReport, rule: &str) -> usize {
    report.diagnostics.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn r1_fixture_fails_on_panics_and_indexing() {
    let mut config = base_config("r1");
    config.entry_points = vec![
        entry(None, "decode", PANIC_INDEX),
        entry(None, "step", PANIC),
    ];
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    // bytes[0] indexing + .unwrap() + panic! — and nothing else: the
    // unwraps in `cold()` (unreachable from the entries) and in the test
    // module are out of scope.
    assert_eq!(rules_fired(&report, "R1"), 3, "{:#?}", report.diagnostics);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("index expression")));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.snippet.contains("panic!")));
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.snippet.contains("Some(1u8)")));
}

#[test]
fn r2_fixture_fails_on_clock_rng_and_hash() {
    let mut config = base_config("r2");
    config.determinism = Some(DeterminismScope {
        hash_dir_prefixes: vec!["crates/app/".to_string()],
    });
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let msgs: Vec<&str> = report
        .diagnostics
        .iter()
        .map(|d| d.message.as_str())
        .collect();
    assert!(msgs.iter().any(|m| m.contains("`Instant`")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("rand::random")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`HashMap`")), "{msgs:?}");
    // The Instant inside #[cfg(test)] must not fire.
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.snippet.contains("clocks_in_tests") || d.line > 23));
}

#[test]
fn r3_fixture_fails_on_every_parity_gap() {
    let mut config = base_config("r3");
    config.trace_parity = Some(TraceParityScope {
        event_file: "crates/app/src/event.rs".to_string(),
        enum_name: "EventKind".to_string(),
        name_fn: "name".to_string(),
        count_const: "VARIANT_COUNT".to_string(),
        exporter_file: "crates/app/src/export.rs".to_string(),
        jsonl_fn: "kind_args".to_string(),
        chrome_fn: "to_chrome_trace".to_string(),
        fixture_files: vec!["crates/app/tests/fixture.rs".to_string()],
    });
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let msgs: Vec<&str> = report
        .diagnostics
        .iter()
        .map(|d| d.message.as_str())
        .collect();
    // Wrong count const, Beta hidden by the JSONL catch-all, Beta missing
    // from the Chrome exporter, Beta absent from the fixture file.
    assert!(
        msgs.iter().any(|m| m.contains("`VARIANT_COUNT` is 3")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`Beta` has no arm in the JSONL")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`Beta` unhandled by the Perfetto")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`Beta` (wire name \"beta\") appears in no")),
        "{msgs:?}"
    );
    // Alpha is fully covered and must not be flagged.
    assert!(!msgs.iter().any(|m| m.contains("`Alpha`")), "{msgs:?}");
}

#[test]
fn r4_fixture_fails_on_the_orphan_field() {
    let mut config = base_config("r4");
    config.config_coverage = vec![ConfigCoverageScope {
        path: "crates/app/src/config.rs".to_string(),
        struct_name: "AppConfig".to_string(),
        validate_fn: "validate".to_string(),
    }];
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(rules_fired(&report, "R4"), 1, "{:#?}", report.diagnostics);
    assert!(report.diagnostics[0].message.contains("`orphan_knob`"));
}

#[test]
fn r5_fixture_fails_on_hot_path_allocations() {
    let mut config = base_config("r5");
    config.entry_points = vec![entry(None, "step", ALLOC_ONLY)];
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    // Box::new + vec![ + .collect() — the setup() Vec::with_capacity
    // (unreachable from the entry) and the test-module collect are out
    // of scope.
    assert_eq!(rules_fired(&report, "R5"), 3, "{:#?}", report.diagnostics);
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.snippet.contains("with_capacity")));
}

#[test]
fn r6_fixture_fails_on_the_unguarded_push() {
    let mut config = base_config("r6");
    config.entry_points = vec![
        entry(Some("Ring"), "step", PANIC),
        entry(Some("Ring"), "guarded", PANIC),
    ];
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    // `step` pushes into the with_capacity-initialized `buf` with no
    // capacity check in the same fn; `guarded` carries a `len() <` guard
    // and must stay clean.
    assert_eq!(rules_fired(&report, "R6"), 1, "{:#?}", report.diagnostics);
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "R6")
        .expect("R6 diagnostic");
    assert!(diag.message.contains("`buf`"), "{}", diag.message);
    assert!(diag.message.contains("Ring::step"), "{}", diag.message);
    assert!(diag.snippet.contains("push_back"), "{}", diag.snippet);
}

#[test]
fn r7_fixture_fails_on_bare_seq_arithmetic() {
    let mut config = base_config("r7");
    config.seq_hygiene = Some(SeqHygieneScope {
        crates: vec!["app".to_string()],
    });
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    // Bare `+` on the u8 `seq` and `+=` on the u16 `next_epoch`; the u64
    // `total` counter and the wrapping_/% lines are exempt.
    assert_eq!(rules_fired(&report, "R7"), 2, "{:#?}", report.diagnostics);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("`seq`")));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("`next_epoch`")));
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.snippet.contains("total") || d.snippet.contains("wrapping")));
}

#[test]
fn r8_fixture_fails_on_the_protocol_enum_wildcard() {
    let mut config = base_config("r8");
    config.wildcard = Some(WildcardScope {
        crates: vec!["app".to_string()],
        enums: vec!["Wire".to_string()],
    });
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    // The `_` arm in the `Wire` match fires; the `Local` enum is not in
    // scope so its wildcard is fine.
    assert_eq!(rules_fired(&report, "R8"), 1, "{:#?}", report.diagnostics);
    let diag = &report.diagnostics[0];
    assert!(diag.message.contains("wildcard"), "{}", diag.message);
    assert!(diag.snippet.starts_with("_ =>"), "{}", diag.snippet);
}

#[test]
fn r9_fixture_fails_on_held_guard_and_lock_order() {
    let mut config = base_config("r9");
    config.lock_crates = vec!["app".to_string()];
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    // `drive` holds the stats guard across engine.step(); `inverted`
    // takes the registry lock before the trace lock; `clean` drops its
    // guard in an inner block before stepping and must stay clean.
    assert_eq!(rules_fired(&report, "R9"), 2, "{:#?}", report.diagnostics);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("held") && d.message.contains("`drive`")));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("lock-order inversion") && d.message.contains("`inverted`")));
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("`clean`")));
}

/// Loads the two-crate call-graph fixture.
fn graph_fixture_files() -> Vec<SourceFile> {
    let root = fixture_root("graph");
    ["crates/alpha/src/lib.rs", "crates/beta/src/lib.rs"]
        .iter()
        .map(|rel| SourceFile::load(&root, rel).expect("fixture file loads"))
        .collect()
}

#[test]
fn call_graph_closure_matches_the_golden_set() {
    let files = graph_fixture_files();
    let include = |_: &str| true;
    let entries = vec![entry(Some("Unit"), "step", PANIC)];
    let graph = Graph::build(&files, &include, &entries);
    assert!(
        graph.unmatched_entries.is_empty(),
        "{:?}",
        graph.unmatched_entries
    );

    let labels: BTreeSet<String> = graph
        .closure
        .iter()
        .map(|c| graph.symbol_label(c.symbol))
        .collect();
    // The golden closure: the entry, both trait impls behind the dyn
    // receiver call, the precise self-call target, the shadowed `finish`
    // in crate beta (conservative receiver-call resolution), and the
    // cross-crate free-call chain.
    let golden: BTreeSet<String> = [
        "Unit::step",     // entry
        "poll",           // the bodiless `trait Nic` signature symbol
        "FastNic::poll",  // nic.poll() — trait dispatch, impl 1
        "SlowNic::poll",  // nic.poll() — trait dispatch, impl 2
        "Unit::finish",   // self.finish() — resolved via the impl type
        "Ledger::finish", // ledger.finish() — name-shadowed method in beta
        "shared",         // beta::shared() — module path dropped
        "fast_inner",     // FastNic::poll body
        "lane_of",        // shared() body
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    assert_eq!(labels, golden, "closure diverged from the golden set");

    // Callers of the entry and unrelated fns stay out: the closure is
    // callee-directed.
    assert!(!labels.contains("outside"));
    assert!(!labels.contains("unreached"));

    // Both fixture crates contribute, and demands propagate unchanged
    // across the crate boundary.
    let crates: BTreeSet<&str> = graph.crates_in_closure.iter().map(String::as_str).collect();
    assert_eq!(crates, ["alpha", "beta"].into_iter().collect());
    for member in &graph.closure {
        assert_eq!(
            member.demands,
            PANIC,
            "{}",
            graph.symbol_label(member.symbol)
        );
    }
    let entry_member = graph
        .closure
        .iter()
        .find(|c| graph.symbol_label(c.symbol) == "Unit::step")
        .expect("entry in closure");
    assert_eq!(entry_member.depth, 0);
    assert!(entry_member.via.is_none());
}

#[test]
fn call_graph_reports_unmatched_entries_and_respects_exclusion() {
    let files = graph_fixture_files();
    let include = |_: &str| true;
    let entries = vec![entry(Some("Ghost"), "step", PANIC)];
    let graph = Graph::build(&files, &include, &entries);
    assert_eq!(graph.unmatched_entries, vec!["Ghost::step".to_string()]);
    assert!(graph.closure.is_empty());

    // Excluding crate beta drops its symbols: the cross-crate callees
    // disappear from the closure while the alpha side is unaffected.
    let include_alpha = |c: &str| c == "alpha";
    let entries = vec![entry(Some("Unit"), "step", PANIC)];
    let graph = Graph::build(&files, &include_alpha, &entries);
    let labels: BTreeSet<String> = graph
        .closure
        .iter()
        .map(|c| graph.symbol_label(c.symbol))
        .collect();
    assert!(labels.contains("Unit::step"));
    assert!(!labels.contains("Ledger::finish"));
    assert!(!labels.contains("shared"));
    assert_eq!(crate_of("crates/beta/src/lib.rs"), Some("beta"));
}

#[test]
fn schema_broken_allowlist_is_a_hard_error() {
    let mut config = base_config("r1");
    config.allowlist = Some(fixture_root("allow").join("bad.toml"));
    let report = run(&config);
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.contains("unknown rule `R12`")),
        "{:?}",
        report.errors
    );
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.contains("unknown key `severity`")),
        "{:?}",
        report.errors
    );
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.contains("missing required key `pattern`")),
        "{:?}",
        report.errors
    );
    assert!(!report.is_clean());
}

#[test]
fn stale_allowlist_entry_is_a_hard_error() {
    let mut config = base_config("r1");
    config.entry_points = vec![entry(None, "step", PANIC)];
    config.allowlist = Some(fixture_root("allow").join("stale.toml"));
    let report = run(&config);
    assert!(
        report.errors.iter().any(|e| e.contains("stale entry")),
        "{:?}",
        report.errors
    );
    assert!(!report.is_clean());
}

#[test]
fn justified_entry_suppresses_exactly_its_diagnostic() {
    let mut config = base_config("r1");
    config.entry_points = vec![
        entry(None, "decode", PANIC_INDEX),
        entry(None, "step", PANIC),
    ];
    config.allowlist = Some(fixture_root("allow").join("covers-r1.toml"));
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.suppressed.len(), 1, "{:#?}", report.suppressed);
    assert!(report.suppressed[0].0.snippet.contains(".unwrap()"));
    // The indexing and panic! diagnostics are NOT covered and stay active.
    assert_eq!(rules_fired(&report, "R1"), 2, "{:#?}", report.diagnostics);
}

#[test]
fn unmatched_entry_point_is_a_hard_error() {
    let mut config = base_config("r1");
    config.entry_points = vec![entry(Some("Ghost"), "poll_round", PANIC)];
    let report = run(&config);
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.contains("`Ghost::poll_round` matched no function")),
        "{:?}",
        report.errors
    );
    assert!(!report.is_clean());
}

/// The tentpole acceptance check: the live workspace passes its own lint
/// with zero violations and zero errors, and the computed closure spans
/// the protocol crates.
#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let config = LintConfig::workspace(root).expect("workspace enumerates");
    let report = run(&config);
    assert!(
        report.is_clean(),
        "live workspace must lint clean:\n{}",
        nifdy_lint::report::human(&report)
    );
    assert!(report.files_scanned > 20, "scan set unexpectedly small");
    // The acceptance floor from the issue: ≥30 closure fns over ≥4 crates.
    assert!(
        report.closure_fn_count >= 30,
        "closure too small: {}",
        report.closure_fn_count
    );
    assert!(
        report.closure_crates.len() >= 4,
        "closure crates: {:?}",
        report.closure_crates
    );
    assert!(!report.closure_json.is_empty());
}
