//! Fixture-driven rule tests: each rule R1–R4 is demonstrated by a small
//! fake workspace under `tests/fixtures/` that must FAIL the pass, the
//! allowlist machinery is exercised against schema-broken / stale / valid
//! suppression files, and a final self-test asserts the live NIFDY
//! workspace itself is clean.

use std::path::{Path, PathBuf};

use nifdy_lint::rules::{
    ConfigCoverageScope, DeterminismScope, HotPath, TraceParityScope, ZeroAllocScope,
};
use nifdy_lint::{run, LintConfig, LintReport};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// A config with every rule disabled, rooted at a fixture tree.
fn base_config(fixture: &str) -> LintConfig {
    LintConfig {
        root: fixture_root(fixture),
        src_dirs: vec!["crates/app/src".to_string()],
        hot_paths: Vec::new(),
        determinism: None,
        trace_parity: None,
        config_coverage: Vec::new(),
        zero_alloc: Vec::new(),
        allowlist: None,
    }
}

fn rules_fired(report: &LintReport, rule: &str) -> usize {
    report.diagnostics.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn r1_fixture_fails_on_panics_and_indexing() {
    let mut config = base_config("r1");
    config.hot_paths = vec![HotPath {
        path: "crates/app/src/hot.rs".to_string(),
        functions: vec!["decode".to_string(), "step".to_string()],
        deny_indexing: true,
    }];
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    // bytes[0] indexing + .unwrap() + panic! — and nothing else: the
    // unwraps in `cold()` and in the test module are out of scope.
    assert_eq!(rules_fired(&report, "R1"), 3, "{:#?}", report.diagnostics);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("index expression")));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.snippet.contains("panic!")));
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.snippet.contains("Some(1u8)")));
}

#[test]
fn r2_fixture_fails_on_clock_rng_and_hash() {
    let mut config = base_config("r2");
    config.determinism = Some(DeterminismScope {
        hash_dir_prefixes: vec!["crates/app/".to_string()],
    });
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let msgs: Vec<&str> = report
        .diagnostics
        .iter()
        .map(|d| d.message.as_str())
        .collect();
    assert!(msgs.iter().any(|m| m.contains("`Instant`")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("rand::random")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`HashMap`")), "{msgs:?}");
    // The Instant inside #[cfg(test)] must not fire.
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.snippet.contains("clocks_in_tests") || d.line > 23));
}

#[test]
fn r3_fixture_fails_on_every_parity_gap() {
    let mut config = base_config("r3");
    config.trace_parity = Some(TraceParityScope {
        event_file: "crates/app/src/event.rs".to_string(),
        enum_name: "EventKind".to_string(),
        name_fn: "name".to_string(),
        count_const: "VARIANT_COUNT".to_string(),
        exporter_file: "crates/app/src/export.rs".to_string(),
        jsonl_fn: "kind_args".to_string(),
        chrome_fn: "to_chrome_trace".to_string(),
        fixture_files: vec!["crates/app/tests/fixture.rs".to_string()],
    });
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let msgs: Vec<&str> = report
        .diagnostics
        .iter()
        .map(|d| d.message.as_str())
        .collect();
    // Wrong count const, Beta hidden by the JSONL catch-all, Beta missing
    // from the Chrome exporter, Beta absent from the fixture file.
    assert!(
        msgs.iter().any(|m| m.contains("`VARIANT_COUNT` is 3")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`Beta` has no arm in the JSONL")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`Beta` unhandled by the Perfetto")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`Beta` (wire name \"beta\") appears in no")),
        "{msgs:?}"
    );
    // Alpha is fully covered and must not be flagged.
    assert!(!msgs.iter().any(|m| m.contains("`Alpha`")), "{msgs:?}");
}

#[test]
fn r4_fixture_fails_on_the_orphan_field() {
    let mut config = base_config("r4");
    config.config_coverage = vec![ConfigCoverageScope {
        path: "crates/app/src/config.rs".to_string(),
        struct_name: "AppConfig".to_string(),
        validate_fn: "validate".to_string(),
    }];
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(rules_fired(&report, "R4"), 1, "{:#?}", report.diagnostics);
    assert!(report.diagnostics[0].message.contains("`orphan_knob`"));
}

#[test]
fn r5_fixture_fails_on_hot_path_allocations() {
    let mut config = base_config("r5");
    config.zero_alloc = vec![ZeroAllocScope {
        path: "crates/app/src/hot.rs".to_string(),
        functions: vec!["step".to_string()],
    }];
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    // Box::new + vec![ + .collect() — the setup() Vec::with_capacity and
    // the test-module collect are out of scope.
    assert_eq!(rules_fired(&report, "R5"), 3, "{:#?}", report.diagnostics);
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.snippet.contains("with_capacity")));
}

#[test]
fn schema_broken_allowlist_is_a_hard_error() {
    let mut config = base_config("r1");
    config.allowlist = Some(fixture_root("allow").join("bad.toml"));
    let report = run(&config);
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.contains("unknown rule `R9`")),
        "{:?}",
        report.errors
    );
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.contains("unknown key `severity`")),
        "{:?}",
        report.errors
    );
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.contains("missing required key `pattern`")),
        "{:?}",
        report.errors
    );
    assert!(!report.is_clean());
}

#[test]
fn stale_allowlist_entry_is_a_hard_error() {
    let mut config = base_config("r1");
    config.hot_paths = vec![HotPath {
        path: "crates/app/src/hot.rs".to_string(),
        functions: vec!["step".to_string()],
        deny_indexing: false,
    }];
    config.allowlist = Some(fixture_root("allow").join("stale.toml"));
    let report = run(&config);
    assert!(
        report.errors.iter().any(|e| e.contains("stale entry")),
        "{:?}",
        report.errors
    );
    assert!(!report.is_clean());
}

#[test]
fn justified_entry_suppresses_exactly_its_diagnostic() {
    let mut config = base_config("r1");
    config.hot_paths = vec![HotPath {
        path: "crates/app/src/hot.rs".to_string(),
        functions: vec!["decode".to_string(), "step".to_string()],
        deny_indexing: true,
    }];
    config.allowlist = Some(fixture_root("allow").join("covers-r1.toml"));
    let report = run(&config);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.suppressed.len(), 1, "{:#?}", report.suppressed);
    assert!(report.suppressed[0].0.snippet.contains(".unwrap()"));
    // The indexing and panic! diagnostics are NOT covered and stay active.
    assert_eq!(rules_fired(&report, "R1"), 2, "{:#?}", report.diagnostics);
}

/// The tentpole acceptance check: the live workspace passes its own lint
/// with zero violations and zero errors.
#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let config = LintConfig::workspace(root).expect("workspace enumerates");
    let report = run(&config);
    assert!(
        report.is_clean(),
        "live workspace must lint clean:\n{}",
        nifdy_lint::report::human(&report)
    );
    assert!(report.files_scanned > 20, "scan set unexpectedly small");
}
