//! The five workspace rules. Each rule consumes the [`SourceFile`] model
//! and appends [`Diagnostic`]s; suppression against `lint-allow.toml`
//! happens later in the engine so every rule stays allowlist-agnostic.
//!
//! | Rule | Property |
//! |------|----------|
//! | R1   | panic-freedom in designated protocol hot paths |
//! | R2   | determinism hygiene (no wall clock, no ambient RNG, no hash-ordered containers in deterministic crates) |
//! | R3   | trace parity (every `EventKind` variant exported and fixture-covered) |
//! | R4   | config coverage (every config field validated or builder-settable) |
//! | R5   | zero-alloc steady state (no heap-allocating constructs in stepped hot paths) |

use crate::source::{contains_word, SourceFile};

/// One finding, addressed `path:line`, before allowlist filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id: `"R1"`..`"R4"`.
    pub rule: &'static str,
    /// File path relative to the analysis root.
    pub path: String,
    /// 1-based line (0 when the finding is about a whole file).
    pub line: usize,
    /// What is wrong and what the fix direction is.
    pub message: String,
    /// The offending source line, trimmed (empty for file-level findings).
    pub snippet: String,
}

impl Diagnostic {
    fn at(rule: &'static str, file: &SourceFile, line: usize, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            path: file.rel.clone(),
            line,
            message,
            snippet: file
                .raw
                .get(line.wrapping_sub(1))
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        }
    }
}

/// R1 scope: one file whose listed functions (or whole file when empty)
/// must be panic-free.
#[derive(Debug, Clone)]
pub struct HotPath {
    /// File path relative to the root.
    pub path: String,
    /// Function names delimiting the hot path; empty = entire file.
    pub functions: Vec<String>,
    /// Also forbid index expressions (`x[i]`, `x[a..b]`) — used for the
    /// wire decode path, which must be total over arbitrary bytes.
    pub deny_indexing: bool,
}

/// Tokens whose presence on a hot-path line is a panic risk.
const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// R1 — panic-freedom in protocol hot paths.
pub fn r1_panic_freedom(file: &SourceFile, hot: &HotPath, out: &mut Vec<Diagnostic>) {
    let (mask, missing) = if hot.functions.is_empty() {
        (vec![true; file.raw.len()], Vec::new())
    } else {
        file.fn_mask(&hot.functions)
    };
    for name in missing {
        out.push(Diagnostic {
            rule: "R1",
            path: file.rel.clone(),
            line: 0,
            message: format!(
                "hot-path function `{name}` not found; update the R1 scope in \
                 `LintConfig::workspace` if it was renamed"
            ),
            snippet: String::new(),
        });
    }
    for (idx, line) in file.code.iter().enumerate() {
        let line_no = idx + 1;
        if !mask[idx] || file.is_test_line(line_no) {
            continue;
        }
        for token in PANIC_TOKENS {
            if line.contains(token) {
                out.push(Diagnostic::at(
                    "R1",
                    file,
                    line_no,
                    format!(
                        "`{token}` on a protocol hot path; use a typed error or \
                         `debug_assert!` + graceful recovery"
                    ),
                ));
            }
        }
        if hot.deny_indexing {
            for at in index_expr_positions(line) {
                out.push(Diagnostic::at(
                    "R1",
                    file,
                    line_no,
                    format!(
                        "index expression at column {} in a total decode path; \
                         use `get`/checked accessors that return a typed error",
                        at + 1
                    ),
                ));
            }
        }
    }
}

/// Byte offsets of `[` tokens that open an index expression: a `[`
/// immediately preceded by an identifier character, `)`, or `]`.
fn index_expr_positions(line: &str) -> Vec<usize> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    for (i, &c) in b.iter().enumerate() {
        if c != b'[' || i == 0 {
            continue;
        }
        let p = b[i - 1];
        if p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']' {
            out.push(i);
        }
    }
    out
}

/// R5 scope: one file whose listed functions (or whole file when empty)
/// form a stepped hot path that must not allocate in the steady state.
#[derive(Debug, Clone)]
pub struct ZeroAllocScope {
    /// File path relative to the root.
    pub path: String,
    /// Function names delimiting the hot path; empty = entire file.
    pub functions: Vec<String>,
}

/// Tokens whose presence on a hot-path line constructs a fresh heap
/// allocation (or a growable container destined to reallocate) per call.
/// Pushes into long-lived, high-water-mark containers are deliberately
/// *not* banned — those amortize to zero; what R5 hunts is per-event
/// churn: fresh boxes, fresh vectors, formatting, and `collect`.
const ALLOC_TOKENS: [&str; 18] = [
    "Box::new(",
    "Rc::new(",
    "Arc::new(",
    "vec![",
    "Vec::new(",
    "Vec::with_capacity(",
    "VecDeque::new(",
    "VecDeque::with_capacity(",
    "BTreeMap::new(",
    "BTreeSet::new(",
    "String::new(",
    "String::from(",
    "format!(",
    ".to_vec()",
    ".to_string()",
    ".to_owned()",
    ".collect()",
    ".collect::<",
];

/// R5 — zero-alloc steady state in stepped hot paths.
pub fn r5_zero_alloc(file: &SourceFile, scope: &ZeroAllocScope, out: &mut Vec<Diagnostic>) {
    let (mask, missing) = if scope.functions.is_empty() {
        (vec![true; file.raw.len()], Vec::new())
    } else {
        file.fn_mask(&scope.functions)
    };
    for name in missing {
        out.push(Diagnostic {
            rule: "R5",
            path: file.rel.clone(),
            line: 0,
            message: format!(
                "zero-alloc function `{name}` not found; update the R5 scope in \
                 `LintConfig::workspace` if it was renamed"
            ),
            snippet: String::new(),
        });
    }
    for (idx, line) in file.code.iter().enumerate() {
        let line_no = idx + 1;
        if !mask[idx] || file.is_test_line(line_no) {
            continue;
        }
        for token in ALLOC_TOKENS {
            if line.contains(token) {
                out.push(Diagnostic::at(
                    "R5",
                    file,
                    line_no,
                    format!(
                        "allocating construct `{token}` in a zero-alloc stepped hot \
                         path; reuse a preallocated buffer or slab arena, or move \
                         the allocation to setup/teardown"
                    ),
                ));
            }
        }
    }
}

/// R2 scope.
#[derive(Debug, Clone)]
pub struct DeterminismScope {
    /// Path prefixes (e.g. `crates/core/`) where hash-ordered containers
    /// are forbidden; seeded RNG and wall-clock bans apply to every
    /// scanned file.
    pub hash_dir_prefixes: Vec<String>,
}

/// R2 — determinism hygiene.
pub fn r2_determinism(file: &SourceFile, scope: &DeterminismScope, out: &mut Vec<Diagnostic>) {
    let hash_banned = scope
        .hash_dir_prefixes
        .iter()
        .any(|p| file.rel.starts_with(p.as_str()));
    for (idx, line) in file.code.iter().enumerate() {
        let line_no = idx + 1;
        if file.is_test_line(line_no) {
            continue;
        }
        for clock in ["Instant", "SystemTime"] {
            if contains_word(line, clock) {
                out.push(Diagnostic::at(
                    "R2",
                    file,
                    line_no,
                    format!(
                        "wall-clock type `{clock}` in the deterministic stack; use \
                         `Cycle` time, or add a justified allowlist entry for \
                         harness timing / transport deadlines"
                    ),
                ));
            }
        }
        for rng in ["thread_rng", "rand::random"] {
            if line.contains(rng) {
                out.push(Diagnostic::at(
                    "R2",
                    file,
                    line_no,
                    format!("ambient RNG `{rng}`; use the seeded `nifdy-sim` streams"),
                ));
            }
        }
        if hash_banned {
            for map in ["HashMap", "HashSet"] {
                if contains_word(line, map) {
                    out.push(Diagnostic::at(
                        "R2",
                        file,
                        line_no,
                        format!(
                            "default-hasher `{map}` in a deterministic crate; use \
                             `BTreeMap`/`BTreeSet` (or sorted iteration) so order \
                             never depends on the hasher"
                        ),
                    ));
                }
            }
        }
    }
}

/// R3 scope: the event vocabulary and its exporters/fixtures.
#[derive(Debug, Clone)]
pub struct TraceParityScope {
    /// File declaring the event enum.
    pub event_file: String,
    /// The enum name (e.g. `EventKind`).
    pub enum_name: String,
    /// Function mapping variants to stable wire names (e.g. `name`).
    pub name_fn: String,
    /// A `const` in the event file that must equal the variant count.
    pub count_const: String,
    /// The exporter file (JSONL + Perfetto live together).
    pub exporter_file: String,
    /// Per-variant JSONL field function (no catch-all allowed).
    pub jsonl_fn: String,
    /// The Perfetto/Chrome exporter function.
    pub chrome_fn: String,
    /// Test files that together must mention every wire name.
    pub fixture_files: Vec<String>,
}

/// R3 — trace parity across exporters and fixtures.
pub fn r3_trace_parity(
    event: &SourceFile,
    exporter: &SourceFile,
    fixtures: &[SourceFile],
    scope: &TraceParityScope,
    out: &mut Vec<Diagnostic>,
) {
    let Some(variants) = event.enum_variants(&scope.enum_name) else {
        out.push(Diagnostic {
            rule: "R3",
            path: event.rel.clone(),
            line: 0,
            message: format!("enum `{}` not found", scope.enum_name),
            snippet: String::new(),
        });
        return;
    };
    if variants.is_empty() {
        out.push(Diagnostic {
            rule: "R3",
            path: event.rel.clone(),
            line: 0,
            message: format!("enum `{}` has no parsed variants", scope.enum_name),
            snippet: String::new(),
        });
        return;
    }

    // The declared count const keeps humans honest when adding variants.
    match event.const_value(&scope.count_const) {
        Some((value, line)) if value as usize != variants.len() => {
            out.push(Diagnostic::at(
                "R3",
                event,
                line,
                format!(
                    "`{}` is {value} but `{}` has {} variants",
                    scope.count_const,
                    scope.enum_name,
                    variants.len()
                ),
            ));
        }
        None => out.push(Diagnostic {
            rule: "R3",
            path: event.rel.clone(),
            line: 0,
            message: format!(
                "`const {}` not found in the event file; declare it equal to the \
                 variant count",
                scope.count_const
            ),
            snippet: String::new(),
        }),
        _ => {}
    }

    // Wire names: one `Enum::Variant … => "literal"` arm per variant.
    let mut wire_names: Vec<(String, String, usize)> = Vec::new();
    for span in event.fns_named(&scope.name_fn) {
        for line_no in span.start..=span.end.min(event.code.len()) {
            let code = &event.code[line_no - 1];
            let marker = format!("{}::", scope.enum_name);
            let Some(pos) = code.find(&marker) else {
                continue;
            };
            let variant: String = code[pos + marker.len()..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if let Some((lit, _)) = event
                .string_literals_in(line_no, line_no)
                .into_iter()
                .next()
            {
                wire_names.push((variant, lit, line_no));
            }
        }
    }

    let jsonl_mask = fn_lines(exporter, &scope.jsonl_fn);
    let chrome_mask = fn_lines(exporter, &scope.chrome_fn);
    let chrome_has_catch_all = chrome_mask
        .iter()
        .any(|&l| exporter.code[l - 1].contains("_ =>"));

    for (variant, line) in &variants {
        let qualified = format!("{}::{}", scope.enum_name, variant);
        if !jsonl_mask
            .iter()
            .any(|&l| exporter.code[l - 1].contains(&qualified))
        {
            out.push(Diagnostic::at(
                "R3",
                event,
                *line,
                format!(
                    "variant `{variant}` has no arm in the JSONL exporter \
                     (`{}::{}`)",
                    exporter.rel, scope.jsonl_fn
                ),
            ));
        }
        let chrome_ok = chrome_has_catch_all
            || chrome_mask
                .iter()
                .any(|&l| exporter.code[l - 1].contains(&qualified));
        if !chrome_ok {
            out.push(Diagnostic::at(
                "R3",
                event,
                *line,
                format!(
                    "variant `{variant}` unhandled by the Perfetto exporter \
                     (`{}::{}`)",
                    exporter.rel, scope.chrome_fn
                ),
            ));
        }
        let named = wire_names.iter().find(|(v, _, _)| v == variant);
        match named {
            None => out.push(Diagnostic::at(
                "R3",
                event,
                *line,
                format!(
                    "variant `{variant}` has no wire name in `{}`",
                    scope.name_fn
                ),
            )),
            Some((_, wire, _)) => {
                let covered = fixtures.iter().any(|f| {
                    f.raw
                        .iter()
                        .any(|l| l.contains(&format!("\"{wire}\"")) || contains_word(l, variant))
                });
                if !covered {
                    out.push(Diagnostic::at(
                        "R3",
                        event,
                        *line,
                        format!(
                            "variant `{variant}` (wire name \"{wire}\") appears in no \
                             trace fixture test"
                        ),
                    ));
                }
            }
        }
    }
}

/// 1-based lines covered by functions with the given name.
fn fn_lines(file: &SourceFile, name: &str) -> Vec<usize> {
    let mut lines = Vec::new();
    for span in file.fns_named(name) {
        lines.extend(span.start..=span.end.min(file.code.len()));
    }
    lines
}

/// R4 scope: one config struct and its validation function.
#[derive(Debug, Clone)]
pub struct ConfigCoverageScope {
    /// File declaring the struct.
    pub path: String,
    /// Struct whose public fields are checked.
    pub struct_name: String,
    /// The validation function name (all same-named spans in the file
    /// count, so `impl` duplication is fine).
    pub validate_fn: String,
}

/// R4 — config coverage: every public field is either constrained by
/// `validate()` or reachable through a builder setter (`with_<field>` or a
/// builder method named after the field). Orphan fields silently drift.
pub fn r4_config_coverage(
    file: &SourceFile,
    scope: &ConfigCoverageScope,
    out: &mut Vec<Diagnostic>,
) {
    let Some(fields) = file.struct_fields(&scope.struct_name) else {
        out.push(Diagnostic {
            rule: "R4",
            path: file.rel.clone(),
            line: 0,
            message: format!("struct `{}` not found", scope.struct_name),
            snippet: String::new(),
        });
        return;
    };
    let validate_lines = fn_lines(file, &scope.validate_fn);
    if validate_lines.is_empty() {
        out.push(Diagnostic {
            rule: "R4",
            path: file.rel.clone(),
            line: 0,
            message: format!(
                "validation fn `{}` not found for `{}`",
                scope.validate_fn, scope.struct_name
            ),
            snippet: String::new(),
        });
        return;
    }
    for (field, line) in fields {
        let validated = validate_lines
            .iter()
            .any(|&l| contains_word(&file.code[l - 1], &field));
        let has_setter = file.fns_named(&format!("with_{field}")).next().is_some()
            || file.fns_named(&field).next().is_some();
        if !validated && !has_setter {
            out.push(Diagnostic::at(
                "R4",
                file,
                line,
                format!(
                    "field `{field}` of `{}` is neither referenced by `{}` nor \
                     settable via a builder method; wire it into validation or \
                     add `with_{field}`",
                    scope.struct_name, scope.validate_fn
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", src)
    }

    #[test]
    fn r1_flags_tokens_and_skips_tests() {
        let f = file(
            "fn hot() {\n    a.unwrap();\n    b.expect(\"x\");\n    panic!();\n}\n\
             #[cfg(test)]\nmod tests {\n    fn t() { z.unwrap(); }\n}\n",
        );
        let hot = HotPath {
            path: f.rel.clone(),
            functions: vec![],
            deny_indexing: false,
        };
        let mut out = Vec::new();
        r1_panic_freedom(&f, &hot, &mut out);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|d| d.rule == "R1"));
    }

    #[test]
    fn r1_function_scope_and_indexing() {
        let f = file("fn cold() { a.unwrap(); }\nfn hot(b: &[u8]) -> u8 { b[0] }\n");
        let hot = HotPath {
            path: f.rel.clone(),
            functions: vec!["hot".into()],
            deny_indexing: true,
        };
        let mut out = Vec::new();
        r1_panic_freedom(&f, &hot, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn r1_reports_missing_scope_functions() {
        let f = file("fn present() {}\n");
        let hot = HotPath {
            path: f.rel.clone(),
            functions: vec!["gone".into()],
            deny_indexing: false,
        };
        let mut out = Vec::new();
        r1_panic_freedom(&f, &hot, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`gone`"));
    }

    #[test]
    fn r2_flags_clock_rng_and_hash() {
        let f = file(
            "use std::time::Instant;\nuse std::collections::HashMap;\n\
             fn f() { let _ = rand::random::<u8>(); }\n",
        );
        let scope = DeterminismScope {
            hash_dir_prefixes: vec!["crates/x/".into()],
        };
        let mut out = Vec::new();
        r2_determinism(&f, &scope, &mut out);
        assert_eq!(out.len(), 3, "{out:?}");
    }

    #[test]
    fn r2_hash_ban_is_scoped() {
        let f = file("use std::collections::HashMap;\n");
        let scope = DeterminismScope {
            hash_dir_prefixes: vec!["crates/other/".into()],
        };
        let mut out = Vec::new();
        r2_determinism(&f, &scope, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn r5_flags_allocs_in_scoped_functions_only() {
        let f = file(
            "fn setup() -> Vec<u8> { Vec::with_capacity(8) }\n\
             fn hot(&mut self) {\n    let b = Box::new(3);\n    let v = vec![1, 2];\n\
             \n    self.ring.push_back(x);\n}\n",
        );
        let scope = ZeroAllocScope {
            path: f.rel.clone(),
            functions: vec!["hot".into()],
        };
        let mut out = Vec::new();
        r5_zero_alloc(&f, &scope, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "R5"));
        assert!(out.iter().any(|d| d.message.contains("`Box::new(`")));
        assert!(out.iter().any(|d| d.message.contains("`vec![`")));
    }

    #[test]
    fn r5_skips_tests_and_reports_missing_functions() {
        let f = file(
            "fn hot() { touch(); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { let _ = Vec::new(); }\n}\n",
        );
        let scope = ZeroAllocScope {
            path: f.rel.clone(),
            functions: vec!["hot".into(), "gone".into()],
        };
        let mut out = Vec::new();
        r5_zero_alloc(&f, &scope, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 0);
        assert!(out[0].message.contains("`gone`"));
    }

    #[test]
    fn r4_flags_orphan_fields() {
        let f = file(
            "pub struct Cfg {\n    pub checked: u8,\n    pub set: u8,\n    pub orphan: u8,\n}\n\
             impl Cfg {\n    pub fn with_set(mut self, v: u8) -> Self { self.set = v; self }\n\
             \n    pub fn validate(&self) { assert!(self.checked > 0); }\n}\n",
        );
        let scope = ConfigCoverageScope {
            path: f.rel.clone(),
            struct_name: "Cfg".into(),
            validate_fn: "validate".into(),
        };
        let mut out = Vec::new();
        r4_config_coverage(&f, &scope, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`orphan`"));
    }
}
