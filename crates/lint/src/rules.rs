//! The nine workspace rules. Each rule consumes the [`SourceFile`] model
//! (and, for the closure rules, the computed [`Graph`]) and appends
//! [`Diagnostic`]s; suppression against `lint-allow.toml` happens later in
//! the engine so every rule stays allowlist-agnostic.
//!
//! | Rule | Property |
//! |------|----------|
//! | R1   | panic-freedom in the hot-path closure (index-freedom where demanded) |
//! | R2   | determinism hygiene (no wall clock, no ambient RNG, no hash-ordered containers in deterministic crates) |
//! | R3   | trace parity (every `EventKind` variant exported and fixture-covered) |
//! | R4   | config coverage (every config field validated or builder-settable) |
//! | R5   | zero-alloc steady state in the alloc-demanding closure |
//! | R6   | bounded capacity (pushes into fixed-capacity structures guarded in the same fn) |
//! | R7   | sequence/epoch arithmetic hygiene (`wrapping_*`/`%` only on wire-seq fields) |
//! | R8   | no wildcard `_` arms in protocol-enum matches |
//! | R9   | lock discipline (no guard held across `step`/`advance`/`poll_round`; trace-before-registry order) |
//!
//! R1 and R5 scope themselves from the transitive hot-path closure
//! ([`crate::graph`]) rather than enumerated file/function lists; a
//! function is scanned iff it is reachable from a protocol entry point
//! whose demands include the relevant ban.

use crate::graph::Graph;
use crate::source::{contains_word, SourceFile};

/// One finding, addressed `path:line`, before allowlist filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id: `"R1"`..`"R4"`.
    pub rule: &'static str,
    /// File path relative to the analysis root.
    pub path: String,
    /// 1-based line (0 when the finding is about a whole file).
    pub line: usize,
    /// What is wrong and what the fix direction is.
    pub message: String,
    /// The offending source line, trimmed (empty for file-level findings).
    pub snippet: String,
}

impl Diagnostic {
    fn at(rule: &'static str, file: &SourceFile, line: usize, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            path: file.rel.clone(),
            line,
            message,
            snippet: file
                .raw
                .get(line.wrapping_sub(1))
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        }
    }
}

/// Tokens whose presence on a hot-path line is a panic risk.
const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// R1 + R5 over the hot-path closure: every function reachable from a
/// protocol entry point is scanned under the demands that reached it —
/// panic tokens (R1), index expressions (R1, byte-facing paths), and
/// allocating constructs (R5).
pub fn closure_rules(files: &[SourceFile], graph: &Graph, out: &mut Vec<Diagnostic>) {
    for member in &graph.closure {
        let sym = &graph.symbols[member.symbol];
        let file = &files[sym.file];
        let span = &file.fns[sym.fn_idx];
        let reached = match member.via {
            Some(v) => format!("reached via `{}`", graph.symbol_label(v)),
            None => "a protocol entry point".to_string(),
        };
        for line_no in span.start..=span.end.min(file.code.len()) {
            if file.is_test_line(line_no) {
                continue;
            }
            // Lines of a nested fn belong to the nested closure member.
            if file
                .innermost_fn(line_no)
                .is_some_and(|inner| (inner.start, inner.end) != (span.start, span.end))
            {
                continue;
            }
            let line = &file.code[line_no - 1];
            if member.demands.panic {
                for token in PANIC_TOKENS {
                    if line.contains(token) {
                        out.push(Diagnostic::at(
                            "R1",
                            file,
                            line_no,
                            format!(
                                "`{token}` in `{}` ({reached}); use a typed error or \
                                 `debug_assert!` + graceful recovery",
                                graph.symbol_label(member.symbol)
                            ),
                        ));
                    }
                }
            }
            if member.demands.index {
                for at in index_expr_positions(line) {
                    out.push(Diagnostic::at(
                        "R1",
                        file,
                        line_no,
                        format!(
                            "index expression at column {} in `{}` ({reached}), a total \
                             decode path; use `get`/checked accessors that return a \
                             typed error",
                            at + 1,
                            graph.symbol_label(member.symbol)
                        ),
                    ));
                }
            }
            if member.demands.alloc {
                for token in ALLOC_TOKENS {
                    if line.contains(token) {
                        out.push(Diagnostic::at(
                            "R5",
                            file,
                            line_no,
                            format!(
                                "allocating construct `{token}` in `{}` ({reached}), a \
                                 zero-alloc stepped hot path; reuse a preallocated \
                                 buffer or slab arena, or move the allocation to \
                                 setup/teardown",
                                graph.symbol_label(member.symbol)
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Byte offsets of `[` tokens that open an index expression: a `[`
/// immediately preceded by an identifier character, `)`, or `]`.
fn index_expr_positions(line: &str) -> Vec<usize> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    for (i, &c) in b.iter().enumerate() {
        if c != b'[' || i == 0 {
            continue;
        }
        let p = b[i - 1];
        if p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']' {
            out.push(i);
        }
    }
    out
}

/// Tokens whose presence on a hot-path line constructs a fresh heap
/// allocation (or a growable container destined to reallocate) per call.
/// Pushes into long-lived, high-water-mark containers are deliberately
/// *not* banned — those amortize to zero; what R5 hunts is per-event
/// churn: fresh boxes, fresh vectors, formatting, and `collect`.
const ALLOC_TOKENS: [&str; 18] = [
    "Box::new(",
    "Rc::new(",
    "Arc::new(",
    "vec![",
    "Vec::new(",
    "Vec::with_capacity(",
    "VecDeque::new(",
    "VecDeque::with_capacity(",
    "BTreeMap::new(",
    "BTreeSet::new(",
    "String::new(",
    "String::from(",
    "format!(",
    ".to_vec()",
    ".to_string()",
    ".to_owned()",
    ".collect()",
    ".collect::<",
];

/// R2 scope.
#[derive(Debug, Clone)]
pub struct DeterminismScope {
    /// Path prefixes (e.g. `crates/core/`) where hash-ordered containers
    /// are forbidden; seeded RNG and wall-clock bans apply to every
    /// scanned file.
    pub hash_dir_prefixes: Vec<String>,
}

/// R2 — determinism hygiene.
pub fn r2_determinism(file: &SourceFile, scope: &DeterminismScope, out: &mut Vec<Diagnostic>) {
    let hash_banned = scope
        .hash_dir_prefixes
        .iter()
        .any(|p| file.rel.starts_with(p.as_str()));
    for (idx, line) in file.code.iter().enumerate() {
        let line_no = idx + 1;
        if file.is_test_line(line_no) {
            continue;
        }
        for clock in ["Instant", "SystemTime"] {
            if contains_word(line, clock) {
                out.push(Diagnostic::at(
                    "R2",
                    file,
                    line_no,
                    format!(
                        "wall-clock type `{clock}` in the deterministic stack; use \
                         `Cycle` time, or add a justified allowlist entry for \
                         harness timing / transport deadlines"
                    ),
                ));
            }
        }
        for rng in ["thread_rng", "rand::random"] {
            if line.contains(rng) {
                out.push(Diagnostic::at(
                    "R2",
                    file,
                    line_no,
                    format!("ambient RNG `{rng}`; use the seeded `nifdy-sim` streams"),
                ));
            }
        }
        if hash_banned {
            for map in ["HashMap", "HashSet"] {
                if contains_word(line, map) {
                    out.push(Diagnostic::at(
                        "R2",
                        file,
                        line_no,
                        format!(
                            "default-hasher `{map}` in a deterministic crate; use \
                             `BTreeMap`/`BTreeSet` (or sorted iteration) so order \
                             never depends on the hasher"
                        ),
                    ));
                }
            }
        }
    }
}

/// R3 scope: the event vocabulary and its exporters/fixtures.
#[derive(Debug, Clone)]
pub struct TraceParityScope {
    /// File declaring the event enum.
    pub event_file: String,
    /// The enum name (e.g. `EventKind`).
    pub enum_name: String,
    /// Function mapping variants to stable wire names (e.g. `name`).
    pub name_fn: String,
    /// A `const` in the event file that must equal the variant count.
    pub count_const: String,
    /// The exporter file (JSONL + Perfetto live together).
    pub exporter_file: String,
    /// Per-variant JSONL field function (no catch-all allowed).
    pub jsonl_fn: String,
    /// The Perfetto/Chrome exporter function.
    pub chrome_fn: String,
    /// Test files that together must mention every wire name.
    pub fixture_files: Vec<String>,
}

/// R3 — trace parity across exporters and fixtures.
pub fn r3_trace_parity(
    event: &SourceFile,
    exporter: &SourceFile,
    fixtures: &[SourceFile],
    scope: &TraceParityScope,
    out: &mut Vec<Diagnostic>,
) {
    let Some(variants) = event.enum_variants(&scope.enum_name) else {
        out.push(Diagnostic {
            rule: "R3",
            path: event.rel.clone(),
            line: 0,
            message: format!("enum `{}` not found", scope.enum_name),
            snippet: String::new(),
        });
        return;
    };
    if variants.is_empty() {
        out.push(Diagnostic {
            rule: "R3",
            path: event.rel.clone(),
            line: 0,
            message: format!("enum `{}` has no parsed variants", scope.enum_name),
            snippet: String::new(),
        });
        return;
    }

    // The declared count const keeps humans honest when adding variants.
    match event.const_value(&scope.count_const) {
        Some((value, line)) if value as usize != variants.len() => {
            out.push(Diagnostic::at(
                "R3",
                event,
                line,
                format!(
                    "`{}` is {value} but `{}` has {} variants",
                    scope.count_const,
                    scope.enum_name,
                    variants.len()
                ),
            ));
        }
        None => out.push(Diagnostic {
            rule: "R3",
            path: event.rel.clone(),
            line: 0,
            message: format!(
                "`const {}` not found in the event file; declare it equal to the \
                 variant count",
                scope.count_const
            ),
            snippet: String::new(),
        }),
        _ => {}
    }

    // Wire names: one `Enum::Variant … => "literal"` arm per variant.
    let mut wire_names: Vec<(String, String, usize)> = Vec::new();
    for span in event.fns_named(&scope.name_fn) {
        for line_no in span.start..=span.end.min(event.code.len()) {
            let code = &event.code[line_no - 1];
            let marker = format!("{}::", scope.enum_name);
            let Some(pos) = code.find(&marker) else {
                continue;
            };
            let variant: String = code[pos + marker.len()..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if let Some((lit, _)) = event
                .string_literals_in(line_no, line_no)
                .into_iter()
                .next()
            {
                wire_names.push((variant, lit, line_no));
            }
        }
    }

    let jsonl_mask = fn_lines(exporter, &scope.jsonl_fn);
    let chrome_mask = fn_lines(exporter, &scope.chrome_fn);
    let chrome_has_catch_all = chrome_mask
        .iter()
        .any(|&l| exporter.code[l - 1].contains("_ =>"));

    for (variant, line) in &variants {
        let qualified = format!("{}::{}", scope.enum_name, variant);
        if !jsonl_mask
            .iter()
            .any(|&l| exporter.code[l - 1].contains(&qualified))
        {
            out.push(Diagnostic::at(
                "R3",
                event,
                *line,
                format!(
                    "variant `{variant}` has no arm in the JSONL exporter \
                     (`{}::{}`)",
                    exporter.rel, scope.jsonl_fn
                ),
            ));
        }
        let chrome_ok = chrome_has_catch_all
            || chrome_mask
                .iter()
                .any(|&l| exporter.code[l - 1].contains(&qualified));
        if !chrome_ok {
            out.push(Diagnostic::at(
                "R3",
                event,
                *line,
                format!(
                    "variant `{variant}` unhandled by the Perfetto exporter \
                     (`{}::{}`)",
                    exporter.rel, scope.chrome_fn
                ),
            ));
        }
        let named = wire_names.iter().find(|(v, _, _)| v == variant);
        match named {
            None => out.push(Diagnostic::at(
                "R3",
                event,
                *line,
                format!(
                    "variant `{variant}` has no wire name in `{}`",
                    scope.name_fn
                ),
            )),
            Some((_, wire, _)) => {
                let covered = fixtures.iter().any(|f| {
                    f.raw
                        .iter()
                        .any(|l| l.contains(&format!("\"{wire}\"")) || contains_word(l, variant))
                });
                if !covered {
                    out.push(Diagnostic::at(
                        "R3",
                        event,
                        *line,
                        format!(
                            "variant `{variant}` (wire name \"{wire}\") appears in no \
                             trace fixture test"
                        ),
                    ));
                }
            }
        }
    }
}

/// 1-based lines covered by functions with the given name.
fn fn_lines(file: &SourceFile, name: &str) -> Vec<usize> {
    let mut lines = Vec::new();
    for span in file.fns_named(name) {
        lines.extend(span.start..=span.end.min(file.code.len()));
    }
    lines
}

/// R4 scope: one config struct and its validation function.
#[derive(Debug, Clone)]
pub struct ConfigCoverageScope {
    /// File declaring the struct.
    pub path: String,
    /// Struct whose public fields are checked.
    pub struct_name: String,
    /// The validation function name (all same-named spans in the file
    /// count, so `impl` duplication is fine).
    pub validate_fn: String,
}

/// R4 — config coverage: every public field is either constrained by
/// `validate()` or reachable through a builder setter (`with_<field>` or a
/// builder method named after the field). Orphan fields silently drift.
pub fn r4_config_coverage(
    file: &SourceFile,
    scope: &ConfigCoverageScope,
    out: &mut Vec<Diagnostic>,
) {
    let Some(fields) = file.struct_fields(&scope.struct_name) else {
        out.push(Diagnostic {
            rule: "R4",
            path: file.rel.clone(),
            line: 0,
            message: format!("struct `{}` not found", scope.struct_name),
            snippet: String::new(),
        });
        return;
    };
    let validate_lines = fn_lines(file, &scope.validate_fn);
    if validate_lines.is_empty() {
        out.push(Diagnostic {
            rule: "R4",
            path: file.rel.clone(),
            line: 0,
            message: format!(
                "validation fn `{}` not found for `{}`",
                scope.validate_fn, scope.struct_name
            ),
            snippet: String::new(),
        });
        return;
    }
    for (field, line) in fields {
        let validated = validate_lines
            .iter()
            .any(|&l| contains_word(&file.code[l - 1], &field));
        let has_setter = file.fns_named(&format!("with_{field}")).next().is_some()
            || file.fns_named(&field).next().is_some();
        if !validated && !has_setter {
            out.push(Diagnostic::at(
                "R4",
                file,
                line,
                format!(
                    "field `{field}` of `{}` is neither referenced by `{}` nor \
                     settable via a builder method; wire it into validation or \
                     add `with_{field}`",
                    scope.struct_name, scope.validate_fn
                ),
            ));
        }
    }
}

/// Mutating calls that grow a container.
const GROW_TOKENS: [&str; 4] = [".push(", ".push_back(", ".push_front(", ".insert("];

/// Evidence on a line that a push is capacity-guarded: an explicit bound
/// check, an eviction keeping the high-water mark, or a debug assertion.
const GUARD_TOKENS: [&str; 9] = [
    ".len()",
    ".capacity()",
    "is_full",
    ".pop(",
    ".pop_front(",
    ".pop_back(",
    ".truncate(",
    ".swap_remove(",
    "debug_assert",
];

/// R6 — bounded capacity: inside the hot-path closure, every push/insert
/// into a fixed-capacity structure (a field initialized or assigned with
/// `with_capacity`) must share its fn with a capacity guard that mentions
/// the same field.
pub fn r6_bounded_capacity(files: &[SourceFile], graph: &Graph, out: &mut Vec<Diagnostic>) {
    // Fixed-capacity fields per file: `name: Ty::with_capacity(…)` struct
    // literal inits and `self.name = Ty::with_capacity(…)` assignments.
    let mut fixed: Vec<Vec<String>> = Vec::with_capacity(files.len());
    for file in files {
        let mut fields: Vec<String> = Vec::new();
        for (idx, line) in file.code.iter().enumerate() {
            if file.is_test_line(idx + 1) || !line.contains("with_capacity(") {
                continue;
            }
            let trimmed = line.trim_start();
            let name = if let Some(rest) = trimmed.strip_prefix("self.") {
                let ident: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                rest[ident.len()..]
                    .trim_start()
                    .starts_with('=')
                    .then_some(ident)
            } else {
                let ident: String = trimmed
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                trimmed[ident.len()..].starts_with(':').then_some(ident)
            };
            if let Some(name) = name {
                if !name.is_empty() && !fields.contains(&name) {
                    fields.push(name);
                }
            }
        }
        fixed.push(fields);
    }

    for member in &graph.closure {
        let sym = &graph.symbols[member.symbol];
        let file = &files[sym.file];
        let span = &file.fns[sym.fn_idx];
        let fields = &fixed[sym.file];
        if fields.is_empty() {
            continue;
        }
        for line_no in span.start..=span.end.min(file.code.len()) {
            if file.is_test_line(line_no) {
                continue;
            }
            if file
                .innermost_fn(line_no)
                .is_some_and(|inner| (inner.start, inner.end) != (span.start, span.end))
            {
                continue;
            }
            let line = &file.code[line_no - 1];
            for field in fields {
                let grows = GROW_TOKENS
                    .iter()
                    .any(|t| line.contains(&format!("{field}{t}")));
                if !grows {
                    continue;
                }
                let guarded = (span.start..=span.end.min(file.code.len())).any(|l| {
                    let guard_line = &file.code[l - 1];
                    contains_word(guard_line, field)
                        && GUARD_TOKENS.iter().any(|g| guard_line.contains(g))
                });
                if !guarded {
                    out.push(Diagnostic::at(
                        "R6",
                        file,
                        line_no,
                        format!(
                            "unguarded growth of fixed-capacity field `{field}` in \
                             `{}`; dominate the push with a capacity check \
                             (`len() < cap`, eviction, or `debug_assert!`) in the \
                             same fn",
                            graph.symbol_label(member.symbol)
                        ),
                    ));
                }
            }
        }
    }
}

/// R7 scope: the crates whose structs carry wire sequence/epoch state.
#[derive(Debug, Clone)]
pub struct SeqHygieneScope {
    /// Crate names scanned for wire-seq fields and their arithmetic.
    pub crates: Vec<String>,
}

/// Whether a struct field looks like wire sequence/epoch state: a narrow
/// unsigned integer named like a sequence or epoch counter. 64-bit fields
/// are absolute counters that cannot wrap in practice and are exempt.
fn is_wire_seq_field(name: &str, ty: &str) -> bool {
    let narrow = matches!(ty, "u8" | "u16" | "u32");
    let seq_like = name == "seq"
        || name.ends_with("_seq")
        || name == "epoch"
        || name.ends_with("_epoch")
        || name.starts_with("epoch_");
    narrow && seq_like
}

/// R7 — sequence/epoch arithmetic hygiene: wire-seq fields wrap mod the
/// sequence space, so bare `+`/`-` on them is a correctness bug waiting
/// for a rollover. Lines already using `wrapping_*`, `checked_*`,
/// `saturating_*`, or an explicit `%` are fine.
pub fn r7_seq_hygiene(files: &[SourceFile], scope_files: &[usize], out: &mut Vec<Diagnostic>) {
    // Collect the wire-seq vocabulary across the scoped files first, so a
    // field declared in `core` is tracked when used in `wire`.
    let mut tracked: Vec<String> = Vec::new();
    for &fi in scope_files {
        for (_, field, ty, line) in files[fi].struct_fields_all() {
            if files[fi].is_test_line(line) {
                continue;
            }
            if is_wire_seq_field(&field, &ty) && !tracked.contains(&field) {
                tracked.push(field);
            }
        }
    }
    if tracked.is_empty() {
        return;
    }
    for &fi in scope_files {
        let file = &files[fi];
        for (idx, line) in file.code.iter().enumerate() {
            let line_no = idx + 1;
            if file.is_test_line(line_no) {
                continue;
            }
            if line.contains("wrapping_")
                || line.contains("checked_")
                || line.contains("saturating_")
                || line.contains('%')
            {
                continue;
            }
            for field in &tracked {
                if !contains_word(line, field) {
                    continue;
                }
                if bare_arith_on(line, field) {
                    out.push(Diagnostic::at(
                        "R7",
                        file,
                        line_no,
                        format!(
                            "bare `+`/`-` arithmetic on wire-seq field `{field}`; \
                             use `wrapping_*` or take the result mod the sequence \
                             space explicitly"
                        ),
                    ));
                    break;
                }
            }
        }
    }
}

/// Whether `word` appears on `line` directly adjacent (modulo spaces) to a
/// bare `+` or `-` operator (including `+=`/`-=`), excluding `->` arrows.
fn bare_arith_on(line: &str, word: &str) -> bool {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let at = from + pos;
        let end = at + word.len();
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !line[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            // Look at the nearest non-space byte on each side.
            let mut i = end;
            while i < b.len() && b[i] == b' ' {
                i += 1;
            }
            if i < b.len() && (b[i] == b'+' || (b[i] == b'-' && b.get(i + 1) != Some(&b'>'))) {
                return true;
            }
            // `x + field` / `x - field` / unary minus all count. An `->`
            // arrow never lands here: its `>` would be the nearest byte.
            let mut j = at;
            while j > 0 && b[j - 1] == b' ' {
                j -= 1;
            }
            if j > 0 && (b[j - 1] == b'+' || b[j - 1] == b'-') {
                return true;
            }
        }
        from = at + word.len().max(1);
    }
    false
}

/// R8 scope: protocol enums whose matches must stay exhaustive.
#[derive(Debug, Clone)]
pub struct WildcardScope {
    /// Crate names the rule applies in (the protocol crates).
    pub crates: Vec<String>,
    /// Enum names (`WireFrame`, `EventKind`, …).
    pub enums: Vec<String>,
}

/// R8 — no wildcard arms in protocol-enum matches: a `_ =>` arm in a
/// `match` over a protocol enum silently absorbs future variants; new
/// variants must fail loudly at compile (or lint) time instead.
pub fn r8_no_wildcard(file: &SourceFile, scope: &WildcardScope, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.code.iter().enumerate() {
        if file.is_test_line(idx + 1) || !contains_word(line, "match") {
            continue;
        }
        // Walk the match block: arm patterns sit at relative depth 1.
        let mut rel = 0usize;
        let mut entered = false;
        let mut names_protocol_enum = false;
        let mut wildcard_lines: Vec<usize> = Vec::new();
        'block: for (j, body_line) in file.code.iter().enumerate().skip(idx) {
            if entered && rel == 1 && j > idx {
                let trimmed = body_line.trim_start();
                let pattern = trimmed.split("=>").next().unwrap_or(trimmed);
                if scope
                    .enums
                    .iter()
                    .any(|e| pattern.contains(&format!("{e}::")))
                {
                    names_protocol_enum = true;
                }
                if trimmed.starts_with("_ =>")
                    || trimmed.starts_with("_ if ")
                    || trimmed.starts_with("| _ =>")
                {
                    wildcard_lines.push(j + 1);
                }
            }
            for ch in body_line.chars() {
                match ch {
                    '{' => {
                        rel += 1;
                        entered = true;
                    }
                    '}' => {
                        rel = rel.saturating_sub(1);
                        if entered && rel == 0 {
                            break 'block;
                        }
                    }
                    _ => {}
                }
            }
        }
        if names_protocol_enum {
            for line_no in wildcard_lines {
                out.push(Diagnostic::at(
                    "R8",
                    file,
                    line_no,
                    format!(
                        "wildcard `_` arm in a match over a protocol enum \
                         ({}); enumerate the remaining variants so new ones \
                         fail loudly",
                        scope.enums.join("/")
                    ),
                ));
            }
        }
    }
}

/// Calls that step protocol state machines; holding a `Mutex` guard
/// across one risks deadlock (step paths may take the same locks) and
/// couples lock hold time to protocol work.
const STEPPED_CALLS: [&str; 4] = [".step(", ".advance(", ".advance_to(", ".poll_round("];

/// R9 — lock discipline in the `Send` stack.
///
/// * no `Mutex` guard bound with `let` may stay live across a
///   `step`/`advance`/`poll_round` call;
/// * within one fn, trace/recorder locks acquire before registry/metrics
///   locks (the workspace's canonical order), so the two families can
///   never deadlock against each other.
pub fn r9_lock_discipline(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for span in &file.fns {
        if span.end <= span.start || file.is_test_line(span.start) {
            continue;
        }
        // Live guards: (binding, bound-at depth, bound-at line).
        let mut guards: Vec<(String, usize, usize)> = Vec::new();
        let mut first_trace: Option<usize> = None;
        let mut first_registry: Option<usize> = None;
        for line_no in span.start..=span.end.min(file.code.len()) {
            let line = &file.code[line_no - 1];
            let depth = file.depths[line_no - 1];
            guards.retain(|(name, bound_depth, _)| {
                depth >= *bound_depth && !line.contains(&format!("drop({name})"))
            });
            if line.contains(".lock()") {
                let receiver = lock_receiver(line);
                let class = lock_class(&receiver);
                match class {
                    Some(LockClass::Trace) => {
                        first_trace.get_or_insert(line_no);
                        if first_registry.is_some() && first_trace > first_registry {
                            out.push(Diagnostic::at(
                                "R9",
                                file,
                                line_no,
                                format!(
                                    "lock-order inversion in `{}`: registry/metrics \
                                     lock taken before this trace/recorder lock; the \
                                     canonical order is trace first",
                                    span.name
                                ),
                            ));
                        }
                    }
                    Some(LockClass::Registry) => {
                        first_registry.get_or_insert(line_no);
                    }
                    None => {}
                }
                let trimmed = line.trim_start();
                if let Some(rest) = trimmed.strip_prefix("let ") {
                    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() && name != "_" {
                        guards.push((name, depth, line_no));
                    }
                }
            }
            for call in STEPPED_CALLS {
                if line.contains(call) && !line.contains(".lock()") {
                    if let Some((name, _, bound_at)) = guards.first() {
                        out.push(Diagnostic::at(
                            "R9",
                            file,
                            line_no,
                            format!(
                                "Mutex guard `{name}` (bound line {bound_at}) held \
                                 across `{}` in `{}`; drop the guard before stepping",
                                call.trim_start_matches('.').trim_end_matches('('),
                                span.name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

enum LockClass {
    Trace,
    Registry,
}

/// The dotted receiver chain before `.lock()` on a line.
fn lock_receiver(line: &str) -> String {
    let Some(pos) = line.find(".lock()") else {
        return String::new();
    };
    let b = line.as_bytes();
    let mut start = pos;
    while start > 0 {
        let p = b[start - 1];
        if p.is_ascii_alphanumeric() || p == b'_' || p == b'.' {
            start -= 1;
        } else {
            break;
        }
    }
    line[start..pos].to_string()
}

fn lock_class(receiver: &str) -> Option<LockClass> {
    let lower = receiver.to_lowercase();
    if lower.contains("trace") || lower.contains("rec") {
        Some(LockClass::Trace)
    } else if lower.contains("registry") || lower.contains("metric") {
        Some(LockClass::Registry)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Demands, EntryPoint};

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", src)
    }

    fn entry(name: &str, demands: Demands) -> EntryPoint {
        EntryPoint {
            type_name: None,
            fn_name: name.to_string(),
            demands,
        }
    }

    const PANIC_ONLY: Demands = Demands {
        panic: true,
        index: false,
        alloc: false,
    };
    const ALLOC_ONLY: Demands = Demands {
        panic: false,
        index: false,
        alloc: true,
    };

    #[test]
    fn r1_flags_tokens_in_closure_and_skips_tests() {
        let f = file(
            "fn hot() {\n    a.unwrap();\n    b.expect(\"x\");\n    helper();\n}\n\
             fn helper() { panic!(); }\n\
             fn cold() { z.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { z.unwrap(); }\n}\n",
        );
        let files = [f];
        let graph = Graph::build(&files, &|_| true, &[entry("hot", PANIC_ONLY)]);
        let mut out = Vec::new();
        closure_rules(&files, &graph, &mut out);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "R1"));
        assert!(
            out.iter().any(|d| d.message.contains("`helper`")),
            "transitive callee scanned: {out:?}"
        );
        assert!(!out.iter().any(|d| d.snippet.contains("z.unwrap")));
    }

    #[test]
    fn r1_index_demand_is_per_entry() {
        let f = file("fn total(b: &[u8]) -> u8 { b[0] }\nfn stepped(b: &[u8]) -> u8 { b[1] }\n");
        let files = [f];
        let graph = Graph::build(
            &files,
            &|_| true,
            &[
                entry(
                    "total",
                    Demands {
                        panic: true,
                        index: true,
                        alloc: false,
                    },
                ),
                entry("stepped", PANIC_ONLY),
            ],
        );
        let mut out = Vec::new();
        closure_rules(&files, &graph, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn unmatched_entry_is_reported_by_the_graph() {
        let f = file("fn present() {}\n");
        let files = [f];
        let graph = Graph::build(&files, &|_| true, &[entry("gone", PANIC_ONLY)]);
        assert_eq!(graph.unmatched_entries, vec!["gone".to_string()]);
    }

    #[test]
    fn r2_flags_clock_rng_and_hash() {
        let f = file(
            "use std::time::Instant;\nuse std::collections::HashMap;\n\
             fn f() { let _ = rand::random::<u8>(); }\n",
        );
        let scope = DeterminismScope {
            hash_dir_prefixes: vec!["crates/x/".into()],
        };
        let mut out = Vec::new();
        r2_determinism(&f, &scope, &mut out);
        assert_eq!(out.len(), 3, "{out:?}");
    }

    #[test]
    fn r2_hash_ban_is_scoped() {
        let f = file("use std::collections::HashMap;\n");
        let scope = DeterminismScope {
            hash_dir_prefixes: vec!["crates/other/".into()],
        };
        let mut out = Vec::new();
        r2_determinism(&f, &scope, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn r5_flags_allocs_in_alloc_demanding_closure_only() {
        let f = file(
            "fn setup() -> Vec<u8> { Vec::with_capacity(8) }\n\
             fn hot(&mut self) {\n    let b = Box::new(3);\n    let v = vec![1, 2];\n\
             \n    self.ring.push_back(x);\n}\n",
        );
        let files = [f];
        let graph = Graph::build(&files, &|_| true, &[entry("hot", ALLOC_ONLY)]);
        let mut out = Vec::new();
        closure_rules(&files, &graph, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "R5"));
        assert!(out.iter().any(|d| d.message.contains("`Box::new(`")));
        assert!(out.iter().any(|d| d.message.contains("`vec![`")));
    }

    #[test]
    fn r6_unguarded_push_to_fixed_capacity_field() {
        let f = file(
            "struct S { ring: VecDeque<u8> }\n\
             impl S {\n\
                 fn new() -> S {\n\
                     S {\n            ring: VecDeque::with_capacity(8),\n        }\n\
                 }\n\
                 fn hot(&mut self, x: u8) {\n        self.ring.push_back(x);\n    }\n\
                 fn guarded(&mut self, x: u8) {\n\
                     if self.ring.len() < 8 {\n            self.ring.push_back(x);\n        }\n\
                 }\n\
             }\n",
        );
        let files = [f];
        let graph = Graph::build(
            &files,
            &|_| true,
            &[
                EntryPoint {
                    type_name: Some("S".into()),
                    fn_name: "hot".into(),
                    demands: PANIC_ONLY,
                },
                EntryPoint {
                    type_name: Some("S".into()),
                    fn_name: "guarded".into(),
                    demands: PANIC_ONLY,
                },
            ],
        );
        let mut out = Vec::new();
        r6_bounded_capacity(&files, &graph, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "R6");
        assert!(out[0].message.contains("`ring`"));
        assert!(out[0].message.contains("`S::hot`"));
    }

    #[test]
    fn r7_bare_arith_on_seq_fields() {
        let f = file(
            "struct D {\n    seq: u8,\n    next_epoch: u16,\n    total: u64,\n}\n\
             impl D {\n\
                 fn bump(&mut self) {\n\
                     self.seq += 1;\n\
                     self.seq = self.seq.wrapping_add(1);\n\
                     self.next_epoch = self.next_epoch + 1;\n\
                     self.total += 1;\n\
                 }\n\
             }\n",
        );
        let files = [f];
        let mut out = Vec::new();
        r7_seq_hygiene(&files, &[0], &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "R7"));
        assert_eq!(out[0].line, 8);
        assert_eq!(out[1].line, 10);
    }

    #[test]
    fn r7_modulo_and_wrapping_lines_are_exempt() {
        let f = file(
            "struct D {\n    seq: u8,\n}\n\
             impl D {\n\
                 fn ok(&mut self) {\n\
                     self.seq = (self.seq + 1) % 64;\n\
                     self.seq = self.seq.wrapping_sub(2);\n\
                 }\n\
             }\n",
        );
        let files = [f];
        let mut out = Vec::new();
        r7_seq_hygiene(&files, &[0], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r8_wildcard_on_protocol_enum() {
        let f = file(
            "fn classify(w: Wire) -> u8 {\n\
                 match w {\n\
                     Wire::Data { .. } => 0,\n\
                     Wire::Ack { .. } => 1,\n\
                     _ => 9,\n\
                 }\n\
             }\n\
             fn other(n: u8) -> u8 {\n\
                 match n {\n\
                     0 => 1,\n\
                     _ => 0,\n\
                 }\n\
             }\n",
        );
        let scope = WildcardScope {
            crates: vec!["x".into()],
            enums: vec!["Wire".into()],
        };
        let mut out = Vec::new();
        r8_no_wildcard(&f, &scope, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "R8");
        assert_eq!(out[0].line, 5);
    }

    #[test]
    fn r9_guard_across_step_and_lock_order() {
        let f = file(
            "fn pump(&mut self) {\n\
                 let stats = self.registry.lock().unwrap();\n\
                 self.fabric.step();\n\
             }\n\
             fn inverted(&mut self) {\n\
                 {\n\
                     let m = self.metric_registry.lock().unwrap();\n\
                 }\n\
                 let t = self.trace_handle.lock().unwrap();\n\
             }\n\
             fn clean(&mut self) {\n\
                 {\n\
                     let g = self.registry.lock().unwrap();\n\
                 }\n\
                 self.fabric.step();\n\
             }\n",
        );
        let mut out = Vec::new();
        r9_lock_discipline(&f, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("`stats`"));
        assert!(out[0].message.contains("held"));
        assert!(out[1].message.contains("lock-order inversion"));
    }

    #[test]
    fn r9_dropped_guard_is_fine() {
        let f = file(
            "fn pump(&mut self) {\n\
                 let stats = self.registry.lock().unwrap();\n\
                 drop(stats);\n\
                 self.fabric.step();\n\
             }\n",
        );
        let mut out = Vec::new();
        r9_lock_discipline(&f, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r4_flags_orphan_fields() {
        let f = file(
            "pub struct Cfg {\n    pub checked: u8,\n    pub set: u8,\n    pub orphan: u8,\n}\n\
             impl Cfg {\n    pub fn with_set(mut self, v: u8) -> Self { self.set = v; self }\n\
             \n    pub fn validate(&self) { assert!(self.checked > 0); }\n}\n",
        );
        let scope = ConfigCoverageScope {
            path: f.rel.clone(),
            struct_name: "Cfg".into(),
            validate_fn: "validate".into(),
        };
        let mut out = Vec::new();
        r4_config_coverage(&f, &scope, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`orphan`"));
    }
}
