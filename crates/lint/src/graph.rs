//! Per-crate symbol tables, a conservative name-resolution call graph, and
//! the transitive hot-path closure.
//!
//! The closure replaces the old hand-enumerated R1/R5 scopes: instead of
//! listing hot files and function names (which went stale twice), the
//! engine seeds a worklist from protocol **entry points** (`NifdyUnit::step`,
//! `Fabric::step`, the wire codec, the endpoint poll paths,
//! `NifdyNode::poll_round`) and walks every function conservatively
//! reachable from them. Each entry point carries a set of **demands** —
//! panic-freedom, index-freedom, alloc-freedom — and a demand applies to
//! every function in that entry's closure.
//!
//! # Soundness model
//!
//! Resolution is name-based and deliberately over-approximates:
//!
//! * `self.f(…)` resolves to every method `f` on the caller's impl type
//!   (any impl block, any file), falling back to every workspace method
//!   named `f` when the type declares none (trait default methods).
//! * `x.f(…)` resolves to **every** workspace method named `f` — trait
//!   dispatch, future `Nic` implementations, and shadowed inherent
//!   methods are all covered without type inference.
//! * `Type::f(…)` and `Trait::f(…)` resolve through impl blocks of that
//!   type and impl blocks of that trait; `Self::f(…)` uses the caller's
//!   impl type.
//! * `f(…)` resolves to every free function named `f`; module-qualified
//!   calls (`codec::decode(…)`) drop the module path and resolve the
//!   same way.
//!
//! False edges are possible (a common method name pulls in unrelated
//! impls); missing edges are limited to function pointers/closures passed
//! as values and macro-generated calls. The closure is therefore a sound
//! *scope* for lexical rules — it may scan too much, not too little —
//! except for calls hidden behind `fn`-pointer indirection, which the
//! workspace style avoids on datapaths.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use nifdy_trace::json::Json;

use crate::source::SourceFile;

/// Stable schema version of the closure JSON artifact.
pub const CLOSURE_SCHEMA: u64 = 1;

/// Which lexical bans apply to a function in the closure. Demands
/// propagate unchanged along call edges from the entry that seeded them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Demands {
    /// No `unwrap`/`expect`/`panic!`/`unreachable!`/… (R1).
    pub panic: bool,
    /// No `x[i]` index expressions (R1, byte-facing decode paths).
    pub index: bool,
    /// No fresh heap allocation (R5, stepped steady-state paths).
    pub alloc: bool,
}

impl Demands {
    /// Union in `other`; returns whether any new bit appeared.
    fn absorb(&mut self, other: Demands) -> bool {
        let before = *self;
        self.panic |= other.panic;
        self.index |= other.index;
        self.alloc |= other.alloc;
        *self != before
    }

    /// Short display form, e.g. `panic+index`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.panic {
            parts.push("panic");
        }
        if self.index {
            parts.push("index");
        }
        if self.alloc {
            parts.push("alloc");
        }
        parts.join("+")
    }
}

/// One closure seed: a function the protocol surface exposes, plus the
/// demands its callees inherit.
#[derive(Debug, Clone)]
pub struct EntryPoint {
    /// Impl type owning the fn (`None` for a free function).
    pub type_name: Option<String>,
    /// Function name.
    pub fn_name: String,
    /// Demands seeded into this entry's closure.
    pub demands: Demands,
}

impl EntryPoint {
    /// `Type::fn` or `fn` for display.
    pub fn label(&self) -> String {
        match &self.type_name {
            Some(t) => format!("{t}::{}", self.fn_name),
            None => self.fn_name.clone(),
        }
    }
}

/// One function in the symbol table.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Index into the analyzed file slice.
    pub file: usize,
    /// Index into that file's `fns`.
    pub fn_idx: usize,
    /// Crate the file belongs to (`crates/<name>/src/…`).
    pub crate_name: String,
    /// Function name.
    pub name: String,
    /// Enclosing impl block's type, if any.
    pub impl_type: Option<String>,
    /// Enclosing impl block's trait, if any (`impl Trait for Type`).
    pub impl_trait: Option<String>,
    /// Whether the first parameter is a `self` receiver.
    pub has_self: bool,
}

/// One function reached by the closure.
#[derive(Debug, Clone)]
pub struct ClosureFn {
    /// Index into [`Graph::symbols`].
    pub symbol: usize,
    /// Union of demands over every path that reaches this fn.
    pub demands: Demands,
    /// BFS depth of first discovery (0 = entry point).
    pub depth: usize,
    /// Symbol that first reached this fn (`None` for entry points).
    pub via: Option<usize>,
}

/// The symbol table, call edges, and computed closure.
#[derive(Debug)]
pub struct Graph {
    /// Every non-test function in the included crates.
    pub symbols: Vec<Symbol>,
    /// Call edges: `edges[s]` lists callee symbol indices, deduplicated.
    pub edges: Vec<Vec<usize>>,
    /// The hot-path closure, sorted by `(file, fn start line)`.
    pub closure: Vec<ClosureFn>,
    /// Entry points that matched no symbol — config drift, fatal.
    pub unmatched_entries: Vec<String>,
    /// Crates contributing at least one closure fn.
    pub crates_in_closure: BTreeSet<String>,
}

/// Call-site classes extracted from one line of code.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CallSite {
    /// `f(…)` or `module::f(…)`.
    Free(String),
    /// `x.f(…)` for a non-`self` receiver.
    Method(String),
    /// `self.f(…)`.
    SelfMethod(String),
    /// `Type::f(…)`, `Trait::f(…)`, or `Self::f(…)`.
    Qualified(String, String),
}

/// The crate name of a `crates/<name>/src/…` path.
pub fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

impl Graph {
    /// Builds the symbol table and call edges over every file whose crate
    /// `include` accepts, then runs the closure from `entries`.
    pub fn build(
        files: &[SourceFile],
        include: &dyn Fn(&str) -> bool,
        entries: &[EntryPoint],
    ) -> Graph {
        let mut symbols = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            let Some(crate_name) = crate_of(&file.rel) else {
                continue;
            };
            if !include(crate_name) {
                continue;
            }
            for (fn_idx, span) in file.fns.iter().enumerate() {
                if file.is_test_line(span.start) {
                    continue;
                }
                let enclosing = file.impl_at(span.start);
                symbols.push(Symbol {
                    file: file_idx,
                    fn_idx,
                    crate_name: crate_name.to_string(),
                    name: span.name.clone(),
                    impl_type: enclosing.map(|i| i.type_name.clone()),
                    impl_trait: enclosing.and_then(|i| i.trait_name.clone()),
                    has_self: span.has_self(),
                });
            }
        }

        // Resolution indices.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_fns: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_trait: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (idx, sym) in symbols.iter().enumerate() {
            if sym.has_self {
                methods.entry(&sym.name).or_default().push(idx);
            }
            if sym.impl_type.is_none() {
                free_fns.entry(&sym.name).or_default().push(idx);
            }
            if let Some(ty) = &sym.impl_type {
                by_type
                    .entry((ty.as_str(), &sym.name))
                    .or_default()
                    .push(idx);
            }
            if let Some(tr) = &sym.impl_trait {
                by_trait
                    .entry((tr.as_str(), &sym.name))
                    .or_default()
                    .push(idx);
            }
        }

        // Call edges per symbol. Lines claimed by a nested fn belong to
        // the nested symbol, not the enclosing one.
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); symbols.len()];
        for (idx, sym) in symbols.iter().enumerate() {
            let file = &files[sym.file];
            let span = &file.fns[sym.fn_idx];
            let mut targets = BTreeSet::new();
            for line_no in span.start..=span.end.min(file.code.len()) {
                if let Some(inner) = file.innermost_fn(line_no) {
                    if (inner.start, inner.end) != (span.start, span.end) {
                        continue;
                    }
                }
                for site in call_sites(&file.code[line_no - 1]) {
                    let resolved: &[usize] = match &site {
                        CallSite::Free(name) => {
                            free_fns.get(name.as_str()).map_or(&[], Vec::as_slice)
                        }
                        CallSite::Method(name) => {
                            methods.get(name.as_str()).map_or(&[], Vec::as_slice)
                        }
                        CallSite::SelfMethod(name) => {
                            let own = sym.impl_type.as_deref().and_then(|ty| {
                                by_type.get(&(ty, name.as_str())).map(Vec::as_slice)
                            });
                            match own {
                                Some(list) if !list.is_empty() => list,
                                // Trait default methods live outside the
                                // type's impls; fall back to any method.
                                _ => methods.get(name.as_str()).map_or(&[], Vec::as_slice),
                            }
                        }
                        CallSite::Qualified(ty, name) => {
                            let ty = if ty == "Self" {
                                sym.impl_type.as_deref().unwrap_or("Self")
                            } else {
                                ty.as_str()
                            };
                            match by_type.get(&(ty, name.as_str())) {
                                Some(list) => list,
                                None => by_trait
                                    .get(&(ty, name.as_str()))
                                    .map_or(&[], Vec::as_slice),
                            }
                        }
                    };
                    targets.extend(resolved.iter().copied());
                }
            }
            targets.remove(&idx);
            edges[idx] = targets.into_iter().collect();
        }

        // Seed the worklist from the entry points.
        let mut unmatched = Vec::new();
        let mut state: BTreeMap<usize, ClosureFn> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for entry in entries {
            let mut found = false;
            for (idx, sym) in symbols.iter().enumerate() {
                let type_ok = match &entry.type_name {
                    Some(t) => sym.impl_type.as_deref() == Some(t.as_str()),
                    None => sym.impl_type.is_none(),
                };
                if type_ok && sym.name == entry.fn_name {
                    found = true;
                    let slot = state.entry(idx).or_insert(ClosureFn {
                        symbol: idx,
                        demands: Demands::default(),
                        depth: 0,
                        via: None,
                    });
                    slot.depth = 0;
                    slot.via = None;
                    if slot.demands.absorb(entry.demands) || !queue.contains(&idx) {
                        queue.push_back(idx);
                    }
                }
            }
            if !found {
                unmatched.push(entry.label());
            }
        }

        // Demand-propagating BFS.
        while let Some(idx) = queue.pop_front() {
            let (demands, depth) = {
                let cur = &state[&idx];
                (cur.demands, cur.depth)
            };
            for &callee in &edges[idx] {
                match state.get_mut(&callee) {
                    Some(slot) => {
                        if slot.demands.absorb(demands) {
                            queue.push_back(callee);
                        }
                    }
                    None => {
                        state.insert(
                            callee,
                            ClosureFn {
                                symbol: callee,
                                demands,
                                depth: depth + 1,
                                via: Some(idx),
                            },
                        );
                        queue.push_back(callee);
                    }
                }
            }
        }

        let mut closure: Vec<ClosureFn> = state.into_values().collect();
        closure.sort_by_key(|c| {
            let sym = &symbols[c.symbol];
            (
                files[sym.file].rel.clone(),
                files[sym.file].fns[sym.fn_idx].start,
            )
        });
        let crates_in_closure = closure
            .iter()
            .map(|c| symbols[c.symbol].crate_name.clone())
            .collect();
        Graph {
            symbols,
            edges,
            closure,
            unmatched_entries: unmatched,
            crates_in_closure,
        }
    }

    /// `Type::name` or `name` for a symbol.
    pub fn symbol_label(&self, idx: usize) -> String {
        let sym = &self.symbols[idx];
        match &sym.impl_type {
            Some(t) => format!("{t}::{}", sym.name),
            None => sym.name.clone(),
        }
    }

    /// Whether any closure member covers `file_rel` line `line` (i.e. the
    /// innermost fn at that location is in the closure).
    pub fn closure_member_at(
        &self,
        files: &[SourceFile],
        file_idx: usize,
        line: usize,
    ) -> Option<&ClosureFn> {
        self.closure.iter().find(|c| {
            let sym = &self.symbols[c.symbol];
            if sym.file != file_idx {
                return false;
            }
            let span = &files[sym.file].fns[sym.fn_idx];
            span.start <= line
                && line <= span.end
                && files[file_idx]
                    .innermost_fn(line)
                    .is_some_and(|inner| (inner.start, inner.end) == (span.start, span.end))
        })
    }

    /// The closure JSON artifact archived by CI.
    pub fn closure_json(&self, files: &[SourceFile], entries: &[EntryPoint]) -> String {
        let mut map = BTreeMap::new();
        map.insert("schema".to_string(), Json::u64(CLOSURE_SCHEMA));
        map.insert(
            "entry_points".to_string(),
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("entry", Json::str(e.label())),
                            ("demands", Json::str(e.demands.label())),
                        ])
                    })
                    .collect(),
            ),
        );
        map.insert(
            "functions".to_string(),
            Json::Arr(
                self.closure
                    .iter()
                    .map(|c| {
                        let sym = &self.symbols[c.symbol];
                        let span = &files[sym.file].fns[sym.fn_idx];
                        Json::obj([
                            ("crate", Json::str(sym.crate_name.clone())),
                            ("file", Json::str(files[sym.file].rel.clone())),
                            ("fn", Json::str(self.symbol_label(c.symbol))),
                            ("start", Json::u64(span.start as u64)),
                            ("end", Json::u64(span.end as u64)),
                            ("demands", Json::str(c.demands.label())),
                            ("depth", Json::u64(c.depth as u64)),
                            (
                                "via",
                                match c.via {
                                    Some(v) => Json::str(self.symbol_label(v)),
                                    None => Json::str("entry"),
                                },
                            ),
                        ])
                    })
                    .collect(),
            ),
        );
        map.insert(
            "crates".to_string(),
            Json::Arr(
                self.crates_in_closure
                    .iter()
                    .map(|c| Json::str(c.clone()))
                    .collect(),
            ),
        );
        map.insert("fn_count".to_string(), Json::u64(self.closure.len() as u64));
        Json::Obj(map).render()
    }
}

/// Rust keywords and binding forms that look like `name(` but are not
/// calls.
const NON_CALL_WORDS: [&str; 22] = [
    "if", "while", "for", "match", "loop", "return", "in", "else", "fn", "let", "mut", "ref",
    "move", "async", "await", "box", "unsafe", "where", "impl", "dyn", "as", "self",
];

/// Extracts call sites from one blanked code line.
fn call_sites(line: &str) -> Vec<CallSite> {
    let b = line.as_bytes();
    let mut out = Vec::new();
    for (i, &c) in b.iter().enumerate() {
        if c != b'(' || i == 0 {
            continue;
        }
        // Macro invocation `name!(…)` — not a fn call.
        if b[i - 1] == b'!' {
            continue;
        }
        let (name, name_start) = ident_before(b, i);
        if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        if NON_CALL_WORDS.contains(&name.as_str()) {
            continue;
        }
        // Uppercase initial = tuple-struct / enum-variant constructor.
        if name.chars().next().is_some_and(char::is_uppercase) {
            continue;
        }
        // `fn name(` is a definition.
        let before = line[..name_start].trim_end();
        if before.ends_with("fn") {
            continue;
        }
        let site = match b[..name_start].last() {
            Some(b'.') => {
                let (recv, _) = ident_before(b, name_start - 1);
                if recv == "self" {
                    CallSite::SelfMethod(name)
                } else {
                    CallSite::Method(name)
                }
            }
            Some(b':') if name_start >= 2 && b[name_start - 2] == b':' => {
                let (qual, _) = ident_before(b, name_start - 2);
                if qual.is_empty() {
                    // `>::name(` (turbofish/UFCS) — resolve as free.
                    CallSite::Free(name)
                } else if qual.chars().next().is_some_and(char::is_uppercase) {
                    CallSite::Qualified(qual, name)
                } else {
                    // Module path `codec::decode(` — drop the module.
                    CallSite::Free(name)
                }
            }
            _ => CallSite::Free(name),
        };
        out.push(site);
    }
    out
}

/// The identifier ending right before byte `end`, and its start offset.
fn ident_before(b: &[u8], end: usize) -> (String, usize) {
    let mut start = end;
    while start > 0 {
        let p = b[start - 1];
        if p.is_ascii_alphanumeric() || p == b'_' {
            start -= 1;
        } else {
            break;
        }
    }
    (String::from_utf8_lossy(&b[start..end]).into_owned(), start)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(line: &str) -> Vec<CallSite> {
        call_sites(line)
    }

    #[test]
    fn call_site_classes() {
        assert_eq!(
            sites("let x = decode(buf);"),
            vec![CallSite::Free("decode".into())]
        );
        assert_eq!(
            sites("self.queue_ack(d, now);"),
            vec![CallSite::SelfMethod("queue_ack".into())]
        );
        assert_eq!(sites("port.tick();"), vec![CallSite::Method("tick".into())]);
        assert_eq!(
            sites("NifdyUnit::helper(x)"),
            vec![CallSite::Qualified("NifdyUnit".into(), "helper".into())]
        );
        assert_eq!(
            sites("codec::decode(buf)"),
            vec![CallSite::Free("decode".into())]
        );
        assert_eq!(
            sites("Self::shard_of(node)"),
            vec![CallSite::Qualified("Self".into(), "shard_of".into())]
        );
    }

    #[test]
    fn non_calls_are_skipped() {
        assert!(sites("if (a + b) > c {").is_empty());
        assert!(sites("panic!(\"boom\")").is_empty());
        assert!(sites("fn decode(buf: &[u8]) {").is_empty());
        assert!(sites("let v = Some(3);").is_empty());
        assert!(sites("matches!(x, Wire::Data { .. })").is_empty());
        assert!(sites("for (i, x) in list {").is_empty());
    }

    #[test]
    fn chained_methods_yield_each_call() {
        assert_eq!(
            sites("self.pool.iter().find(|p| free(p))"),
            vec![
                CallSite::Method("iter".into()),
                CallSite::Method("find".into()),
                CallSite::Free("free".into()),
            ]
        );
    }
}
