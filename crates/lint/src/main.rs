//! CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p nifdy-lint [-- --root <dir>] [--json <path>] [--closure-json <path>] [--quiet]
//! ```
//!
//! Exit status: 0 clean, 1 violations, 2 broken allowlist / I/O errors.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use nifdy_lint::{report, run, LintConfig};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut closure_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_out = args.next().map(PathBuf::from),
            "--closure-json" => closure_out = args.next().map(PathBuf::from),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "nifdy-lint: workspace static analysis (R1 panic-freedom, R2 determinism,\n\
                     R3 trace parity, R4 config coverage, R5 zero-alloc, R6 bounded capacity,\n\
                     R7 seq hygiene, R8 no-wildcard matches, R9 lock discipline)\n\n\
                     USAGE: nifdy-lint [--root <dir>] [--json <path>] [--closure-json <path>] [--quiet]\n\n\
                     Exit 0 = clean, 1 = violations, 2 = allowlist/I-O errors."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("nifdy-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        // Default to the workspace root: the manifest dir of this crate is
        // `<root>/crates/lint` at build time; at run time prefer the CWD if
        // it holds a `crates/` directory (so the binary also works from a
        // checkout root without cargo).
        let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });

    let config = match LintConfig::workspace(root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("nifdy-lint: cannot enumerate workspace crates: {e}");
            return ExitCode::from(2);
        }
    };
    let result = run(&config);

    if let Some(path) = json_out {
        if let Err(e) = fs::write(&path, report::to_json(&result)) {
            eprintln!("nifdy-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = closure_out {
        if let Err(e) = fs::write(&path, &result.closure_json) {
            eprintln!("nifdy-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        print!("{}", report::human(&result));
    }
    if !result.errors.is_empty() {
        ExitCode::from(2)
    } else if result.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
