//! `lint-allow.toml`: the only sanctioned way to silence a diagnostic.
//!
//! The file is an array of `[[allow]]` tables; every entry must carry a
//! written justification and must suppress at least one live diagnostic —
//! unknown keys, missing/thin justifications, and stale entries are hard
//! errors, so the allowlist can only shrink relative to what it explains.
//!
//! ```toml
//! [[allow]]
//! rule = "R2"
//! path = "crates/wire/src/udp.rs"
//! pattern = "Instant"
//! justification = "Socket read deadlines are real time by definition; \
//!                  the simulator clock never reaches the UDP transport."
//! ```
//!
//! The parser is a deliberate TOML subset (comments, `[[allow]]` headers,
//! `key = "string"` pairs) — enough for this schema, no dependency, and
//! strict: anything outside the subset is a schema error.

use std::fmt;
use std::fs;
use std::path::Path;

/// One suppression entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry applies to (`R1`..`R9`).
    pub rule: String,
    /// Exact root-relative path of the file.
    pub path: String,
    /// Substring that must occur on the diagnosed line.
    pub pattern: String,
    /// Why the suppression is sound. Required, and required to say
    /// something (≥ 20 characters after trimming).
    pub justification: String,
    /// 1-based line of the `[[allow]]` header (for error reporting).
    pub line: usize,
}

/// A schema violation in the allowlist file itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowError {
    /// 1-based line in `lint-allow.toml`.
    pub line: usize,
    /// What is malformed.
    pub message: String,
}

impl fmt::Display for AllowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint-allow.toml:{}: {}", self.line, self.message)
    }
}

const REQUIRED_KEYS: [&str; 4] = ["rule", "path", "pattern", "justification"];
const VALID_RULES: [&str; 9] = ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"];
const MIN_JUSTIFICATION: usize = 20;

/// Parses and schema-checks an allowlist file. On any error the entry
/// list is unusable (the engine treats allow errors as fatal).
pub fn load(path: &Path) -> Result<Vec<AllowEntry>, Vec<AllowError>> {
    match fs::read_to_string(path) {
        Ok(content) => parse(&content),
        Err(e) => Err(vec![AllowError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        }]),
    }
}

/// Parses allowlist content. Exposed for fixture tests.
pub fn parse(content: &str) -> Result<Vec<AllowEntry>, Vec<AllowError>> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut errors: Vec<AllowError> = Vec::new();
    // Keys collected for the entry currently being built.
    let mut current: Option<(usize, Vec<(String, String)>)> = None;

    let finish = |current: &mut Option<(usize, Vec<(String, String)>)>,
                  errors: &mut Vec<AllowError>| {
        let (header_line, keys) = current.take()?;
        let get = |name: &str| -> Option<String> {
            keys.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
        };
        let mut entry = AllowEntry {
            rule: get("rule").unwrap_or_default(),
            path: get("path").unwrap_or_default(),
            pattern: get("pattern").unwrap_or_default(),
            justification: get("justification").unwrap_or_default(),
            line: header_line,
        };
        let mut ok = true;
        for required in REQUIRED_KEYS {
            if !keys.iter().any(|(k, _)| k == required) {
                errors.push(AllowError {
                    line: header_line,
                    message: format!("entry is missing required key `{required}`"),
                });
                ok = false;
            }
        }
        if !entry.rule.is_empty() && !VALID_RULES.contains(&entry.rule.as_str()) {
            errors.push(AllowError {
                line: header_line,
                message: format!(
                    "unknown rule `{}` (expected one of {})",
                    entry.rule,
                    VALID_RULES.join(", ")
                ),
            });
            ok = false;
        }
        if keys.iter().any(|(k, _)| k == "pattern") && entry.pattern.is_empty() {
            errors.push(AllowError {
                line: header_line,
                message: "`pattern` must be a non-empty substring".to_string(),
            });
            ok = false;
        }
        entry.justification = entry.justification.trim().to_string();
        if keys.iter().any(|(k, _)| k == "justification")
            && entry.justification.len() < MIN_JUSTIFICATION
        {
            errors.push(AllowError {
                line: header_line,
                message: format!(
                    "`justification` must actually justify (≥ {MIN_JUSTIFICATION} \
                         characters); got {:?}",
                    entry.justification
                ),
            });
            ok = false;
        }
        ok.then_some(entry)
    };

    for (idx, raw_line) in content.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(entry) = finish(&mut current, &mut errors) {
                entries.push(entry);
            }
            current = Some((line_no, Vec::new()));
            continue;
        }
        if line.starts_with('[') {
            errors.push(AllowError {
                line: line_no,
                message: format!("unknown table `{line}`; only `[[allow]]` entries are allowed"),
            });
            current = None;
            continue;
        }
        let Some((key, value)) = parse_key_value(line) else {
            errors.push(AllowError {
                line: line_no,
                message: format!("cannot parse `{line}`; expected `key = \"string\"`"),
            });
            continue;
        };
        let Some((_, keys)) = current.as_mut() else {
            errors.push(AllowError {
                line: line_no,
                message: format!("key `{key}` outside any `[[allow]]` entry"),
            });
            continue;
        };
        if !REQUIRED_KEYS.contains(&key.as_str()) {
            errors.push(AllowError {
                line: line_no,
                message: format!(
                    "unknown key `{key}` (allowed: {})",
                    REQUIRED_KEYS.join(", ")
                ),
            });
            continue;
        }
        if keys.iter().any(|(k, _)| *k == key) {
            errors.push(AllowError {
                line: line_no,
                message: format!("duplicate key `{key}`"),
            });
            continue;
        }
        keys.push((key, value));
    }
    if let Some(entry) = finish(&mut current, &mut errors) {
        entries.push(entry);
    }

    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

/// Removes a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (at, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..at],
            _ => {}
        }
    }
    line
}

/// Parses `key = "value"` with `\"`, `\\`, `\n`, `\t` escapes. The value
/// must be a double-quoted string; trailing content is an error (None).
fn parse_key_value(line: &str) -> Option<(String, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let rest = rest.trim();
    let mut chars = rest.chars();
    if chars.next() != Some('"') {
        return None;
    }
    let mut value = String::new();
    let mut closed = false;
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                closed = true;
                break;
            }
            '\\' => match chars.next()? {
                'n' => value.push('\n'),
                't' => value.push('\t'),
                '"' => value.push('"'),
                '\\' => value.push('\\'),
                _ => return None,
            },
            other => value.push(other),
        }
    }
    if !closed || !chars.as_str().trim().is_empty() {
        return None;
    }
    Some((key.to_string(), value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_entry() {
        let entries = parse(
            "# comment\n[[allow]]\nrule = \"R2\"\npath = \"crates/wire/src/udp.rs\"\n\
             pattern = \"Instant\"\njustification = \"Socket deadlines are wall time by definition.\"\n",
        )
        .unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "R2");
        assert_eq!(entries[0].pattern, "Instant");
    }

    #[test]
    fn unknown_key_is_a_hard_error() {
        let errs = parse(
            "[[allow]]\nrule = \"R1\"\npath = \"a.rs\"\npattern = \"x\"\n\
             justification = \"a perfectly valid reason here\"\nseverity = \"low\"\n",
        )
        .unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("unknown key `severity`")));
    }

    #[test]
    fn missing_or_thin_justification_is_a_hard_error() {
        let errs =
            parse("[[allow]]\nrule = \"R1\"\npath = \"a.rs\"\npattern = \"x\"\n").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("justification")));
        let errs = parse(
            "[[allow]]\nrule = \"R1\"\npath = \"a.rs\"\npattern = \"x\"\njustification = \"ok\"\n",
        )
        .unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("must actually justify")));
    }

    #[test]
    fn unknown_rule_and_tables_rejected() {
        let errs = parse("[[allow]]\nrule = \"R12\"\npath = \"a\"\npattern = \"p\"\njustification = \"some long enough reason\"\n")
            .unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("unknown rule `R12`")));
        let errs = parse("[settings]\nx = \"y\"\n").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown table")));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let entries = parse(
            "[[allow]]\nrule = \"R1\"\npath = \"a.rs\"\npattern = \"# not a comment\"\n\
             justification = \"pattern contains a hash on purpose\"\n",
        )
        .unwrap();
        assert_eq!(entries[0].pattern, "# not a comment");
    }
}
