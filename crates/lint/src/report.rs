//! Rendering: human `file:line` diagnostics and a machine-readable JSON
//! document (archived by the `static-analysis` CI job).

use std::collections::BTreeMap;

use nifdy_trace::json::Json;

use crate::allow::AllowEntry;
use crate::rules::Diagnostic;
use crate::LintReport;

/// Stable schema version of the JSON report.
pub const REPORT_SCHEMA: u64 = 1;

/// `path:line: [rule] message`, one diagnostic per line, then allowlist
/// errors, then a one-line summary.
pub fn human(report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            d.path, d.line, d.rule, d.message
        ));
        if !d.snippet.is_empty() {
            out.push_str(&format!("    {}\n", d.snippet));
        }
    }
    for e in &report.errors {
        out.push_str(&format!("error: {e}\n"));
    }
    out.push_str(&format!(
        "nifdy-lint: {} violation(s), {} suppressed by lint-allow.toml, {} error(s); \
         hot-path closure: {} fn(s) across {} crate(s)\n",
        report.diagnostics.len(),
        report.suppressed.len(),
        report.errors.len(),
        report.closure_fn_count,
        report.closure_crates.len()
    ));
    out
}

fn diagnostic_json(d: &Diagnostic) -> Json {
    Json::obj([
        ("rule", Json::str(d.rule)),
        ("path", Json::str(d.path.clone())),
        ("line", Json::u64(d.line as u64)),
        ("message", Json::str(d.message.clone())),
        ("snippet", Json::str(d.snippet.clone())),
    ])
}

fn entry_json(e: &AllowEntry) -> Json {
    Json::obj([
        ("rule", Json::str(e.rule.clone())),
        ("path", Json::str(e.path.clone())),
        ("pattern", Json::str(e.pattern.clone())),
        ("justification", Json::str(e.justification.clone())),
    ])
}

/// The full machine-readable report.
pub fn to_json(report: &LintReport) -> String {
    let mut map = BTreeMap::new();
    map.insert("schema".to_string(), Json::u64(REPORT_SCHEMA));
    map.insert(
        "clean".to_string(),
        Json::Bool(report.diagnostics.is_empty() && report.errors.is_empty()),
    );
    map.insert(
        "violations".to_string(),
        Json::Arr(report.diagnostics.iter().map(diagnostic_json).collect()),
    );
    map.insert(
        "suppressed".to_string(),
        Json::Arr(
            report
                .suppressed
                .iter()
                .map(|(d, entry)| {
                    Json::obj([
                        ("diagnostic", diagnostic_json(d)),
                        ("allowed_by", entry_json(entry)),
                    ])
                })
                .collect(),
        ),
    );
    map.insert(
        "errors".to_string(),
        Json::Arr(report.errors.iter().map(|e| Json::str(e.clone())).collect()),
    );
    map.insert(
        "files_scanned".to_string(),
        Json::u64(report.files_scanned as u64),
    );
    map.insert(
        "closure_fn_count".to_string(),
        Json::u64(report.closure_fn_count as u64),
    );
    map.insert(
        "closure_crates".to_string(),
        Json::Arr(
            report
                .closure_crates
                .iter()
                .map(|c| Json::str(c.clone()))
                .collect(),
        ),
    );
    Json::Obj(map).render()
}
