//! A line/token source model for the workspace analyzer.
//!
//! The rules in this crate do not need a real Rust parser: every property
//! they check is visible at the token level once comments and string
//! literals are blanked out. [`SourceFile`] loads one file and precomputes
//!
//! * a **code view** — the original text with comment and string-literal
//!   contents replaced by spaces (newlines preserved), so token scans never
//!   match prose or payload bytes,
//! * a per-line **test mask** — lines inside `#[cfg(test)]` items or
//!   `#[test]` functions, which the rules skip (test code may panic and may
//!   time things),
//! * **function spans** — `fn name { … }` line ranges, so rules can scope
//!   themselves to designated hot-path functions,
//!
//! plus small item parsers (enum variants, struct fields, const values)
//! used by the trace-parity and config-coverage rules.

use std::fs;
use std::io;
use std::path::Path;

/// The line range (1-based, inclusive) of one `fn` item, including nested
/// functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// Function name as written.
    pub name: String,
    /// First line of the `fn` keyword.
    pub start: usize,
    /// Line of the closing brace (equal to `start` for bodyless items).
    pub end: usize,
    /// Signature text from the `fn` keyword to the body brace (or `;`),
    /// with line breaks collapsed to spaces.
    pub sig: String,
}

impl FnSpan {
    /// Whether the first parameter is a `self` receiver (`self`, `&self`,
    /// `&mut self`, `self: Box<Self>`, …).
    pub fn has_self(&self) -> bool {
        let Some(open) = self.sig.find('(') else {
            return false;
        };
        let params = &self.sig[open + 1..];
        let mut depth = 1usize;
        let mut first_end = params.len();
        for (at, ch) in params.char_indices() {
            match ch {
                '(' | '[' | '<' => depth += 1,
                ')' | ']' | '>' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        first_end = at;
                        break;
                    }
                }
                ',' if depth == 1 => {
                    first_end = at;
                    break;
                }
                _ => {}
            }
        }
        contains_word(&params[..first_end], "self")
    }
}

/// The line range (1-based, inclusive) of one `impl` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplSpan {
    /// The implementing type's last path segment, generics stripped
    /// (`FaultyTransport<T>` → `FaultyTransport`).
    pub type_name: String,
    /// For `impl Trait for Type`, the trait's last path segment.
    pub trait_name: Option<String>,
    /// First line of the `impl` keyword.
    pub start: usize,
    /// Line of the closing brace.
    pub end: usize,
}

/// One loaded source file with its derived views.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the analysis root, `/`-separated.
    pub rel: String,
    /// Original lines.
    pub raw: Vec<String>,
    /// Comment/string-blanked lines (same count and per-line length).
    pub code: Vec<String>,
    /// `true` for lines inside `#[cfg(test)]` items or `#[test]` functions.
    pub test: Vec<bool>,
    /// Every `fn` item span found in the file.
    pub fns: Vec<FnSpan>,
    /// Every `impl` block span found in the file.
    pub impls: Vec<ImplSpan>,
    /// Brace depth at the start of each line (code view).
    pub depths: Vec<usize>,
}

impl SourceFile {
    /// Reads and models `root/rel`.
    pub fn load(root: &Path, rel: &str) -> io::Result<SourceFile> {
        let content = fs::read_to_string(root.join(rel))?;
        Ok(SourceFile::parse(rel, &content))
    }

    /// Models already-read content (used by the self-tests).
    pub fn parse(rel: &str, content: &str) -> SourceFile {
        let blanked = blank(content);
        let raw: Vec<String> = content.lines().map(str::to_string).collect();
        let mut code: Vec<String> = blanked.lines().map(str::to_string).collect();
        code.resize(raw.len(), String::new());
        let test = test_mask(&code);
        let fns = fn_spans(&code);
        let impls = impl_spans(&code);
        let depths = line_depths(&code);
        SourceFile {
            rel: rel.to_string(),
            raw,
            code,
            test,
            fns,
            impls,
            depths,
        }
    }

    /// The innermost `fn` span containing 1-based `line`, if any.
    pub fn innermost_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.start <= line && line <= f.end)
            .min_by_key(|f| f.end - f.start)
    }

    /// The `impl` block containing 1-based `line`, if any.
    pub fn impl_at(&self, line: usize) -> Option<&ImplSpan> {
        self.impls
            .iter()
            .filter(|s| s.start <= line && line <= s.end)
            .min_by_key(|s| s.end - s.start)
    }

    /// Every struct declared with a brace body, with its typed fields:
    /// `(struct_name, field_name, type_text, 1-based line)`. Includes
    /// private fields.
    pub fn struct_fields_all(&self) -> Vec<(String, String, String, usize)> {
        let mut out = Vec::new();
        for (idx, line) in self.code.iter().enumerate() {
            if !contains_word(line, "struct") {
                continue;
            }
            let Some(pos) = line.find("struct") else {
                continue;
            };
            let name: String = line[pos + 6..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            // Walk the brace body; bail on `;` before `{` (tuple struct).
            let mut depth = 0usize;
            let mut entered = false;
            'walk: for (j, body_line) in self.code.iter().enumerate().skip(idx) {
                if entered && depth == 1 {
                    let trimmed = body_line.trim();
                    let field = trimmed
                        .strip_prefix("pub(crate) ")
                        .or_else(|| trimmed.strip_prefix("pub "))
                        .unwrap_or(trimmed);
                    let ident: String = field
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    let rest = field[ident.len()..].trim_start();
                    if !ident.is_empty() && rest.starts_with(':') {
                        let ty = rest[1..].trim().trim_end_matches(',').trim();
                        out.push((name.clone(), ident, ty.to_string(), j + 1));
                    }
                }
                for ch in body_line.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            entered = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if entered && depth == 0 {
                                break 'walk;
                            }
                        }
                        ';' if !entered => break 'walk,
                        _ => {}
                    }
                }
            }
        }
        out
    }

    /// Whether 1-based `line` is test code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// All spans of functions with the given name.
    pub fn fns_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a FnSpan> {
        self.fns.iter().filter(move |f| f.name == name)
    }

    /// Per-line mask of the union of the named functions' spans. Functions
    /// not found in the file are reported back so rules can flag config
    /// drift instead of silently scanning nothing.
    pub fn fn_mask(&self, names: &[String]) -> (Vec<bool>, Vec<String>) {
        let mut mask = vec![false; self.raw.len()];
        let mut missing = Vec::new();
        for name in names {
            let mut found = false;
            for span in self.fns_named(name) {
                found = true;
                for flag in mask
                    .iter_mut()
                    .take(span.end.min(self.raw.len()))
                    .skip(span.start.saturating_sub(1))
                {
                    *flag = true;
                }
            }
            if !found {
                missing.push(name.clone());
            }
        }
        (mask, missing)
    }

    /// Variant names of `enum name`, with the 1-based line each starts on.
    pub fn enum_variants(&self, name: &str) -> Option<Vec<(String, usize)>> {
        self.item_members(&format!("enum {name}"), |trimmed| {
            let ident: String = trimmed
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if ident.is_empty() || !ident.chars().next().is_some_and(char::is_alphabetic) {
                None
            } else {
                Some(ident)
            }
        })
    }

    /// Public field names of `struct name`, with their 1-based lines.
    pub fn struct_fields(&self, name: &str) -> Option<Vec<(String, usize)>> {
        self.item_members(&format!("struct {name}"), |trimmed| {
            let rest = trimmed.strip_prefix("pub ")?;
            let ident: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if ident.is_empty() || !rest[ident.len()..].trim_start().starts_with(':') {
                None
            } else {
                Some(ident)
            }
        })
    }

    /// Walks the brace block of the item introduced by `header`, yielding
    /// one entry per depth-1 line `extract` accepts.
    fn item_members(
        &self,
        header: &str,
        extract: impl Fn(&str) -> Option<String>,
    ) -> Option<Vec<(String, usize)>> {
        let start = self
            .code
            .iter()
            .position(|line| contains_phrase(line, header))?;
        let mut members = Vec::new();
        let mut depth = 0usize;
        let mut entered = false;
        for (idx, line) in self.code.iter().enumerate().skip(start) {
            if entered && depth == 1 {
                let trimmed = line.trim();
                if !trimmed.is_empty() && !trimmed.starts_with('#') {
                    if let Some(member) = extract(trimmed) {
                        members.push((member, idx + 1));
                    }
                }
            }
            for ch in line.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            return Some(members);
                        }
                    }
                    _ => {}
                }
            }
        }
        Some(members)
    }

    /// The integer value of `const NAME` (any type), if declared.
    pub fn const_value(&self, name: &str) -> Option<(u64, usize)> {
        let phrase = format!("const {name}");
        for (idx, line) in self.code.iter().enumerate() {
            if !contains_phrase(line, &phrase) {
                continue;
            }
            let eq = line.find('=')?;
            let digits: String = line[eq + 1..]
                .chars()
                .skip_while(|c| c.is_whitespace())
                .take_while(char::is_ascii_digit)
                .collect();
            if let Ok(v) = digits.parse() {
                return Some((v, idx + 1));
            }
        }
        None
    }

    /// String literals (unescaped content) appearing on raw lines
    /// `start..=end` (1-based). Good enough for `match` arms mapping
    /// variants to wire names. Handles plain and raw (`r#"…"#`) strings
    /// that open and close on one line, and stops at `//` comments.
    pub fn string_literals_in(&self, start: usize, end: usize) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        for line_no in start..=end.min(self.raw.len()) {
            let line = &self.raw[line_no - 1];
            let b = line.as_bytes();
            let mut i = 0;
            while i < b.len() {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'/') {
                    break;
                }
                if let Some((hashes, quote)) = raw_string_at(b, i) {
                    let close = format!("\"{}", "#".repeat(hashes));
                    let content_start = quote + 1;
                    match line[content_start..].find(&close) {
                        Some(rel) => {
                            out.push((
                                line[content_start..content_start + rel].to_string(),
                                line_no,
                            ));
                            i = content_start + rel + close.len();
                        }
                        None => break,
                    }
                    continue;
                }
                if b[i] == b'\'' {
                    if b.get(i + 1) == Some(&b'\\') {
                        let mut j = i + 3;
                        while j < b.len() && b[j] != b'\'' {
                            j += 1;
                        }
                        i = (j + 1).min(b.len());
                        continue;
                    }
                    if let Some(n) = char_literal_len(b, i) {
                        i += n;
                        continue;
                    }
                }
                if b[i] == b'"' {
                    let mut lit = String::new();
                    let mut chars = line[i + 1..].chars();
                    let mut consumed = i + 1;
                    loop {
                        match chars.next() {
                            None => break,
                            Some('"') => {
                                consumed += 1;
                                break;
                            }
                            Some('\\') => {
                                consumed += 1;
                                if let Some(esc) = chars.next() {
                                    lit.push(esc);
                                    consumed += esc.len_utf8();
                                }
                            }
                            Some(other) => {
                                lit.push(other);
                                consumed += other.len_utf8();
                            }
                        }
                    }
                    out.push((lit, line_no));
                    i = consumed;
                    continue;
                }
                i += 1;
            }
        }
        out
    }
}

/// Does `line` contain `word` delimited by non-identifier characters?
pub fn contains_word(line: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = !line[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len().max(1);
    }
    false
}

/// `contains_word` over a multi-word phrase: every space in `phrase`
/// matches one-or-more whitespace, and both ends sit on word boundaries.
fn contains_phrase(line: &str, phrase: &str) -> bool {
    let words: Vec<&str> = phrase.split_whitespace().collect();
    let Some((first, rest)) = words.split_first() else {
        return false;
    };
    let mut from = 0;
    while let Some(pos) = line[from..].find(first) {
        let at = from + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let mut cursor = at + first.len();
        let mut ok = before_ok;
        if ok {
            for word in rest {
                let trimmed = line[cursor..].trim_start();
                if trimmed.starts_with(word) {
                    cursor = line.len() - trimmed.len() + word.len();
                } else {
                    ok = false;
                    break;
                }
            }
        }
        if ok
            && !line[cursor..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            return true;
        }
        from = at + first.len().max(1);
    }
    false
}

/// Replaces comment and string-literal contents with spaces, preserving
/// line structure, so token scans see only code. Handles line and nested
/// block comments, plain/byte/raw strings, char literals, and lifetimes.
fn blank(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            out.extend_from_slice(b"  ");
            i += 2;
            let mut depth = 1usize;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    push_blank(&mut out, b[i]);
                    i += 1;
                }
            }
        } else if let Some((hashes, quote)) = raw_string_at(b, i) {
            // Blank from the prefix through the closing quote+hashes.
            let mut j = quote + 1;
            loop {
                if j >= b.len() {
                    break;
                }
                if b[j] == b'"'
                    && b[j + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&h| h == b'#')
                        .count()
                        == hashes
                {
                    j += 1 + hashes;
                    break;
                }
                j += 1;
            }
            for &ch in &b[i..j.min(b.len())] {
                push_blank(&mut out, ch);
            }
            i = j;
        } else if c == b'"' {
            out.push(b' ');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' {
                    push_blank(&mut out, b[i]);
                    i += 1;
                    if i < b.len() {
                        push_blank(&mut out, b[i]);
                        i += 1;
                    }
                } else if b[i] == b'"' {
                    out.push(b' ');
                    i += 1;
                    break;
                } else {
                    push_blank(&mut out, b[i]);
                    i += 1;
                }
            }
        } else if c == b'\'' {
            if b.get(i + 1) == Some(&b'\\') {
                // Escaped char literal. Consume the backslash and the byte
                // it escapes before scanning for the closing quote, so that
                // `'\''` does not leave a stray tick in the code view.
                out.push(b' ');
                i += 1;
                push_blank(&mut out, b[i]);
                i += 1;
                if i < b.len() {
                    push_blank(&mut out, b[i]);
                    i += 1;
                }
                while i < b.len() && b[i] != b'\'' {
                    push_blank(&mut out, b[i]);
                    i += 1;
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
            } else if char_literal_len(b, i).is_some() {
                let n = char_literal_len(b, i).unwrap_or(0);
                for &ch in &b[i..i + n] {
                    push_blank(&mut out, ch);
                }
                i += n;
            } else {
                // A lifetime: keep the tick, it is code.
                out.push(c);
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn push_blank(out: &mut Vec<u8>, c: u8) {
    out.push(if c == b'\n' { b'\n' } else { b' ' });
}

/// If position `i` starts a raw (or raw byte) string, returns
/// `(hash_count, index_of_opening_quote)`.
fn raw_string_at(b: &[u8], i: usize) -> Option<(usize, usize)> {
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return None;
    }
    let mut j = i;
    if b.get(j) == Some(&b'b') {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&b'"') {
        Some((hashes, j))
    } else {
        None
    }
}

/// If position `i` (a `'`) starts an unescaped char literal, its total
/// byte length including both quotes.
fn char_literal_len(b: &[u8], i: usize) -> Option<usize> {
    let first = *b.get(i + 1)?;
    if first == b'\'' {
        return None;
    }
    let char_len = match first {
        x if x < 0x80 => 1,
        x if x >= 0xF0 => 4,
        x if x >= 0xE0 => 3,
        _ => 2,
    };
    (b.get(i + 1 + char_len) == Some(&b'\'')).then_some(char_len + 2)
}

/// Marks lines covered by `#[cfg(test)]` items and `#[test]` functions.
fn test_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let line = &code[i];
        let is_marker = line.contains("#[cfg(test)")
            || line.contains("#[cfg(all(test")
            || line.contains("#[cfg(any(test")
            || line.trim_start().starts_with("#[test]");
        if !is_marker {
            i += 1;
            continue;
        }
        // Extend over the annotated item: to the matching close brace, or
        // to the terminating `;` for braceless items (`use`, `const`).
        let mut depth = 0usize;
        let mut entered = false;
        let mut j = i;
        loop {
            if j >= code.len() {
                break;
            }
            let mut done = false;
            for ch in code[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            done = true;
                        }
                    }
                    ';' if !entered => done = true,
                    _ => {}
                }
            }
            if done {
                break;
            }
            j += 1;
        }
        for flag in mask.iter_mut().take((j + 1).min(code.len())).skip(i) {
            *flag = true;
        }
        i = j + 1;
    }
    mask
}

/// Finds every `fn name … { … }` span via brace matching on the code view,
/// capturing the signature text between `fn` and the body brace.
fn fn_spans(code: &[String]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    // Functions awaiting their body's opening brace, then open bodies as
    // (name, start_line, sig, depth_at_open).
    let mut pending: Option<(String, usize, String)> = None;
    let mut sig_depth = 0usize;
    let mut open: Vec<(String, usize, String, usize)> = Vec::new();
    let mut depth = 0usize;
    for (idx, line) in code.iter().enumerate() {
        for (at, ch) in line.char_indices() {
            match ch {
                '(' | '[' if pending.is_some() => sig_depth += 1,
                ')' | ']' if pending.is_some() => sig_depth = sig_depth.saturating_sub(1),
                '{' => {
                    depth += 1;
                    if let Some((name, start, sig)) = pending.take() {
                        open.push((name, start, sig, depth));
                    }
                }
                '}' => {
                    if let Some(pos) = open.iter().rposition(|(_, _, _, d)| *d == depth) {
                        let (name, start, sig, _) = open.remove(pos);
                        spans.push(FnSpan {
                            name,
                            start,
                            end: idx + 1,
                            sig,
                        });
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' if sig_depth == 0 => {
                    // Bodyless declaration (trait method, extern). A `;`
                    // inside the signature's parens or an array type does
                    // not end the item.
                    if let Some((name, start, sig)) = pending.take() {
                        spans.push(FnSpan {
                            name,
                            start,
                            end: start,
                            sig,
                        });
                    }
                }
                'f' => {
                    // A word-boundary `fn` followed by an identifier.
                    let before_ok = at == 0
                        || !line[..at]
                            .chars()
                            .next_back()
                            .is_some_and(|c| c.is_alphanumeric() || c == '_');
                    if before_ok && line[at..].starts_with("fn") {
                        let rest = &line[at + 2..];
                        if rest.starts_with(char::is_whitespace) {
                            let name: String = rest
                                .trim_start()
                                .chars()
                                .take_while(|c| c.is_alphanumeric() || *c == '_')
                                .collect();
                            if !name.is_empty() {
                                pending = Some((name, idx + 1, String::new()));
                                sig_depth = 0;
                            }
                        }
                    }
                }
                _ => {}
            }
            if let Some((_, _, sig)) = pending.as_mut() {
                sig.push(ch);
            }
        }
        if let Some((_, _, sig)) = pending.as_mut() {
            sig.push(' ');
        }
    }
    spans.sort_by_key(|s| (s.start, s.end));
    spans
}

/// Brace depth at the start of each line (code view).
fn line_depths(code: &[String]) -> Vec<usize> {
    let mut out = Vec::with_capacity(code.len());
    let mut depth = 0usize;
    for line in code {
        out.push(depth);
        for ch in line.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
    }
    out
}

/// Finds every `impl` block span via brace matching on the code view,
/// parsing the header into a type name and optional trait name.
fn impl_spans(code: &[String]) -> Vec<ImplSpan> {
    let mut spans = Vec::new();
    // An impl header being accumulated, then open bodies as
    // (type_name, trait_name, start_line, depth_at_open).
    let mut pending: Option<(String, usize)> = None;
    let mut angle = 0usize;
    let mut open: Vec<(String, Option<String>, usize, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut prev = ' ';
    for (idx, line) in code.iter().enumerate() {
        for (at, ch) in line.char_indices() {
            if pending.is_some() {
                if ch == '{' && angle == 0 {
                    let (header, start) = pending.take().unwrap_or_default();
                    depth += 1;
                    if let Some((ty, tr)) = parse_impl_header(&header) {
                        open.push((ty, tr, start, depth));
                    }
                } else if ch == ';' && angle == 0 {
                    pending = None;
                } else {
                    if let Some((header, _)) = pending.as_mut() {
                        match ch {
                            '<' => angle += 1,
                            '>' if prev != '-' => angle = angle.saturating_sub(1),
                            _ => {}
                        }
                        header.push(ch);
                    }
                }
                prev = ch;
                continue;
            }
            match ch {
                '{' => depth += 1,
                '}' => {
                    if let Some(pos) = open.iter().rposition(|(_, _, _, d)| *d == depth) {
                        let (ty, tr, start, _) = open.remove(pos);
                        spans.push(ImplSpan {
                            type_name: ty,
                            trait_name: tr,
                            start,
                            end: idx + 1,
                        });
                    }
                    depth = depth.saturating_sub(1);
                }
                'i' => {
                    // A word-boundary `impl` at item position: the line up
                    // to here is blank or ends an earlier item. This skips
                    // `-> impl Trait` return types.
                    let before = line[..at].trim_end();
                    let item_pos = before.is_empty()
                        || before.ends_with('}')
                        || before.ends_with(';')
                        || before.ends_with(']');
                    if item_pos && line[at..].starts_with("impl") {
                        let rest = &line[at + 4..];
                        if rest.is_empty()
                            || rest.starts_with(char::is_whitespace)
                            || rest.starts_with('<')
                        {
                            pending = Some((String::new(), idx + 1));
                            angle = 0;
                        }
                    }
                }
                _ => {}
            }
            prev = ch;
        }
        prev = ' ';
    }
    spans.sort_by_key(|s| (s.start, s.end));
    spans
}

/// Parses an accumulated impl header (`impl<T> Trait for Type<T> where …`
/// without the leading `impl` or the body brace) into
/// `(type_name, trait_name)`, both reduced to their last path segment.
fn parse_impl_header(header: &str) -> Option<(String, Option<String>)> {
    // The accumulator starts one char past the `i` of `impl`; drop the rest
    // of the keyword, then strip leading generics.
    let header = header.trim_start();
    let mut rest = header.strip_prefix("mpl").unwrap_or(header).trim_start();
    if let Some(stripped) = rest.strip_prefix('<') {
        let mut angle = 1usize;
        let mut prev = ' ';
        let mut cut = stripped.len();
        for (at, ch) in stripped.char_indices() {
            match ch {
                '<' => angle += 1,
                '>' if prev != '-' => {
                    angle -= 1;
                    if angle == 0 {
                        cut = at + 1;
                        break;
                    }
                }
                _ => {}
            }
            prev = ch;
        }
        rest = stripped[cut.min(stripped.len())..].trim_start();
    }
    // Split at a word-boundary ` for ` outside angle brackets.
    let (first, second) = split_impl_for(rest);
    let first = strip_where(first);
    match second {
        Some(ty) => Some((last_segment(strip_where(ty))?, last_segment(first))),
        None => Some((last_segment(first)?, None)),
    }
}

/// Splits `Trait for Type` at the first word-boundary `for` outside angle
/// brackets; returns `(head, Some(tail))` or `(whole, None)`.
fn split_impl_for(s: &str) -> (&str, Option<&str>) {
    let b = s.as_bytes();
    let mut angle = 0usize;
    let mut prev = b' ';
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'<' => angle += 1,
            b'>' if prev != b'-' => angle = angle.saturating_sub(1),
            b'f' if angle == 0
                && s[i..].starts_with("for")
                && !(prev.is_ascii_alphanumeric() || prev == b'_')
                && !s[i + 3..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '<') =>
            {
                return (&s[..i], Some(&s[i + 3..]));
            }
            _ => {}
        }
        prev = b[i];
        i += 1;
    }
    (s, None)
}

/// Drops a trailing `where …` clause.
fn strip_where(s: &str) -> &str {
    let mut from = 0;
    while let Some(pos) = s[from..].find("where") {
        let at = from + pos;
        let before_ok = at == 0
            || !s[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !s[at + 5..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return &s[..at];
        }
        from = at + 5;
    }
    s
}

/// The last `::` path segment with generics, references, and lifetimes
/// stripped: `fmt::Display` → `Display`, `Supervisor<T, F>` → `Supervisor`,
/// `&'a mut Foo<T>` → `Foo`.
fn last_segment(path: &str) -> Option<String> {
    let mut s = path.trim();
    loop {
        let trimmed = s.trim_start_matches(['&', '*']).trim_start();
        let trimmed = if let Some(rest) = trimmed.strip_prefix('\'') {
            rest.trim_start_matches(|c: char| c.is_alphanumeric() || c == '_')
                .trim_start()
        } else {
            trimmed
        };
        let trimmed = trimmed
            .strip_prefix("mut ")
            .or_else(|| trimmed.strip_prefix("dyn "))
            .unwrap_or(trimmed)
            .trim_start();
        if trimmed == s {
            break;
        }
        s = trimmed;
    }
    let no_generics = match s.find('<') {
        Some(p) => &s[..p],
        None => s,
    };
    let seg = no_generics.rsplit("::").next()?.trim();
    let ident: String = seg
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanking_hides_comments_strings_and_chars() {
        let src =
            "let a = \"panic!()\"; // unwrap()\nlet b = 'x'; /* expect( */ let c = r#\"todo!\"#;\n";
        let out = blank(src);
        assert!(!out.contains("panic!"));
        assert!(!out.contains("unwrap"));
        assert!(!out.contains("expect"));
        assert!(!out.contains("todo"));
        assert!(out.contains("let a ="));
        assert!(out.contains("let c ="));
        assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn lifetimes_survive_blanking() {
        let out = blank("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(out.contains("fn f<'a>"));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod_and_test_fn() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
    }

    #[test]
    fn fn_spans_nest() {
        let src = "fn outer() {\n    fn inner() {\n    }\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", src);
        let outer = f.fns_named("outer").next().unwrap();
        assert_eq!((outer.start, outer.end), (1, 4));
        let inner = f.fns_named("inner").next().unwrap();
        assert_eq!((inner.start, inner.end), (2, 3));
        let after = f.fns_named("after").next().unwrap();
        assert_eq!((after.start, after.end), (5, 5));
    }

    #[test]
    fn enum_and_struct_parsing() {
        let src = "pub enum Kind {\n    A { x: u8 },\n    B,\n}\npub struct Cfg {\n    pub one: u8,\n    pub two: bool,\n    hidden: u8,\n}\n";
        let f = SourceFile::parse("x.rs", src);
        let variants: Vec<String> = f
            .enum_variants("Kind")
            .unwrap()
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        assert_eq!(variants, vec!["A", "B"]);
        let fields: Vec<String> = f
            .struct_fields("Cfg")
            .unwrap()
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        assert_eq!(fields, vec!["one", "two"]);
    }

    #[test]
    fn const_and_literals() {
        let src = "pub const COUNT: usize = 21;\nfn name() { let s = \"wire_name\"; }\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.const_value("COUNT"), Some((21, 1)));
        assert_eq!(
            f.string_literals_in(2, 2),
            vec![("wire_name".to_string(), 2)]
        );
    }

    #[test]
    fn raw_strings_blank_correctly() {
        // A raw string containing a quote must not swallow trailing code.
        let out = blank("let c = r#\"has \" quote\"#; let live = x.unwrap();\n");
        assert!(out.contains("let live = x.unwrap();"), "{out:?}");
        assert!(!out.contains("quote"));
        // A raw string containing a comment opener must not start a comment.
        let out = blank("let c = r#\"start /* \"#; let live = 1; /* gone */ let more = 2;\n");
        assert!(out.contains("let live = 1;"), "{out:?}");
        assert!(out.contains("let more = 2;"), "{out:?}");
        assert!(!out.contains("gone"));
        // Multi-hash raw strings close only on a matching run of hashes.
        let out = blank("let c = r##\"x \"# y\"##; let live = 4;\n");
        assert!(out.contains("let live = 4;"), "{out:?}");
        assert!(!out.contains('y'));
        // Byte raw strings.
        let out = blank("let c = br#\"bytes \" q\"#; live();\n");
        assert!(out.contains("live();"), "{out:?}");
        // Adjacent raw and plain strings.
        let out = blank("f(r#\"payload\"#, \"b\", c.unwrap());\n");
        assert!(out.contains("c.unwrap()"), "{out:?}");
        assert!(!out.contains("payload"));
    }

    #[test]
    fn multiline_raw_string_preserves_line_structure() {
        let src = "let c = r#\"one\ntwo \" mid\nthree\"#;\nlet live = 8;\n";
        let out = blank(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert!(out.contains("let live = 8;"));
        assert!(!out.contains("mid"));
    }

    #[test]
    fn nested_block_comments_blank_correctly() {
        let out = blank("/* outer /* inner */ still comment */ let live = 3;\n");
        assert!(out.contains("let live = 3;"), "{out:?}");
        assert!(!out.contains("still"));
        // A raw-string opener inside a comment stays a comment.
        let out = blank("/* r#\" */ let live = 7; // tail\n");
        assert!(out.contains("let live = 7;"), "{out:?}");
        assert!(!out.contains("tail"));
    }

    #[test]
    fn escaped_char_literals_blank_without_desync() {
        // `'\''` must not leave a stray quote that desyncs later scans.
        let out = blank("let c = '\\''; let live = x.unwrap();\n");
        assert!(out.contains("let live = x.unwrap();"), "{out:?}");
        assert!(!out.contains('\''), "stray quote in {out:?}");
        let out = blank("let c = '\\\\'; let live = 1;\n");
        assert!(out.contains("let live = 1;"), "{out:?}");
        let out = blank("let c = '\\x41'; let d = '\\u{1F600}'; live();\n");
        assert!(out.contains("live();"), "{out:?}");
    }

    #[test]
    fn string_literals_include_raw_strings() {
        let src = "fn name() { (\"plain\", r#\"raw \" lit\"#, r\"zero\") }\n";
        let f = SourceFile::parse("x.rs", src);
        let lits: Vec<String> = f
            .string_literals_in(1, 1)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(lits, vec!["plain", "raw \" lit", "zero"]);
    }

    #[test]
    fn impl_spans_parse_inherent_trait_and_generic() {
        let src = "\
struct A;\n\
impl A {\n    fn one(&self) {}\n}\n\
impl fmt::Display for A {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }\n}\n\
impl<T: Clone, F: FnMut() -> Vec<T>> Wrap<T, F> {\n    fn two(&mut self, x: T) -> T { x }\n}\n\
fn free() -> impl Iterator<Item = u8> {\n    std::iter::empty()\n}\n";
        let f = SourceFile::parse("x.rs", src);
        let impls: Vec<(String, Option<String>)> = f
            .impls
            .iter()
            .map(|s| (s.type_name.clone(), s.trait_name.clone()))
            .collect();
        assert_eq!(
            impls,
            vec![
                ("A".to_string(), None),
                ("A".to_string(), Some("Display".to_string())),
                ("Wrap".to_string(), None),
            ]
        );
        assert_eq!(f.impl_at(3).map(|s| s.type_name.as_str()), Some("A"));
        assert_eq!(
            f.impl_at(6).and_then(|s| s.trait_name.as_deref()),
            Some("Display")
        );
        assert_eq!(f.impl_at(12), None, "return-position impl is not a block");
    }

    #[test]
    fn fn_signatures_capture_self() {
        let src = "\
fn free(x: u8) -> u8 { x }\n\
impl A {\n\
    fn method(&self, y: u8) {}\n\
    fn owner(mut self) {}\n\
    fn assoc(\n        config: u8,\n    ) -> A {\n        A\n    }\n\
}\n";
        let f = SourceFile::parse("x.rs", src);
        let by_name = |n: &'static str| f.fns_named(n).next().unwrap();
        assert!(!by_name("free").has_self());
        assert!(by_name("method").has_self());
        assert!(by_name("owner").has_self());
        assert!(!by_name("assoc").has_self());
    }

    #[test]
    fn struct_fields_all_reads_types_and_private_fields() {
        let src = "pub struct Cfg {\n    pub seq: u8,\n    epoch: u32,\n    items: Vec<usize>,\n}\npub struct Key(u32);\n";
        let f = SourceFile::parse("x.rs", src);
        let fields: Vec<(String, String, String)> = f
            .struct_fields_all()
            .into_iter()
            .map(|(s, n, t, _)| (s, n, t))
            .collect();
        assert_eq!(
            fields,
            vec![
                ("Cfg".into(), "seq".into(), "u8".into()),
                ("Cfg".into(), "epoch".into(), "u32".into()),
                ("Cfg".into(), "items".into(), "Vec<usize>".into()),
            ]
        );
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("use std::time::Instant;", "Instant"));
        assert!(!contains_word("let instantaneous = 1;", "Instant"));
        assert!(!contains_word("InstantX", "Instant"));
    }
}
