//! `nifdy-lint`: workspace static analysis for the NIFDY reproduction.
//!
//! The repo's headline guarantees — byte-identical parallel runs, sim/wire
//! conformance, trace/stats parity — are enforced dynamically by tests
//! that can silently lose coverage as code drifts. This crate is the
//! static backstop: a dependency-light line/token analyzer (no rustc, no
//! syn) that runs over every `crates/*/src/**.rs` and fails CI on five
//! invariant classes (see [`rules`]):
//!
//! * **R1 panic-freedom** — no `unwrap`/`expect`/`panic!`/`unreachable!`
//!   (and, on the wire decode path, no index expressions) in designated
//!   protocol hot paths,
//! * **R2 determinism hygiene** — no wall clock, no ambient RNG, no
//!   hash-ordered containers in the deterministic crates,
//! * **R3 trace parity** — every `EventKind` variant is exported by both
//!   the JSONL and Perfetto exporters and exercised by trace fixtures,
//! * **R4 config coverage** — every config field is validated or
//!   builder-settable,
//! * **R5 zero-alloc steady state** — no `Box::new`/`vec!`/fresh-container
//!   /`format!`/`collect` allocation in the stepped hot paths (the
//!   `NifdyUnit` datapath and the fabric step loop); buffers are
//!   preallocated or slab-recycled.
//!
//! Suppressions live in `lint-allow.toml` ([`allow`]) and must each carry
//! a written justification; entries that stop matching anything are hard
//! errors, so the allowlist cannot rot. Run it as
//! `cargo run -p nifdy-lint` (exit 0 = clean, 1 = violations, 2 = broken
//! allowlist or I/O error); `--json <path>` writes the machine-readable
//! report CI archives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod report;
pub mod rules;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allow::AllowEntry;
use rules::{
    ConfigCoverageScope, DeterminismScope, Diagnostic, HotPath, TraceParityScope, ZeroAllocScope,
};
use source::SourceFile;

/// What to analyze. [`LintConfig::workspace`] builds the real repo
/// configuration; fixture tests build small ad-hoc ones.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Analysis root; all configured paths are relative to it.
    pub root: PathBuf,
    /// Directories walked recursively for `.rs` files (R1/R2 inputs).
    pub src_dirs: Vec<String>,
    /// R1 scopes.
    pub hot_paths: Vec<HotPath>,
    /// R2 scope (`None` disables the rule).
    pub determinism: Option<DeterminismScope>,
    /// R3 scope (`None` disables the rule).
    pub trace_parity: Option<TraceParityScope>,
    /// R4 scopes.
    pub config_coverage: Vec<ConfigCoverageScope>,
    /// R5 scopes.
    pub zero_alloc: Vec<ZeroAllocScope>,
    /// `lint-allow.toml` location (`None` = no suppressions).
    pub allowlist: Option<PathBuf>,
}

impl LintConfig {
    /// The NIFDY workspace rule set, rooted at the repo checkout.
    ///
    /// Hot paths (R1): the `NifdyUnit` datapath, the wire codec path
    /// (with index expressions also banned — decode must be total), the
    /// chaos-plane fault loop and supervised endpoint poll path (also
    /// indexing-free: they handle arbitrary wire bytes), and the fabric
    /// per-cycle step loop. Determinism (R2): hash-ordered
    /// containers banned in `sim`/`core`/`net`/`traffic`/`trace`;
    /// wall-clock and ambient-RNG bans apply everywhere scanned.
    /// Zero-alloc (R5): the `NifdyUnit` per-step datapath and the fabric
    /// step loop must not construct heap allocations — flits live in the
    /// slab arena, retransmit/OPT bookkeeping in preallocated deques.
    pub fn workspace(root: PathBuf) -> io::Result<LintConfig> {
        let crates_dir = root.join("crates");
        let mut src_dirs = Vec::new();
        let mut names: Vec<String> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().join("src").is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        for name in names {
            src_dirs.push(format!("crates/{name}/src"));
        }
        let allowlist = Some(root.join("lint-allow.toml"));
        Ok(LintConfig {
            root,
            src_dirs,
            hot_paths: vec![
                HotPath {
                    path: "crates/core/src/unit.rs".into(),
                    functions: Vec::new(),
                    deny_indexing: false,
                },
                HotPath {
                    path: "crates/wire/src/codec.rs".into(),
                    functions: vec![
                        "decode".into(),
                        "decode_frame".into(),
                        "decode_body".into(),
                        "decode_ack_body".into(),
                        "decode_heartbeat_body".into(),
                        "encode_heartbeat".into(),
                        "crc16".into(),
                        "append_checksum".into(),
                        "verify_checksum".into(),
                        "body_len".into(),
                        "read_node".into(),
                        "peek_route".into(),
                        "byte_at".into(),
                        "arr_at".into(),
                        "tail_from".into(),
                    ],
                    deny_indexing: true,
                },
                HotPath {
                    path: "crates/wire/src/fault.rs".into(),
                    functions: vec![
                        "send".into(),
                        "recv".into(),
                        "tick".into(),
                        "flush_held".into(),
                        "hold_until".into(),
                        "record".into(),
                    ],
                    deny_indexing: true,
                },
                HotPath {
                    path: "crates/wire/src/supervisor.rs".into(),
                    functions: vec![
                        "step".into(),
                        "consume_heartbeats".into(),
                        "broadcast".into(),
                        "check_silence".into(),
                        "next_event".into(),
                        "kill".into(),
                        "incarnate".into(),
                    ],
                    deny_indexing: true,
                },
                HotPath {
                    path: "crates/net/src/fabric.rs".into(),
                    functions: vec![
                        "step".into(),
                        "progress_wires".into(),
                        "start_router_transmissions".into(),
                        "commit_transmission".into(),
                        "progress_injection".into(),
                        "try_inject_flit".into(),
                        "advancing_lane".into(),
                        "deliver_to_node".into(),
                    ],
                    deny_indexing: false,
                },
            ],
            determinism: Some(DeterminismScope {
                hash_dir_prefixes: vec![
                    "crates/sim/".into(),
                    "crates/core/".into(),
                    "crates/net/".into(),
                    "crates/traffic/".into(),
                    "crates/trace/".into(),
                    "crates/analyze/".into(),
                ],
            }),
            trace_parity: Some(TraceParityScope {
                event_file: "crates/trace/src/event.rs".into(),
                enum_name: "EventKind".into(),
                name_fn: "name".into(),
                count_const: "VARIANT_COUNT".into(),
                exporter_file: "crates/trace/src/export.rs".into(),
                jsonl_fn: "kind_args".into(),
                chrome_fn: "to_chrome_trace".into(),
                fixture_files: vec![
                    "crates/trace/tests/exporter_coverage.rs".into(),
                    "crates/net/tests/trace_parity.rs".into(),
                    "crates/harness/tests/trace_export.rs".into(),
                ],
            }),
            config_coverage: vec![
                ConfigCoverageScope {
                    path: "crates/core/src/config.rs".into(),
                    struct_name: "NifdyConfig".into(),
                    validate_fn: "validate".into(),
                },
                ConfigCoverageScope {
                    path: "crates/net/src/fault.rs".into(),
                    struct_name: "FaultConfig".into(),
                    validate_fn: "validate".into(),
                },
                ConfigCoverageScope {
                    path: "crates/wire/src/fault.rs".into(),
                    struct_name: "WireFaultConfig".into(),
                    validate_fn: "validate".into(),
                },
                ConfigCoverageScope {
                    path: "crates/wire/src/supervisor.rs".into(),
                    struct_name: "SupervisorConfig".into(),
                    validate_fn: "validate".into(),
                },
            ],
            zero_alloc: vec![
                ZeroAllocScope {
                    path: "crates/core/src/unit.rs".into(),
                    functions: vec![
                        "step".into(),
                        "poll".into(),
                        "try_send".into(),
                        "has_deliverable".into(),
                        "next_event".into(),
                        "launch".into(),
                        "pick_eligible".into(),
                        "check_retx".into(),
                        "receive_scalar".into(),
                        "receive_bulk".into(),
                        "drain_dialogs".into(),
                        "handle_ack".into(),
                        "ack_scalar".into(),
                        "queue_ack".into(),
                        "decide_grant".into(),
                        "compute_wakeup".into(),
                        "sample_rtt".into(),
                        "next_packet_id".into(),
                        "opt_contains".into(),
                        "backlog_for".into(),
                    ],
                },
                ZeroAllocScope {
                    path: "crates/net/src/fabric.rs".into(),
                    functions: vec![
                        "step".into(),
                        "progress_wires".into(),
                        "start_router_transmissions".into(),
                        "try_start_one".into(),
                        "next_candidate".into(),
                        "port_has_candidates".into(),
                        "resolve_heads".into(),
                        "resolve_slot".into(),
                        "route_port_mask".into(),
                        "head_allocation".into(),
                        "mark_occupied".into(),
                        "commit_transmission".into(),
                        "progress_injection".into(),
                        "try_inject_flit".into(),
                        "advancing_lane".into(),
                        "deliver_to_node".into(),
                        "advance_to".into(),
                        "next_event".into(),
                    ],
                },
            ],
            allowlist,
        })
    }
}

/// Engine output: active violations, suppressed findings (with the entry
/// that covered each), and fatal errors (allowlist schema/staleness, I/O).
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed violations, sorted `(path, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings covered by a justified allowlist entry.
    pub suppressed: Vec<(Diagnostic, AllowEntry)>,
    /// Hard errors; any entry makes the run fail with exit 2.
    pub errors: Vec<String>,
    /// How many files the scan covered.
    pub files_scanned: usize,
}

impl LintReport {
    /// No violations and no errors.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.errors.is_empty()
    }
}

/// Runs every configured rule and applies the allowlist.
pub fn run(config: &LintConfig) -> LintReport {
    let mut report = LintReport::default();
    let mut raw: Vec<Diagnostic> = Vec::new();

    // Discover and model the source set.
    let mut files: Vec<SourceFile> = Vec::new();
    for dir in &config.src_dirs {
        let mut rels = Vec::new();
        collect_rs(&config.root, dir, &mut rels, &mut report.errors);
        rels.sort();
        for rel in rels {
            match SourceFile::load(&config.root, &rel) {
                Ok(f) => files.push(f),
                Err(e) => report.errors.push(format!("cannot read {rel}: {e}")),
            }
        }
    }
    report.files_scanned = files.len();

    // R1 over the designated hot paths.
    for hot in &config.hot_paths {
        match files.iter().find(|f| f.rel == hot.path) {
            Some(file) => rules::r1_panic_freedom(file, hot, &mut raw),
            None => report
                .errors
                .push(format!("R1 hot path {} not found in scan set", hot.path)),
        }
    }

    // R2 over every scanned file.
    if let Some(scope) = &config.determinism {
        for file in &files {
            rules::r2_determinism(file, scope, &mut raw);
        }
    }

    // R3 loads its fixture files on top of the scan set.
    if let Some(scope) = &config.trace_parity {
        let event = files.iter().find(|f| f.rel == scope.event_file);
        let exporter = files.iter().find(|f| f.rel == scope.exporter_file);
        match (event, exporter) {
            (Some(event), Some(exporter)) => {
                let mut fixtures = Vec::new();
                for rel in &scope.fixture_files {
                    match SourceFile::load(&config.root, rel) {
                        Ok(f) => fixtures.push(f),
                        Err(e) => report
                            .errors
                            .push(format!("R3 fixture file {rel} unreadable: {e}")),
                    }
                }
                rules::r3_trace_parity(event, exporter, &fixtures, scope, &mut raw);
            }
            _ => report.errors.push(format!(
                "R3 needs {} and {} in the scan set",
                scope.event_file, scope.exporter_file
            )),
        }
    }

    // R5 over the zero-alloc hot paths.
    for scope in &config.zero_alloc {
        match files.iter().find(|f| f.rel == scope.path) {
            Some(file) => rules::r5_zero_alloc(file, scope, &mut raw),
            None => report.errors.push(format!(
                "R5 zero-alloc path {} not found in scan set",
                scope.path
            )),
        }
    }

    // R4 per configured struct.
    for scope in &config.config_coverage {
        match files.iter().find(|f| f.rel == scope.path) {
            Some(file) => rules::r4_config_coverage(file, scope, &mut raw),
            None => report.errors.push(format!(
                "R4 config file {} not found in scan set",
                scope.path
            )),
        }
    }

    raw.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    raw.dedup();

    // Apply the allowlist: every diagnostic either stays or records which
    // entry covered it; every entry must cover something.
    let entries = match &config.allowlist {
        None => Vec::new(),
        Some(path) => match allow::load(path) {
            Ok(entries) => entries,
            Err(errs) => {
                for e in errs {
                    report.errors.push(e.to_string());
                }
                Vec::new()
            }
        },
    };
    let mut hits = vec![0usize; entries.len()];
    for diag in raw {
        let covering = entries.iter().position(|e| {
            e.rule == diag.rule
                && e.path == diag.path
                && (diag.snippet.contains(&e.pattern)
                    || (diag.line == 0 && diag.message.contains(&e.pattern)))
        });
        match covering {
            Some(idx) => {
                hits[idx] += 1;
                report.suppressed.push((diag, entries[idx].clone()));
            }
            None => report.diagnostics.push(diag),
        }
    }
    for (entry, count) in entries.iter().zip(&hits) {
        if *count == 0 {
            report.errors.push(format!(
                "lint-allow.toml:{}: stale entry (rule {}, path {}, pattern {:?}) \
                 suppresses nothing — delete it",
                entry.line, entry.rule, entry.path, entry.pattern
            ));
        }
    }
    report
}

/// Recursively collects `.rs` files under `root/dir` as root-relative,
/// `/`-separated paths.
fn collect_rs(root: &Path, dir: &str, out: &mut Vec<String>, errors: &mut Vec<String>) {
    let abs = root.join(dir);
    let entries = match fs::read_dir(&abs) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("cannot scan {dir}: {e}"));
            return;
        }
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        let rel = format!("{dir}/{name}");
        let path = entry.path();
        if path.is_dir() {
            collect_rs(root, &rel, out, errors);
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_config_lists_every_crate_src() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let cfg = LintConfig::workspace(root).unwrap();
        assert!(cfg.src_dirs.contains(&"crates/core/src".to_string()));
        assert!(cfg.src_dirs.contains(&"crates/lint/src".to_string()));
        assert!(cfg.trace_parity.is_some());
        assert_eq!(cfg.config_coverage.len(), 4);
        assert_eq!(cfg.zero_alloc.len(), 2, "unit datapath + fabric step loop");
    }
}
