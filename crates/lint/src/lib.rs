//! `nifdy-lint`: workspace static analysis for the NIFDY reproduction.
//!
//! The repo's headline guarantees — byte-identical parallel runs, sim/wire
//! conformance, trace/stats parity — are enforced dynamically by tests
//! that can silently lose coverage as code drifts. This crate is the
//! static backstop: a dependency-light item-level analyzer (no rustc, no
//! syn) that models every `crates/*/src/**.rs` as symbol tables plus a
//! conservative call graph ([`graph`]) and fails CI on nine invariant
//! classes (see [`rules`]):
//!
//! * **R1 panic-freedom** — no `unwrap`/`expect`/`panic!`/`unreachable!`
//!   (and, on byte-facing decode paths, no index expressions) anywhere in
//!   the transitive hot-path closure computed from the protocol entry
//!   points,
//! * **R2 determinism hygiene** — no wall clock, no ambient RNG, no
//!   hash-ordered containers in the deterministic crates,
//! * **R3 trace parity** — every `EventKind` variant is exported by both
//!   the JSONL and Perfetto exporters and exercised by trace fixtures,
//! * **R4 config coverage** — every config field is validated or
//!   builder-settable,
//! * **R5 zero-alloc steady state** — no fresh heap allocation in the
//!   closure of the stepped entry points (`NifdyUnit::step`,
//!   `Fabric::step` and friends),
//! * **R6 bounded capacity** — pushes into fixed-capacity structures are
//!   dominated by a capacity guard in the same fn,
//! * **R7 seq/epoch hygiene** — wire sequence/epoch fields use
//!   `wrapping_*`/`%` arithmetic, never bare `+`/`-`,
//! * **R8 no wildcard matches** — protocol-enum `match`es stay exhaustive
//!   so new variants fail loudly,
//! * **R9 lock discipline** — no `Mutex` guard held across
//!   `step`/`advance`/`poll_round`; trace locks acquire before registry
//!   locks.
//!
//! R1/R5 scope is *computed*, not enumerated: the engine seeds a closure
//! from entry points and walks every conservatively-reachable function,
//! so new datapaths (future `Nic` implementations included) are covered
//! the moment they become reachable. The closure is exported as a JSON
//! artifact (`--closure-json`) that CI archives and diffs run-over-run.
//!
//! Suppressions live in `lint-allow.toml` ([`allow`]) and must each carry
//! a written justification; entries that stop matching anything are hard
//! errors, so the allowlist cannot rot. Run it as
//! `cargo run -p nifdy-lint` (exit 0 = clean, 1 = violations, 2 = broken
//! allowlist or I/O error); `--json <path>` writes the machine-readable
//! report CI archives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod graph;
pub mod report;
pub mod rules;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allow::AllowEntry;
use graph::{crate_of, Demands, EntryPoint, Graph};
use rules::{
    ConfigCoverageScope, DeterminismScope, Diagnostic, SeqHygieneScope, TraceParityScope,
    WildcardScope,
};
use source::SourceFile;

/// What to analyze. [`LintConfig::workspace`] builds the real repo
/// configuration; fixture tests build small ad-hoc ones.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Analysis root; all configured paths are relative to it.
    pub root: PathBuf,
    /// Directories walked recursively for `.rs` files.
    pub src_dirs: Vec<String>,
    /// Crate names excluded from the call graph (tooling/harness crates
    /// that never sit on a protocol datapath). Everything else is in, so
    /// new protocol crates are covered by default.
    pub graph_exclude: Vec<String>,
    /// Hot-path closure seeds (R1/R5/R6 scope).
    pub entry_points: Vec<EntryPoint>,
    /// R2 scope (`None` disables the rule).
    pub determinism: Option<DeterminismScope>,
    /// R3 scope (`None` disables the rule).
    pub trace_parity: Option<TraceParityScope>,
    /// R4 scopes.
    pub config_coverage: Vec<ConfigCoverageScope>,
    /// R7 scope (`None` disables the rule).
    pub seq_hygiene: Option<SeqHygieneScope>,
    /// R8 scope (`None` disables the rule).
    pub wildcard: Option<WildcardScope>,
    /// Crate names R9 lock discipline applies in.
    pub lock_crates: Vec<String>,
    /// `lint-allow.toml` location (`None` = no suppressions).
    pub allowlist: Option<PathBuf>,
}

const PANIC: Demands = Demands {
    panic: true,
    index: false,
    alloc: false,
};
const PANIC_INDEX: Demands = Demands {
    panic: true,
    index: true,
    alloc: false,
};
const PANIC_ALLOC: Demands = Demands {
    panic: true,
    index: false,
    alloc: true,
};

fn entry(type_name: Option<&str>, fn_name: &str, demands: Demands) -> EntryPoint {
    EntryPoint {
        type_name: type_name.map(str::to_string),
        fn_name: fn_name.to_string(),
        demands,
    }
}

impl LintConfig {
    /// The NIFDY workspace rule set, rooted at the repo checkout.
    ///
    /// Entry points seed the hot-path closure with per-entry demands:
    ///
    /// * the stepped datapaths — `NifdyUnit` (`step`/`poll`/`try_send`/
    ///   `next_event`/`has_deliverable`) and the fabric per-cycle loop
    ///   (`Fabric::step`/`advance_to`/`next_event`) — demand panic- and
    ///   alloc-freedom (flits live in the slab arena, bookkeeping in
    ///   preallocated deques);
    /// * the byte-facing wire surface — the codec free functions and the
    ///   chaos-plane `FaultyTransport` — demands panic- and
    ///   index-freedom (decode must be total over arbitrary bytes);
    /// * the endpoint poll paths (`WireEndpoint`, `SupervisedEndpoint`,
    ///   `Supervisor`) and the node daemon round (`NifdyNode::poll_round`)
    ///   demand panic-freedom.
    ///
    /// The graph covers every crate except the tooling set
    /// (`graph_exclude`), so a future `Nic` implementation is scanned the
    /// moment an entry point reaches it.
    pub fn workspace(root: PathBuf) -> io::Result<LintConfig> {
        let crates_dir = root.join("crates");
        let mut src_dirs = Vec::new();
        let mut names: Vec<String> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().join("src").is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        for name in names {
            src_dirs.push(format!("crates/{name}/src"));
        }
        let allowlist = Some(root.join("lint-allow.toml"));
        let protocol_crates: Vec<String> = ["core", "net", "wire", "node", "sim", "trace"]
            .map(String::from)
            .to_vec();
        Ok(LintConfig {
            root,
            src_dirs,
            graph_exclude: ["analyze", "bench", "harness", "lint", "traffic"]
                .map(String::from)
                .to_vec(),
            entry_points: vec![
                entry(Some("NifdyUnit"), "step", PANIC_ALLOC),
                entry(Some("NifdyUnit"), "poll", PANIC_ALLOC),
                entry(Some("NifdyUnit"), "try_send", PANIC_ALLOC),
                entry(Some("NifdyUnit"), "next_event", PANIC_ALLOC),
                entry(Some("NifdyUnit"), "has_deliverable", PANIC_ALLOC),
                entry(Some("Fabric"), "step", PANIC_ALLOC),
                entry(Some("Fabric"), "advance_to", PANIC_ALLOC),
                entry(Some("Fabric"), "next_event", PANIC_ALLOC),
                entry(None, "decode", PANIC_INDEX),
                entry(None, "decode_frame", PANIC_INDEX),
                entry(None, "peek_route", PANIC_INDEX),
                entry(None, "encode", PANIC),
                entry(None, "encode_heartbeat", PANIC),
                entry(Some("FaultyTransport"), "send", PANIC_INDEX),
                entry(Some("FaultyTransport"), "recv", PANIC_INDEX),
                entry(Some("FaultyTransport"), "tick", PANIC_INDEX),
                entry(Some("WireEndpoint"), "step", PANIC),
                entry(Some("WireEndpoint"), "poll", PANIC),
                entry(Some("WireEndpoint"), "try_send", PANIC),
                entry(Some("WireEndpoint"), "next_event", PANIC),
                entry(Some("SupervisedEndpoint"), "step", PANIC),
                entry(Some("SupervisedEndpoint"), "next_event", PANIC),
                entry(Some("Supervisor"), "step", PANIC),
                entry(Some("NifdyNode"), "poll_round", PANIC),
            ],
            determinism: Some(DeterminismScope {
                hash_dir_prefixes: vec![
                    "crates/sim/".into(),
                    "crates/core/".into(),
                    "crates/net/".into(),
                    "crates/traffic/".into(),
                    "crates/trace/".into(),
                    "crates/analyze/".into(),
                ],
            }),
            trace_parity: Some(TraceParityScope {
                event_file: "crates/trace/src/event.rs".into(),
                enum_name: "EventKind".into(),
                name_fn: "name".into(),
                count_const: "VARIANT_COUNT".into(),
                exporter_file: "crates/trace/src/export.rs".into(),
                jsonl_fn: "kind_args".into(),
                chrome_fn: "to_chrome_trace".into(),
                fixture_files: vec![
                    "crates/trace/tests/exporter_coverage.rs".into(),
                    "crates/net/tests/trace_parity.rs".into(),
                    "crates/harness/tests/trace_export.rs".into(),
                ],
            }),
            config_coverage: vec![
                ConfigCoverageScope {
                    path: "crates/core/src/config.rs".into(),
                    struct_name: "NifdyConfig".into(),
                    validate_fn: "validate".into(),
                },
                ConfigCoverageScope {
                    path: "crates/net/src/fault.rs".into(),
                    struct_name: "FaultConfig".into(),
                    validate_fn: "validate".into(),
                },
                ConfigCoverageScope {
                    path: "crates/wire/src/fault.rs".into(),
                    struct_name: "WireFaultConfig".into(),
                    validate_fn: "validate".into(),
                },
                ConfigCoverageScope {
                    path: "crates/wire/src/supervisor.rs".into(),
                    struct_name: "SupervisorConfig".into(),
                    validate_fn: "validate".into(),
                },
            ],
            seq_hygiene: Some(SeqHygieneScope {
                crates: protocol_crates.clone(),
            }),
            wildcard: Some(WildcardScope {
                crates: protocol_crates.clone(),
                enums: vec![
                    "WireFrame".into(),
                    "Wire".into(),
                    "EventKind".into(),
                    "WireError".into(),
                    "DeliveryFailure".into(),
                    "Wakeup".into(),
                ],
            }),
            lock_crates: {
                let mut crates = protocol_crates;
                crates.push("traffic".into());
                crates
            },
            allowlist,
        })
    }
}

/// Engine output: active violations, suppressed findings (with the entry
/// that covered each), and fatal errors (allowlist schema/staleness, I/O).
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed violations, sorted `(path, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings covered by a justified allowlist entry.
    pub suppressed: Vec<(Diagnostic, AllowEntry)>,
    /// Hard errors; any entry makes the run fail with exit 2.
    pub errors: Vec<String>,
    /// How many files the scan covered.
    pub files_scanned: usize,
    /// The hot-path-closure artifact (JSON), for `--closure-json`.
    pub closure_json: String,
    /// Functions in the closure.
    pub closure_fn_count: usize,
    /// Crates contributing at least one closure fn.
    pub closure_crates: Vec<String>,
}

impl LintReport {
    /// No violations and no errors.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.errors.is_empty()
    }
}

/// Runs every configured rule and applies the allowlist.
pub fn run(config: &LintConfig) -> LintReport {
    let mut report = LintReport::default();
    let mut raw: Vec<Diagnostic> = Vec::new();

    // Discover and model the source set.
    let mut files: Vec<SourceFile> = Vec::new();
    for dir in &config.src_dirs {
        let mut rels = Vec::new();
        collect_rs(&config.root, dir, &mut rels, &mut report.errors);
        rels.sort();
        for rel in rels {
            match SourceFile::load(&config.root, &rel) {
                Ok(f) => files.push(f),
                Err(e) => report.errors.push(format!("cannot read {rel}: {e}")),
            }
        }
    }
    report.files_scanned = files.len();

    // Build the call graph and the hot-path closure (R1/R5/R6 scope). An
    // entry point that matches no symbol means the protocol surface moved
    // under the config — fatal, exactly like the old missing-fn errors.
    let include = |c: &str| !config.graph_exclude.iter().any(|e| e == c);
    let graph = Graph::build(&files, &include, &config.entry_points);
    for missing in &graph.unmatched_entries {
        report.errors.push(format!(
            "entry point `{missing}` matched no function in the call graph; \
             the protocol surface moved — update LintConfig::workspace"
        ));
    }
    report.closure_json = graph.closure_json(&files, &config.entry_points);
    report.closure_fn_count = graph.closure.len();
    report.closure_crates = graph.crates_in_closure.iter().cloned().collect();

    // R1 + R5 over the closure, R6 over the closure's container pushes.
    rules::closure_rules(&files, &graph, &mut raw);
    rules::r6_bounded_capacity(&files, &graph, &mut raw);

    // R2 over every scanned file.
    if let Some(scope) = &config.determinism {
        for file in &files {
            rules::r2_determinism(file, scope, &mut raw);
        }
    }

    // R3 loads its fixture files on top of the scan set.
    if let Some(scope) = &config.trace_parity {
        let event = files.iter().find(|f| f.rel == scope.event_file);
        let exporter = files.iter().find(|f| f.rel == scope.exporter_file);
        match (event, exporter) {
            (Some(event), Some(exporter)) => {
                let mut fixtures = Vec::new();
                for rel in &scope.fixture_files {
                    match SourceFile::load(&config.root, rel) {
                        Ok(f) => fixtures.push(f),
                        Err(e) => report
                            .errors
                            .push(format!("R3 fixture file {rel} unreadable: {e}")),
                    }
                }
                rules::r3_trace_parity(event, exporter, &fixtures, scope, &mut raw);
            }
            _ => report.errors.push(format!(
                "R3 needs {} and {} in the scan set",
                scope.event_file, scope.exporter_file
            )),
        }
    }

    // R4 per configured struct.
    for scope in &config.config_coverage {
        match files.iter().find(|f| f.rel == scope.path) {
            Some(file) => rules::r4_config_coverage(file, scope, &mut raw),
            None => report.errors.push(format!(
                "R4 config file {} not found in scan set",
                scope.path
            )),
        }
    }

    // R7 over the protocol crates' wire-seq vocabulary.
    if let Some(scope) = &config.seq_hygiene {
        let scope_files: Vec<usize> = files
            .iter()
            .enumerate()
            .filter(|(_, f)| crate_of(&f.rel).is_some_and(|c| scope.crates.iter().any(|s| s == c)))
            .map(|(i, _)| i)
            .collect();
        rules::r7_seq_hygiene(&files, &scope_files, &mut raw);
    }

    // R8 per protocol-crate file.
    if let Some(scope) = &config.wildcard {
        for file in &files {
            if crate_of(&file.rel).is_some_and(|c| scope.crates.iter().any(|s| s == c)) {
                rules::r8_no_wildcard(file, scope, &mut raw);
            }
        }
    }

    // R9 per lock-scope file.
    for file in &files {
        if crate_of(&file.rel).is_some_and(|c| config.lock_crates.iter().any(|s| s == c)) {
            rules::r9_lock_discipline(file, &mut raw);
        }
    }

    raw.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    raw.dedup();

    // Apply the allowlist: every diagnostic either stays or records which
    // entry covered it; every entry must cover something.
    let entries = match &config.allowlist {
        None => Vec::new(),
        Some(path) => match allow::load(path) {
            Ok(entries) => entries,
            Err(errs) => {
                for e in errs {
                    report.errors.push(e.to_string());
                }
                Vec::new()
            }
        },
    };
    let mut hits = vec![0usize; entries.len()];
    for diag in raw {
        let covering = entries.iter().position(|e| {
            e.rule == diag.rule
                && e.path == diag.path
                && (diag.snippet.contains(&e.pattern)
                    || (diag.line == 0 && diag.message.contains(&e.pattern)))
        });
        match covering {
            Some(idx) => {
                hits[idx] += 1;
                report.suppressed.push((diag, entries[idx].clone()));
            }
            None => report.diagnostics.push(diag),
        }
    }
    for (entry, count) in entries.iter().zip(&hits) {
        if *count == 0 {
            report.errors.push(format!(
                "lint-allow.toml:{}: stale entry (rule {}, path {}, pattern {:?}) \
                 suppresses nothing — delete it",
                entry.line, entry.rule, entry.path, entry.pattern
            ));
        }
    }
    report
}

/// Recursively collects `.rs` files under `root/dir` as root-relative,
/// `/`-separated paths.
fn collect_rs(root: &Path, dir: &str, out: &mut Vec<String>, errors: &mut Vec<String>) {
    let abs = root.join(dir);
    let entries = match fs::read_dir(&abs) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("cannot scan {dir}: {e}"));
            return;
        }
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        let rel = format!("{dir}/{name}");
        let path = entry.path();
        if path.is_dir() {
            collect_rs(root, &rel, out, errors);
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn workspace_config_lists_every_crate_src() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let cfg = LintConfig::workspace(root).unwrap();
        assert!(cfg.src_dirs.contains(&"crates/core/src".to_string()));
        assert!(cfg.src_dirs.contains(&"crates/lint/src".to_string()));
        assert!(cfg.trace_parity.is_some());
        assert_eq!(cfg.config_coverage.len(), 4);
    }

    #[test]
    fn workspace_config_has_no_enumerated_fn_scopes() {
        // The closure replaces the old hand-listed file+fn scopes: the only
        // names in the config are entry points (type + fn), and the graph
        // exclusion is by crate, not by file.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let cfg = LintConfig::workspace(root).unwrap();
        assert!(cfg.entry_points.len() >= 20);
        assert!(cfg
            .entry_points
            .iter()
            .any(|e| e.type_name.as_deref() == Some("NifdyUnit") && e.fn_name == "step"));
        assert!(cfg
            .entry_points
            .iter()
            .any(|e| e.type_name.is_none() && e.fn_name == "decode"));
        assert!(cfg.graph_exclude.contains(&"lint".to_string()));
        assert!(!cfg.graph_exclude.contains(&"core".to_string()));
    }

    #[test]
    fn graph_exclusion_keeps_protocol_crates_in() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let cfg = LintConfig::workspace(root).unwrap();
        let covered: BTreeSet<&str> = ["core", "net", "wire", "node", "sim", "trace"]
            .into_iter()
            .collect();
        for c in &covered {
            assert!(
                !cfg.graph_exclude.iter().any(|e| e == c),
                "protocol crate {c} must stay in the graph"
            );
        }
    }
}
