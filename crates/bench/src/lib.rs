//! Benchmark-only crate: see the `benches/` directory. Each bench target
//! regenerates part of the paper's evaluation:
//!
//! * `figures` — Figures 2–9 (prints each table, times one cell each),
//! * `table3` — Table 3 profiles and the zero-load latency probe,
//! * `ablations` — the design-choice ablations called out in DESIGN.md
//!   (ack timing, combined vs per-packet bulk acks, pool vs FIFO),
//! * `microbench` — raw fabric and NIC stepping throughput.

#![forbid(unsafe_code)]
