//! Clean vs. chaos transport throughput for the byte-level wire stack: the
//! same two-node bulk stream over a bare loopback transport and over a
//! [`FaultyTransport`] running the recoverable chaos mix, plus the
//! `nifdy-node` daemon driving a full rotation across 64/256/1024 hosted
//! endpoints. Besides the criterion smoke timings, the run writes a
//! machine-readable snapshot to `BENCH_wire.json` (override the path with
//! the `BENCH_WIRE_JSON` env var) so throughput regressions are diffable
//! across commits.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use nifdy::{NifdyConfig, OutboundPacket};
use nifdy_net::{GilbertElliott, UserData};
use nifdy_node::workload::{run_local, SwarmPlan};
use nifdy_node::NodeConfig;
use nifdy_sim::NodeId;
use nifdy_trace::json::Json;
use nifdy_trace::WireFaultCause;
use nifdy_wire::codec::BYTES_PER_WORD;
use nifdy_wire::{
    FaultyTransport, LoopbackHub, LoopbackTransport, Transport, WireEndpoint, WireFaultConfig,
};

type CleanEndpoint = WireEndpoint<LoopbackTransport>;
type ChaosEndpoint = WireEndpoint<FaultyTransport<LoopbackTransport>>;

const SIZE_WORDS: u16 = 6;
const HUB_LATENCY: u64 = 8;
const MEAN_LOSS: f64 = 0.05;
const SEED: u64 = 1;

fn config() -> NifdyConfig {
    NifdyConfig::builder()
        .opt_entries(4)
        .pool_entries(8)
        .max_dialogs(1)
        .window(8)
        .build()
        .expect("wire bench config is valid")
        .with_retx_timeout(64)
        .with_adaptive_rto(true)
        .with_retx_budget(30)
}

fn chaos_faults() -> WireFaultConfig {
    WireFaultConfig::default()
        .with_burst(GilbertElliott::with_mean_loss(MEAN_LOSS))
        .with_corrupt_prob(0.02)
        .with_duplicate_prob(0.02)
}

/// Streams `packets` bulk packets from node 0 to node 1 and returns the
/// endpoints plus the cycle of the last delivery.
fn drive<T: Transport>(
    hub: &LoopbackHub,
    mut tx: WireEndpoint<T>,
    mut rx: WireEndpoint<T>,
    packets: u32,
) -> (u64, WireEndpoint<T>, WireEndpoint<T>) {
    let n1 = NodeId::new(1);
    let mut sent = 0u32;
    let mut got = 0u32;
    let mut last_delivery = 0u64;
    let deadline = 500_000 + u64::from(packets) * 4_000;
    while got < packets {
        assert!(
            hub.now().as_u64() < deadline,
            "wire bench wedged at {got}/{packets}"
        );
        if sent < packets {
            let pkt = OutboundPacket::new(n1, SIZE_WORDS)
                .with_bulk(true)
                .with_user(UserData {
                    msg_id: SEED,
                    pkt_index: sent,
                    msg_packets: packets,
                    user_words: SIZE_WORDS - 2,
                });
            if tx.try_send(pkt) {
                sent += 1;
            }
        }
        tx.step();
        rx.step();
        assert!(
            tx.take_failures().is_empty(),
            "recoverable chaos must not fail deliveries in the bench"
        );
        while let Some(d) = rx.poll() {
            let _ = d;
            got += 1;
            last_delivery = hub.now().as_u64();
        }
        hub.tick();
    }
    (last_delivery, tx, rx)
}

fn clean_pair(hub: &LoopbackHub) -> (CleanEndpoint, CleanEndpoint) {
    let n0 = NodeId::new(0);
    let n1 = NodeId::new(1);
    (
        WireEndpoint::new(n0, config(), hub.endpoint(n0)),
        WireEndpoint::new(n1, config(), hub.endpoint(n1)),
    )
}

fn chaos_pair(hub: &LoopbackHub) -> (ChaosEndpoint, ChaosEndpoint) {
    let n0 = NodeId::new(0);
    let n1 = NodeId::new(1);
    (
        WireEndpoint::new(
            n0,
            config(),
            FaultyTransport::new(hub.endpoint(n0), chaos_faults(), SEED),
        ),
        WireEndpoint::new(
            n1,
            config(),
            FaultyTransport::new(hub.endpoint(n1), chaos_faults(), SEED),
        ),
    )
}

fn bench_clean(c: &mut Criterion) {
    c.bench_function("wire-loopback-clean-256pkts", |b| {
        b.iter(|| {
            let hub = LoopbackHub::new(2, HUB_LATENCY);
            let (tx, rx) = clean_pair(&hub);
            drive(&hub, tx, rx, 256).0
        })
    });
}

fn bench_chaos(c: &mut Criterion) {
    c.bench_function("wire-loopback-chaos-256pkts", |b| {
        b.iter(|| {
            let hub = LoopbackHub::new(2, HUB_LATENCY);
            let (tx, rx) = chaos_pair(&hub);
            drive(&hub, tx, rx, 256).0
        })
    });
}

/// The seeded rotation a daemon bench cell runs: every endpoint streams
/// two 4-packet bulk messages to its partner.
fn daemon_plan(endpoints: usize) -> SwarmPlan {
    SwarmPlan::rotation(endpoints, 2, 4, SIZE_WORDS, true, SEED)
}

fn daemon_config() -> NodeConfig {
    NodeConfig::default()
        .with_shards(8)
        .with_batch(64)
        .with_seed(SEED)
}

fn bench_daemon(c: &mut Criterion) {
    c.bench_function("node-daemon-256ep-rotation", |b| {
        b.iter(|| {
            let run = run_local(&daemon_plan(256), daemon_config(), 1_000_000);
            assert!(
                run.stats.shards.iter().all(|s| s.failures == 0),
                "daemon bench lost packets"
            );
            run.rounds
        })
    });
}

/// One daemon cell of the snapshot: a full in-order rotation across
/// `endpoints` hosted endpoints, reported as wire frames per second.
fn daemon_cell(endpoints: usize) -> (&'static str, Json) {
    let plan = daemon_plan(endpoints);
    let start = Instant::now();
    let run = run_local(&plan, daemon_config(), 1_000_000);
    let wall = start.elapsed();
    assert_eq!(
        run.log,
        plan.expected_log(),
        "daemon bench diverged from send order at {endpoints} endpoints"
    );
    let secs = wall.as_secs_f64().max(1e-9);
    let packets = plan.total_packets();
    let key = match endpoints {
        64 => "ep64",
        256 => "ep256",
        _ => "ep1024",
    };
    (
        key,
        Json::obj([
            ("endpoints", Json::u64(endpoints as u64)),
            ("packets", Json::u64(packets)),
            ("rounds", Json::u64(run.rounds)),
            ("wall_ms", Json::Num(secs * 1e3)),
            (
                "frames_per_sec",
                Json::Num(run.stats.frames_in as f64 / secs),
            ),
            ("packets_per_sec", Json::Num(packets as f64 / secs)),
        ]),
    )
}

/// One timed cell of the snapshot: wall time and simulated cycles for a
/// fixed-size stream.
fn timed_cell(chaos: bool, packets: u32) -> (u64, Duration, u64, Vec<(&'static str, u64)>) {
    let hub = LoopbackHub::new(2, HUB_LATENCY);
    let start = Instant::now();
    if chaos {
        let (tx, rx) = chaos_pair(&hub);
        let (cycles, tx, rx) = drive(&hub, tx, rx, packets);
        let wall = start.elapsed();
        let retx = tx.stats().retransmitted.get();
        let counts = WireFaultCause::ALL
            .iter()
            .map(|&cause| {
                let n = tx.port().transport().stats().count(cause)
                    + rx.port().transport().stats().count(cause);
                (cause.label(), n)
            })
            .collect();
        (cycles, wall, retx, counts)
    } else {
        let (tx, rx) = clean_pair(&hub);
        let (cycles, tx, _rx) = drive(&hub, tx, rx, packets);
        let wall = start.elapsed();
        (cycles, wall, tx.stats().retransmitted.get(), Vec::new())
    }
}

fn cell_json(packets: u32, cycles: u64, wall: Duration, retx: u64) -> Vec<(&'static str, Json)> {
    let bytes = u64::from(packets) * u64::from(SIZE_WORDS) * BYTES_PER_WORD as u64;
    let secs = wall.as_secs_f64().max(1e-9);
    vec![
        ("packets", Json::u64(u64::from(packets))),
        ("cycles", Json::u64(cycles)),
        ("wall_ms", Json::Num(secs * 1e3)),
        ("packets_per_sec", Json::Num(f64::from(packets) / secs)),
        (
            "bytes_per_cycle",
            Json::Num(bytes as f64 / cycles.max(1) as f64),
        ),
        ("retransmits", Json::u64(retx)),
    ]
}

/// Writes the clean-vs-chaos snapshot consumed by trend tooling.
fn emit_snapshot() {
    let packets = 4_096u32;
    let (clean_cycles, clean_wall, clean_retx, _) = timed_cell(false, packets);
    let (chaos_cycles, chaos_wall, chaos_retx, faults) = timed_cell(true, packets);
    let mut chaos_fields = cell_json(packets, chaos_cycles, chaos_wall, chaos_retx);
    chaos_fields.push(("mean_loss", Json::Num(MEAN_LOSS)));
    chaos_fields.push((
        "fault_counts",
        Json::Obj(
            faults
                .iter()
                .map(|&(k, n)| (k.to_string(), Json::u64(n)))
                .collect(),
        ),
    ));
    let doc = Json::obj([
        ("bench", Json::str("wire")),
        ("seed", Json::u64(SEED)),
        ("size_words", Json::u64(u64::from(SIZE_WORDS))),
        ("hub_latency", Json::u64(HUB_LATENCY)),
        (
            "clean",
            Json::obj(cell_json(packets, clean_cycles, clean_wall, clean_retx)),
        ),
        ("chaos", Json::obj(chaos_fields)),
        (
            "chaos_cycle_overhead",
            Json::Num(chaos_cycles as f64 / clean_cycles.max(1) as f64),
        ),
        (
            "daemon",
            Json::obj([daemon_cell(64), daemon_cell(256), daemon_cell(1024)]),
        ),
    ]);
    let path = std::env::var("BENCH_WIRE_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json").into());
    match std::fs::write(&path, doc.render() + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

criterion_group! {
    name = wire;
    config = Criterion::default().sample_size(10);
    targets = bench_clean, bench_chaos, bench_daemon
}

fn main() {
    wire();
    emit_snapshot();
}
