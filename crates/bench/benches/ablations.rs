//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. **Ack timing** — ack on processor accept (the paper's choice) vs ack
//!    on arrivals-FIFO insert (footnote 2: "surprisingly less effective").
//! 2. **Window ack policy** — one combined ack per `W/2` packets (Equation
//!    3) vs an ack per bulk packet (§2.4.2's alternative).
//! 3. **Outgoing pool vs strict FIFO** — NIFDY's rank/eligibility pool vs
//!    the same buffering as a head-of-line FIFO (the buffers-only NIC).
//!
//! Each ablation prints the measured figures (packets delivered / acks
//! sent) and times both variants.

use criterion::{criterion_group, criterion_main, Criterion};
use nifdy::NifdyConfig;
use nifdy_harness::{fig23, NetworkKind, Scale};
use nifdy_net::Fabric;
use nifdy_traffic::{CShiftConfig, Driver, NicChoice, SoftwareModel};

const SCALE: Scale = Scale::Smoke;
const SEED: u64 = 1;

/// C-shift completion cycles and total acks with a given NIFDY config.
fn cshift_run(cfg: NifdyConfig) -> (u64, u64) {
    let kind = NetworkKind::Cm5;
    let nodes = 32;
    let fab = Fabric::new(kind.topology(nodes, SEED), kind.fabric_config(SEED));
    let sw = SoftwareModel::cm5_library(false);
    let wl = CShiftConfig::new(45, sw);
    let mut d =
        Driver::new(fab, &NicChoice::Nifdy(cfg), sw, wl.build(nodes)).expect("driver builds");
    assert!(d.run_until_quiet(10_000_000), "C-shift stuck");
    let acks: u64 = (0..nodes).map(|n| d.nic(n).stats().acks_sent.get()).sum();
    (d.fabric().now().as_u64(), acks)
}

fn ablation_ack_timing(c: &mut Criterion) {
    let kind = NetworkKind::Mesh2D;
    let on_accept = kind.nifdy_preset();
    let on_insert = kind.nifdy_preset().with_ack_on_insert(true);
    let a = fig23::run_cell(
        kind,
        &NicChoice::Nifdy(on_accept.clone()),
        true,
        SCALE,
        SEED,
    );
    let b = fig23::run_cell(
        kind,
        &NicChoice::Nifdy(on_insert.clone()),
        true,
        SCALE,
        SEED,
    );
    println!("== ablation: ack timing (heavy mesh, packets delivered) ==");
    println!("ack on processor accept : {a}");
    println!("ack on FIFO insert      : {b}  (the paper found this variant weaker)");
    c.bench_function("ablation/ack-on-accept", |bch| {
        bch.iter(|| {
            fig23::run_cell(
                kind,
                &NicChoice::Nifdy(on_accept.clone()),
                true,
                SCALE,
                SEED,
            )
        })
    });
    c.bench_function("ablation/ack-on-insert", |bch| {
        bch.iter(|| {
            fig23::run_cell(
                kind,
                &NicChoice::Nifdy(on_insert.clone()),
                true,
                SCALE,
                SEED,
            )
        })
    });
}

fn ablation_window_acks(c: &mut Criterion) {
    // W = 8 so the combined policy acks every 4 packets; the CM-5 preset's
    // W = 2 would make the two policies identical.
    let combined = NifdyConfig::builder()
        .opt_entries(8)
        .pool_entries(8)
        .max_dialogs(1)
        .window(8)
        .build()
        .expect("bench parameters are valid");
    let per_packet = combined.clone().with_bulk_ack_every_packet(true);
    let (t_comb, acks_comb) = cshift_run(combined.clone());
    let (t_pp, acks_pp) = cshift_run(per_packet.clone());
    println!("== ablation: combined vs per-packet bulk acks (C-shift, CM-5) ==");
    println!("combined (W/2)   : {t_comb} cycles, {acks_comb} acks");
    println!("per-packet       : {t_pp} cycles, {acks_pp} acks");
    assert!(
        acks_pp > acks_comb,
        "per-packet acks must generate more ack traffic"
    );
    c.bench_function("ablation/combined-acks", |b| {
        b.iter(|| cshift_run(combined.clone()).0)
    });
    c.bench_function("ablation/per-packet-acks", |b| {
        b.iter(|| cshift_run(per_packet.clone()).0)
    });
}

fn ablation_pool_vs_fifo(c: &mut Criterion) {
    let kind = NetworkKind::FatTree;
    let preset = kind.nifdy_preset();
    let pool = fig23::run_cell(kind, &NicChoice::Nifdy(preset.clone()), false, SCALE, SEED);
    let fifo = fig23::run_cell(
        kind,
        &NicChoice::BuffersOnly(preset.clone()),
        false,
        SCALE,
        SEED,
    );
    println!("== ablation: eligibility pool vs strict FIFO (light fat tree) ==");
    println!("NIFDY pool (rank/eligibility): {pool}");
    println!("same buffers, strict FIFO    : {fifo}");
    c.bench_function("ablation/pool", |b| {
        b.iter(|| fig23::run_cell(kind, &NicChoice::Nifdy(preset.clone()), false, SCALE, SEED))
    });
    c.bench_function("ablation/fifo", |b| {
        b.iter(|| {
            fig23::run_cell(
                kind,
                &NicChoice::BuffersOnly(preset.clone()),
                false,
                SCALE,
                SEED,
            )
        })
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_ack_timing, ablation_window_acks, ablation_pool_vs_fifo
}
criterion_main!(ablations);
