//! Regenerates Table 3 and times the zero-load latency probe that supplies
//! its `T_lat` column.

use criterion::{criterion_group, criterion_main, Criterion};
use nifdy_harness::{table3, Jobs, NetworkKind};

fn bench_table3(c: &mut Criterion) {
    let (table, _) = table3::run(1, Jobs::serial());
    println!("{table}");
    c.bench_function("table3/probe-latency/mesh-2d", |b| {
        b.iter(|| table3::probe_latency(NetworkKind::Mesh2D, 1))
    });
    c.bench_function("table3/probe-latency/fat-tree", |b| {
        b.iter(|| table3::probe_latency(NetworkKind::FatTree, 1))
    });
    c.bench_function("table3/full-profile", |b| {
        b.iter(|| table3::run(1, Jobs::serial()).1.len())
    });
}

criterion_group! {
    name = table3_bench;
    config = Criterion::default().sample_size(10);
    targets = bench_table3
}
criterion_main!(table3_bench);
