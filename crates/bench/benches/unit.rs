//! NIFDY unit stepping cost — the per-cycle protocol overhead every
//! simulated node pays — with a machine-readable snapshot. Besides the
//! criterion smoke timings, the run writes `BENCH_unit.json` (override
//! the path with the `BENCH_UNIT_JSON` env var) so protocol-hot-path
//! regressions are diffable across commits, alongside `BENCH_wire.json`
//! and `BENCH_fabric.json`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, BatchSize, Criterion};
use nifdy::{Nic, NifdyConfig, NifdyUnit, OutboundPacket};
use nifdy_harness::NetworkKind;
use nifdy_net::Fabric;
use nifdy_sim::NodeId;
use nifdy_trace::json::Json;

const NODES: usize = 64;
const SNAPSHOT_STEPS: u64 = 50_000;

/// A unit on a mesh with its send pool kept warm: eight scalar sends in
/// flight so stepping exercises the OPT, the pool, and ack processing.
fn loaded_unit() -> (Fabric, NifdyUnit) {
    let mut fab = Fabric::new(
        NetworkKind::Mesh2D.topology(NODES, 1),
        NetworkKind::Mesh2D.fabric_config(1),
    );
    let mut nic = NifdyUnit::new(NodeId::new(0), NifdyConfig::default());
    for i in 1..9 {
        let _ = nic.try_send(OutboundPacket::new(NodeId::new(i), 8), fab.now());
    }
    nic.step(&mut fab); // warm the first injection
    (fab, nic)
}

/// A unit with nothing to do: measures the fixed per-cycle overhead.
fn idle_unit() -> (Fabric, NifdyUnit) {
    let fab = Fabric::new(
        NetworkKind::Mesh2D.topology(NODES, 1),
        NetworkKind::Mesh2D.fabric_config(1),
    );
    let nic = NifdyUnit::new(NodeId::new(0), NifdyConfig::default());
    (fab, nic)
}

fn bench_unit_step(c: &mut Criterion) {
    c.bench_function("unit-bench-step-loaded", |b| {
        b.iter_batched_ref(
            loaded_unit,
            |(fab, nic)| {
                for _ in 0..1_000 {
                    nic.step(fab);
                    fab.step();
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("unit-bench-step-idle", |b| {
        b.iter_batched_ref(
            idle_unit,
            |(fab, nic)| {
                for _ in 0..1_000 {
                    nic.step(fab);
                    fab.step();
                }
            },
            BatchSize::SmallInput,
        )
    });
}

/// One snapshot cell: wall time for a fixed unit+fabric step count.
fn timed_cell(loaded: bool) -> Duration {
    let (mut fab, mut nic) = if loaded { loaded_unit() } else { idle_unit() };
    let start = Instant::now();
    for _ in 0..SNAPSHOT_STEPS {
        nic.step(&mut fab);
        fab.step();
    }
    start.elapsed()
}

fn cell_json(wall: Duration) -> Json {
    let secs = wall.as_secs_f64().max(1e-9);
    Json::obj([
        ("steps", Json::u64(SNAPSHOT_STEPS)),
        ("wall_ms", Json::Num(secs * 1e3)),
        ("steps_per_sec", Json::Num(SNAPSHOT_STEPS as f64 / secs)),
    ])
}

/// Writes the idle-vs-loaded unit-step snapshot consumed by trend tooling.
fn emit_snapshot() {
    let idle = timed_cell(false);
    let loaded = timed_cell(true);
    let doc = Json::obj([
        ("bench", Json::str("unit")),
        ("nodes", Json::u64(NODES as u64)),
        ("idle", cell_json(idle)),
        ("loaded", cell_json(loaded)),
        (
            "loaded_overhead",
            Json::Num(loaded.as_secs_f64() / idle.as_secs_f64().max(1e-9)),
        ),
    ]);
    let path = std::env::var("BENCH_UNIT_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_unit.json").into());
    match std::fs::write(&path, doc.render() + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

criterion_group! {
    name = unit;
    config = Criterion::default().sample_size(10);
    targets = bench_unit_step
}

fn main() {
    unit();
    emit_snapshot();
}
