//! One Criterion benchmark per paper figure. Each benchmark first prints
//! its figure's table (smoke scale) so `cargo bench` regenerates every
//! result the paper reports, then times one representative cell so
//! regressions in simulation throughput are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use nifdy_harness::{fig23, fig4, fig5, fig6, fig78, fig9, Jobs, NetworkKind, Scale};
use nifdy_traffic::NicChoice;

const SCALE: Scale = Scale::Smoke;
const SEED: u64 = 1;

fn bench_fig2(c: &mut Criterion) {
    let (table, _) = fig23::run(true, SCALE, SEED, Jobs::serial());
    println!("{table}");
    let preset = NetworkKind::Mesh2D.nifdy_preset();
    c.bench_function("fig2/mesh-2d/nifdy", |b| {
        b.iter(|| {
            fig23::run_cell(
                NetworkKind::Mesh2D,
                &NicChoice::Nifdy(preset.clone()),
                true,
                SCALE,
                SEED,
            )
        })
    });
}

fn bench_fig3(c: &mut Criterion) {
    let (table, _) = fig23::run(false, SCALE, SEED, Jobs::serial());
    println!("{table}");
    let preset = NetworkKind::FatTree.nifdy_preset();
    c.bench_function("fig3/fat-tree/nifdy", |b| {
        b.iter(|| {
            fig23::run_cell(
                NetworkKind::FatTree,
                &NicChoice::Nifdy(preset.clone()),
                false,
                SCALE,
                SEED,
            )
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    let (b_panel, o_panel, _) = fig4::run(SCALE, SEED, Jobs::serial());
    println!("{b_panel}");
    println!("{o_panel}");
    // Time a single cell (the full sweep above is printed once; timing it
    // per-iteration would take minutes per sample).
    let cfg = nifdy::NifdyConfig::builder()
        .opt_entries(8)
        .pool_entries(8)
        .max_dialogs(0)
        .window(2)
        .build()
        .expect("bench parameters are valid");
    c.bench_function("fig4/one-cell-64-nodes", |b| {
        b.iter(|| {
            fig23::run_cell(
                NetworkKind::FatTree,
                &NicChoice::Nifdy(cfg.clone()),
                true,
                SCALE,
                SEED,
            )
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    let (maps, _, _) = fig5::run(SCALE, SEED, Jobs::serial());
    println!("{maps}");
    c.bench_function("fig5/cshift-congestion-trace", |b| {
        b.iter(|| fig5::run_one(&NicChoice::Plain, SCALE, SEED).finish)
    });
}

fn bench_fig6(c: &mut Criterion) {
    let (table, _) = fig6::run(SCALE, SEED, Jobs::serial());
    println!("{table}");
    c.bench_function("fig6/one-config", |b| {
        b.iter(|| fig5::run_one(&NicChoice::Plain, SCALE, SEED).finish)
    });
}

fn bench_fig7(c: &mut Criterion) {
    let (table, _) = fig78::run(true, SCALE, SEED, Jobs::serial());
    println!("{table}");
    let preset = NetworkKind::FatTree.nifdy_preset();
    c.bench_function("fig7/fat-tree/nifdy", |b| {
        b.iter(|| {
            fig78::run_cell(
                NetworkKind::FatTree,
                &NicChoice::Nifdy(preset.clone()),
                true,
                true,
                SCALE,
                SEED,
            )
        })
    });
}

fn bench_fig8(c: &mut Criterion) {
    let (table, _) = fig78::run(false, SCALE, SEED, Jobs::serial());
    println!("{table}");
    let preset = NetworkKind::Mesh2D.nifdy_preset();
    c.bench_function("fig8/mesh-2d/nifdy", |b| {
        b.iter(|| {
            fig78::run_cell(
                NetworkKind::Mesh2D,
                &NicChoice::Nifdy(preset.clone()),
                true,
                false,
                SCALE,
                SEED,
            )
        })
    });
}

fn bench_fig9(c: &mut Criterion) {
    let (scan, coalesce, _) = fig9::run(SCALE, SEED, Jobs::serial());
    println!("{scan}");
    println!("{coalesce}");
    let preset = NetworkKind::SfFatTree.nifdy_preset();
    c.bench_function("fig9/sf-fat-tree/scan/nifdy", |b| {
        b.iter(|| {
            fig9::run_scan(
                NetworkKind::SfFatTree,
                &NicChoice::Nifdy(preset.clone()),
                0,
                SCALE,
                SEED,
            )
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2, bench_fig3, bench_fig4, bench_fig5, bench_fig6,
              bench_fig7, bench_fig8, bench_fig9
}
criterion_main!(figures);
