//! Fabric stepping throughput across the four topologies, with a
//! machine-readable snapshot. Besides the criterion smoke timings, the
//! run writes `BENCH_fabric.json` (override the path with the
//! `BENCH_FABRIC_JSON` env var) so simulator-throughput regressions are
//! diffable across commits, alongside `BENCH_wire.json` and
//! `BENCH_unit.json`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use nifdy_harness::NetworkKind;
use nifdy_net::Fabric;
use nifdy_sim::NodeId;
use nifdy_trace::json::Json;

const NODES: usize = 64;
const SNAPSHOT_STEPS: u64 = 20_000;

const KINDS: [NetworkKind; 4] = [
    NetworkKind::Mesh2D,
    NetworkKind::FatTree,
    NetworkKind::Cm5,
    NetworkKind::Butterfly,
];

/// A 64-node fabric primed with crossing traffic so the measurement sees
/// busy routers, not idle ones.
fn loaded_fabric(kind: NetworkKind) -> Fabric {
    let mut fab = Fabric::new(kind.topology(NODES, 1), kind.fabric_config(1));
    for i in 0..NODES / 2 {
        let src = NodeId::new(i);
        let dst = NodeId::new(NODES - 1 - i);
        let pkt = nifdy_net::Packet::data(nifdy_sim::PacketId::new(i as u64), src, dst, 8);
        fab.inject(src, pkt);
    }
    fab
}

fn bench_fabric_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric-bench-step");
    group.throughput(Throughput::Elements(1_000));
    for kind in KINDS {
        group.bench_function(kind.label(), |b| {
            b.iter_batched_ref(
                || loaded_fabric(kind),
                |fab| {
                    for _ in 0..1_000 {
                        fab.step();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// One snapshot cell: wall time for a fixed step count on a loaded fabric.
fn timed_cell(kind: NetworkKind) -> (Duration, u64) {
    let mut fab = loaded_fabric(kind);
    let start = Instant::now();
    for _ in 0..SNAPSHOT_STEPS {
        fab.step();
    }
    let stats = fab.stats();
    let delivered = stats.delivered[0].get() + stats.delivered[1].get();
    (start.elapsed(), delivered)
}

/// Writes the per-topology stepping-throughput snapshot consumed by trend
/// tooling.
fn emit_snapshot() {
    let mut cells = Vec::new();
    for kind in KINDS {
        let (wall, delivered) = timed_cell(kind);
        let secs = wall.as_secs_f64().max(1e-9);
        cells.push((
            kind.label().to_string(),
            Json::obj([
                ("steps", Json::u64(SNAPSHOT_STEPS)),
                ("wall_ms", Json::Num(secs * 1e3)),
                ("steps_per_sec", Json::Num(SNAPSHOT_STEPS as f64 / secs)),
                ("delivered", Json::u64(delivered)),
            ]),
        ));
    }
    let doc = Json::obj([
        ("bench", Json::str("fabric")),
        ("nodes", Json::u64(NODES as u64)),
        ("topologies", Json::Obj(cells.into_iter().collect())),
    ]);
    let path = std::env::var("BENCH_FABRIC_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fabric.json").into());
    match std::fs::write(&path, doc.render() + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

criterion_group! {
    name = fabric;
    config = Criterion::default().sample_size(10);
    targets = bench_fabric_step
}

fn main() {
    fabric();
    emit_snapshot();
}
