//! Fabric stepping throughput across the four topologies, with a
//! machine-readable snapshot. Besides the criterion smoke timings, the
//! run writes `BENCH_fabric.json` (override the path with the
//! `BENCH_FABRIC_JSON` env var) so simulator-throughput regressions are
//! diffable across commits, alongside `BENCH_wire.json` and
//! `BENCH_unit.json`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use nifdy_harness::NetworkKind;
use nifdy_net::Fabric;
use nifdy_sim::NodeId;
use nifdy_trace::json::Json;
use nifdy_traffic::{Engine, NicChoice, ScanConfig, Scenario, SoftwareModel};

const NODES: usize = 64;
const SNAPSHOT_STEPS: u64 = 20_000;

const KINDS: [NetworkKind; 4] = [
    NetworkKind::Mesh2D,
    NetworkKind::FatTree,
    NetworkKind::Cm5,
    NetworkKind::Butterfly,
];

/// A 64-node fabric primed with crossing traffic so the measurement sees
/// busy routers, not idle ones.
fn loaded_fabric(kind: NetworkKind) -> Fabric {
    let mut fab = Fabric::new(kind.topology(NODES, 1), kind.fabric_config(1));
    for i in 0..NODES / 2 {
        let src = NodeId::new(i);
        let dst = NodeId::new(NODES - 1 - i);
        let pkt = nifdy_net::Packet::data(nifdy_sim::PacketId::new(i as u64), src, dst, 8);
        fab.inject(src, pkt);
    }
    fab
}

fn bench_fabric_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric-bench-step");
    group.throughput(Throughput::Elements(1_000));
    for kind in KINDS {
        group.bench_function(kind.label(), |b| {
            b.iter_batched_ref(
                || loaded_fabric(kind),
                |fab| {
                    for _ in 0..1_000 {
                        fab.step();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// One snapshot cell: wall time for a fixed step count on a loaded fabric.
fn timed_cell(kind: NetworkKind) -> (Duration, u64) {
    let mut fab = loaded_fabric(kind);
    let start = Instant::now();
    for _ in 0..SNAPSHOT_STEPS {
        fab.step();
    }
    let stats = fab.stats();
    let delivered = stats.delivered[0].get() + stats.delivered[1].get();
    (start.elapsed(), delivered)
}

/// One full-scale fig9 radix-scan cell driven end to end under `engine`;
/// returns (simulated cycles, driver-stepped cycles, wall time).
fn scan_cell(delay: u64, engine: Engine) -> (u64, u64, Duration) {
    let kind = NetworkKind::FatTree;
    let sw = SoftwareModel::cm5_library(!kind.reorders());
    let mut d = Scenario::new(kind)
        .seed(1)
        .nic(NicChoice::Plain)
        .software(sw)
        .engine(engine)
        .build_with(|sc| {
            ScanConfig::radix8(sc.sw())
                .with_delay(delay)
                .build(sc.nodes())
        })
        .expect("fig9 scan cell builds");
    let start = Instant::now();
    assert!(d.run_until_quiet(1_000_000_000), "scan cell must finish");
    (
        d.fabric().now().as_u64(),
        d.cycles_stepped(),
        start.elapsed(),
    )
}

/// Cycle-vs-event engine comparison on representative fig9 full-scale
/// cells: the saturated radix scan (delay 0) and the sparser delayed scan.
/// Records simulated-cycles/sec for each engine so the bench gate tracks
/// end-to-end simulator throughput, not just raw fabric stepping.
fn engine_cells() -> Vec<(String, Json)> {
    let mut cells = Vec::new();
    for (label, delay) in [("scan-none-0", 0u64), ("scan-none-60", 60u64)] {
        let (cc, cs, cw) = scan_cell(delay, Engine::Cycle);
        let (ec, es, ew) = scan_cell(delay, Engine::Event);
        assert_eq!(cc, ec, "engines must agree on the simulated clock");
        let (cwall, ewall) = (cw.as_secs_f64().max(1e-9), ew.as_secs_f64().max(1e-9));
        cells.push((
            label.to_string(),
            Json::obj([
                ("cycles", Json::u64(cc)),
                ("cycle_stepped", Json::u64(cs)),
                ("event_stepped", Json::u64(es)),
                ("cycle_wall_ms", Json::Num(cwall * 1e3)),
                ("event_wall_ms", Json::Num(ewall * 1e3)),
                ("cycle_cycles_per_sec", Json::Num(cc as f64 / cwall)),
                ("event_cycles_per_sec", Json::Num(ec as f64 / ewall)),
            ]),
        ));
    }
    cells
}

/// Writes the per-topology stepping-throughput snapshot consumed by trend
/// tooling.
fn emit_snapshot() {
    let mut cells = Vec::new();
    for kind in KINDS {
        let (wall, delivered) = timed_cell(kind);
        let secs = wall.as_secs_f64().max(1e-9);
        cells.push((
            kind.label().to_string(),
            Json::obj([
                ("steps", Json::u64(SNAPSHOT_STEPS)),
                ("wall_ms", Json::Num(secs * 1e3)),
                ("steps_per_sec", Json::Num(SNAPSHOT_STEPS as f64 / secs)),
                ("delivered", Json::u64(delivered)),
            ]),
        ));
    }
    let doc = Json::obj([
        ("bench", Json::str("fabric")),
        ("nodes", Json::u64(NODES as u64)),
        ("topologies", Json::Obj(cells.into_iter().collect())),
        ("engines", Json::Obj(engine_cells().into_iter().collect())),
    ]);
    let path = std::env::var("BENCH_FABRIC_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fabric.json").into());
    match std::fs::write(&path, doc.render() + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

criterion_group! {
    name = fabric;
    config = Criterion::default().sample_size(10);
    targets = bench_fabric_step
}

fn main() {
    fabric();
    emit_snapshot();
}
