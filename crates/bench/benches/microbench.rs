//! Microbenchmarks of the simulation substrate itself: cycles simulated per
//! second for each fabric (idle and loaded) and the cost of one NIFDY unit
//! step. These guard the simulator's performance, which bounds how much of
//! the paper-scale evaluation is practical.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nifdy::{Nic, NifdyConfig, NifdyUnit, OutboundPacket};
use nifdy_harness::NetworkKind;
use nifdy_net::Fabric;
use nifdy_sim::NodeId;

fn loaded_fabric(kind: NetworkKind) -> Fabric {
    let mut fab = Fabric::new(kind.topology(64, 1), kind.fabric_config(1));
    // Prime with traffic so the benchmark measures busy routers.
    for i in 0..32 {
        let src = NodeId::new(i);
        let dst = NodeId::new(63 - i);
        let pkt = nifdy_net::Packet::data(nifdy_sim::PacketId::new(i as u64), src, dst, 8);
        fab.inject(src, pkt);
    }
    fab
}

fn bench_fabric_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric-step");
    group.throughput(Throughput::Elements(1_000));
    for kind in [
        NetworkKind::Mesh2D,
        NetworkKind::FatTree,
        NetworkKind::Cm5,
        NetworkKind::Butterfly,
    ] {
        group.bench_function(kind.label(), |b| {
            b.iter_batched_ref(
                || loaded_fabric(kind),
                |fab| {
                    for _ in 0..1_000 {
                        fab.step();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_nifdy_unit_step(c: &mut Criterion) {
    c.bench_function("nifdy-unit-step-with-pool", |b| {
        b.iter_batched_ref(
            || {
                let mut fab = Fabric::new(
                    NetworkKind::Mesh2D.topology(64, 1),
                    NetworkKind::Mesh2D.fabric_config(1),
                );
                let mut nic = NifdyUnit::new(NodeId::new(0), NifdyConfig::default());
                for i in 1..9 {
                    let _ = nic.try_send(OutboundPacket::new(NodeId::new(i), 8), fab.now());
                }
                nic.step(&mut fab); // warm the first injection
                (fab, nic)
            },
            |(fab, nic)| {
                for _ in 0..1_000 {
                    nic.step(fab);
                    fab.step();
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = bench_fabric_step, bench_nifdy_unit_step
}
criterion_main!(micro);
