//! Extension experiment: goodput and tail latency under bursty loss.
//!
//! [`run_lossy`] drives an 8×8 mesh whose fault plane injects
//! Gilbert–Elliott bursty loss (hitting data *and* ack packets) at a range
//! of mean loss rates, and compares the §6.2 retransmission extension with
//! a fixed timeout against the adaptive RTO (per-destination RTT estimate,
//! Karn's rule, exponential backoff), in both scalar and bulk mode.
//!
//! The expected picture: with a conservative fixed timeout, every loss
//! costs a full timeout period, so goodput collapses as loss rises; the
//! adaptive RTO converges to a timeout near the true round trip and
//! recovers losses orders of magnitude faster, at identical delivery
//! guarantees (the sweep asserts exactly-once, in-order delivery as it
//! runs).

use nifdy::{Nic, NifdyConfig, NifdyUnit, OutboundPacket};
use nifdy_net::topology::Mesh;
use nifdy_net::{Fabric, FabricConfig, FaultConfig, GilbertElliott, UserData};
use nifdy_sim::metrics::LogHistogram;
use nifdy_sim::NodeId;
use nifdy_trace::{MetricsRegistry, TraceConfig, TraceEvent, TraceHandle};

use crate::exec::{self, Jobs};
use crate::report::Table;
use crate::scale::Scale;

/// Nodes in the sweep fabric (8×8 mesh).
const NODES: usize = 64;

/// Conservative fixed retransmission timeout, in cycles — the §6.2 seed
/// setting, sized for worst-case congestion rather than the common case.
const FIXED_RTO: u64 = 2_500;

/// One cell of the lossy sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LossyPoint {
    /// `"scalar"` or `"bulk"`.
    pub mode: &'static str,
    /// `"fixed"` or `"adaptive"`.
    pub rto: &'static str,
    /// Mean Gilbert–Elliott loss, percent.
    pub loss_pct: u32,
    /// Packets delivered to processors (out of `64 · count`).
    pub delivered: u64,
    /// Delivered packets per 1000 cycles, over the time to finish.
    pub goodput: f64,
    /// Median NIC-to-processor delivery latency, cycles.
    pub p50_latency: u64,
    /// 99th-percentile NIC-to-processor delivery latency, cycles.
    pub p99_latency: u64,
    /// 99.9th-percentile NIC-to-processor delivery latency, cycles.
    pub p999_latency: u64,
    /// Total retransmissions across all nodes.
    pub retransmitted: u64,
}

/// Runs one configuration cell: every node sends `count` packets to the
/// node half the machine away, and the cell ends when all `64 · count`
/// packets are delivered (or a generous cycle limit trips).
///
/// Panics if any packet is delivered out of order or twice — the sweep
/// doubles as an end-to-end protocol check under loss.
fn lossy_cell(
    bulk: bool,
    adaptive: bool,
    loss_pct: u32,
    count: u32,
    seed: u64,
    trace: TraceHandle,
    mut registry: Option<&mut MetricsRegistry>,
) -> LossyPoint {
    /// Cycles between occupancy-gauge samples when a registry is attached.
    const GAUGE_PERIOD: u64 = 256;

    let mut fcfg = FabricConfig::default().with_seed(seed);
    if loss_pct > 0 {
        let ge = GilbertElliott::with_mean_loss(f64::from(loss_pct) / 100.0);
        fcfg = fcfg.with_fault(FaultConfig::default().with_burst(ge));
    }
    let mut fab = Fabric::new(Box::new(Mesh::d2(8, 8)), fcfg);
    fab.attach_trace(trace.clone());
    let base = NifdyConfig::mesh().with_retx_timeout(FIXED_RTO);
    let ncfg = if adaptive {
        base.with_adaptive_rto(true)
    } else {
        base
    };
    let mut nics: Vec<NifdyUnit> = (0..NODES)
        .map(|i| {
            let mut nic = NifdyUnit::new(NodeId::new(i), ncfg.clone());
            nic.attach_trace(trace.clone());
            nic
        })
        .collect();

    let partner = |i: usize| NodeId::new((i + NODES / 2) % NODES);
    let mut offered = vec![0u32; NODES];
    let mut expected = vec![0u32; NODES];
    let mut latencies = LogHistogram::default();
    let total = u64::from(count) * NODES as u64;
    let mut delivered = 0u64;
    let limit = u64::from(count) * 30_000 + 200_000;
    let mut finish = limit;

    while fab.now().as_u64() < limit {
        let now = fab.now();
        if let Some(reg) = registry.as_deref_mut() {
            if now.as_u64().is_multiple_of(GAUGE_PERIOD) {
                let mut occ = nifdy::NicOccupancy::default();
                for nic in &nics {
                    let o = nic.occupancy();
                    occ.pool = occ.pool.max(o.pool);
                    occ.opt = occ.opt.max(o.opt);
                    occ.retx_queue = occ.retx_queue.max(o.retx_queue);
                    occ.window_outstanding = occ.window_outstanding.max(o.window_outstanding);
                }
                reg.gauge("occupancy.pool.max", now, f64::from(occ.pool));
                reg.gauge("occupancy.opt.max", now, f64::from(occ.opt));
                reg.gauge("occupancy.retx_queue.max", now, f64::from(occ.retx_queue));
                reg.gauge("occupancy.window.max", now, occ.window_outstanding as f64);
                reg.gauge("fabric.in_flight", now, fab.in_network() as f64);
            }
        }
        for (i, nic) in nics.iter_mut().enumerate() {
            if offered[i] < count {
                let user = UserData {
                    // The send cycle rides in msg_id so delivery latency
                    // needs no side table; pkt_index carries the in-order
                    // sequence check.
                    msg_id: now.as_u64(),
                    pkt_index: offered[i],
                    msg_packets: count,
                    user_words: 6,
                };
                let pkt = OutboundPacket::new(partner(i), 8)
                    .with_bulk(bulk)
                    .with_user(user);
                if nic.try_send(pkt, now) {
                    offered[i] += 1;
                }
            }
        }
        for nic in &mut nics {
            nic.step(&mut fab);
        }
        fab.step();
        let now = fab.now();
        for (i, nic) in nics.iter_mut().enumerate() {
            while let Some(d) = nic.poll(now) {
                assert_eq!(d.src, partner(i), "wrong source at node {i}");
                assert_eq!(
                    d.user.pkt_index, expected[i],
                    "out-of-order or duplicate delivery at node {i}"
                );
                expected[i] += 1;
                latencies.record(now.as_u64().saturating_sub(d.user.msg_id));
                delivered += 1;
            }
        }
        if delivered == total {
            finish = fab.now().as_u64();
            break;
        }
    }

    if let Some(reg) = registry {
        reg.merge_histogram("delivery_latency.cycles", &latencies);
        reg.merge_histogram("fabric_latency.cycles", &fab.stats().latency_hist);
    }
    let retransmitted = nics.iter().map(|n| n.stats().retransmitted.get()).sum();
    LossyPoint {
        mode: if bulk { "bulk" } else { "scalar" },
        rto: if adaptive { "adaptive" } else { "fixed" },
        loss_pct,
        delivered,
        goodput: delivered as f64 * 1000.0 / finish.max(1) as f64,
        p50_latency: latencies.p50(),
        p99_latency: latencies.p99(),
        p999_latency: latencies.p999(),
        retransmitted,
    }
}

/// The full sweep: loss ∈ {0, 2, 5, 10, 20}% × {scalar, bulk} ×
/// {fixed, adaptive} RTO, on the 8×8 mesh.
pub fn run_lossy(scale: Scale, seed: u64, jobs: Jobs) -> (Table, Vec<LossyPoint>) {
    let count = scale.count(1_000) as u32;
    let mut table = Table::new(
        format!(
            "ext: bursty-loss sweep on the 8x8 mesh ({count} packets/node, \
             Gilbert-Elliott bursts hit data and acks, fixed RTO {FIXED_RTO})"
        ),
        vec![
            "loss%".into(),
            "mode".into(),
            "rto".into(),
            "delivered".into(),
            "goodput pkt/kcyc".into(),
            "p50 lat".into(),
            "p99 lat".into(),
            "p99.9 lat".into(),
            "retx".into(),
        ],
    );
    let mut cells = Vec::new();
    for (group, loss_pct) in [0u32, 2, 5, 10, 20].into_iter().enumerate() {
        for bulk in [false, true] {
            // fixed vs adaptive RTO at one (loss, mode) point is a paired
            // comparison: both share a derived seed.
            let pair_seed =
                exec::cell_seed("ext:lossy", (group * 2 + usize::from(bulk)) as u64, seed);
            for adaptive in [false, true] {
                cells.push((bulk, adaptive, loss_pct, pair_seed));
            }
        }
    }
    let points = exec::map(jobs, cells, |(bulk, adaptive, loss_pct, s), _| {
        lossy_cell(bulk, adaptive, loss_pct, count, s, TraceHandle::off(), None)
    });
    for p in &points {
        table.row(vec![
            p.loss_pct.to_string(),
            p.mode.into(),
            p.rto.into(),
            p.delivered.to_string(),
            format!("{:.2}", p.goodput),
            p.p50_latency.to_string(),
            p.p99_latency.to_string(),
            p.p999_latency.to_string(),
            p.retransmitted.to_string(),
        ]);
    }
    (table, points)
}

/// One fixed cell of the sweep — 5% bursty loss, scalar mode, adaptive RTO —
/// with the given trace handle attached. This is the workload the
/// tracing-overhead guard ([`crate::trace_guard`]) times with the handle
/// disconnected versus recording-but-unsampled.
pub fn run_guard_workload(scale: Scale, seed: u64, trace: TraceHandle) -> LossyPoint {
    let count = scale.count(1_000) as u32;
    lossy_cell(false, true, 5, count, seed, trace, None)
}

/// Re-runs the sweep's most interesting cell — 10% bursty loss, bulk mode,
/// adaptive RTO — with a flight recorder attached to every layer and a
/// metrics registry collecting latency histograms and occupancy gauges.
///
/// Returns the time-ordered event snapshot, the populated registry, and the
/// cell's summary point. This is what the `--trace-out` / `--metrics-out`
/// flags of the experiments binary export.
pub fn run_traced_cell(scale: Scale, seed: u64) -> (Vec<TraceEvent>, MetricsRegistry, LossyPoint) {
    let count = scale.count(1_000) as u32;
    let trace = TraceHandle::recording(TraceConfig::default());
    let mut registry = MetricsRegistry::new();
    let point = lossy_cell(
        true,
        true,
        10,
        count,
        seed,
        trace.clone(),
        Some(&mut registry),
    );
    (trace.snapshot(), registry, point)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_rto_beats_fixed_under_bursty_loss() {
        // The headline acceptance check: at 10% bursty loss on the 8x8
        // mesh, the adaptive RTO delivers measurably higher goodput than
        // the fixed timeout, in both scalar and bulk mode, with everything
        // delivered exactly once (asserted inside the cells).
        let (_, points) = run_lossy(Scale::Smoke, 7, Jobs::new(4));
        assert_eq!(points.len(), 20);
        // Sanity on the clean end of the sweep: with no loss, the fixed
        // 2500-cycle timeout never fires (no healthy round trip gets close).
        for p in points
            .iter()
            .filter(|p| p.loss_pct == 0 && p.rto == "fixed")
        {
            assert_eq!(p.retransmitted, 0, "{} retransmitted losslessly", p.mode);
        }
        let get = |mode: &str, rto: &str| {
            points
                .iter()
                .find(|p| p.loss_pct == 10 && p.mode == mode && p.rto == rto)
                .expect("cell")
        };
        for mode in ["scalar", "bulk"] {
            let fixed = get(mode, "fixed");
            let adaptive = get(mode, "adaptive");
            assert_eq!(
                fixed.delivered, adaptive.delivered,
                "{mode}: both variants must deliver everything"
            );
            assert!(
                adaptive.goodput > fixed.goodput,
                "{mode}: adaptive goodput {:.2} must beat fixed {:.2}",
                adaptive.goodput,
                fixed.goodput
            );
            assert!(
                adaptive.p99_latency < fixed.p99_latency,
                "{mode}: adaptive p99 {} must beat fixed {}",
                adaptive.p99_latency,
                fixed.p99_latency
            );
        }
    }
}
