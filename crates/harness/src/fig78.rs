//! Figures 7 and 8: EM3D cycles per iteration across networks, for the four
//! interface configurations. `nifdy-` is NIFDY's flow control only (the
//! library still reorders in software); `nifdy` additionally exploits
//! in-order delivery. "For networks that deliver packets in order (the 2D
//! mesh and the butterfly), the library intended for in-order delivery was
//! used for all runs."

use nifdy_net::Fabric;
use nifdy_traffic::{Driver, Em3dParams, NicChoice, SoftwareModel};

use crate::networks::NetworkKind;
use crate::report::Table;
use crate::scale::Scale;

/// One EM3D measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Em3dPoint {
    /// Network label.
    pub network: &'static str,
    /// Interface configuration label.
    pub config: &'static str,
    /// Average cycles per EM3D iteration.
    pub cycles_per_iter: f64,
}

/// Runs one EM3D cell.
pub fn run_cell(
    kind: NetworkKind,
    choice: &NicChoice,
    inorder_library: bool,
    less_comm: bool,
    scale: Scale,
    seed: u64,
) -> f64 {
    let fab = Fabric::new(kind.topology(64, seed), kind.fabric_config(seed));
    // In-order networks always get the in-order library.
    let inorder = inorder_library || !kind.reorders();
    let sw = SoftwareModel::cm5_library(!inorder);
    let mut params = if less_comm {
        Em3dParams::less_communication(seed)
    } else {
        Em3dParams::more_communication(seed)
    };
    // Scale the graph volume with the run scale: communication traffic is
    // linear in n_nodes, so shapes are preserved.
    match scale {
        Scale::Full => params.iters = 3,
        Scale::Quick => {
            params.iters = 2;
            params.n_nodes /= 4;
        }
        Scale::Smoke => {
            params.iters = 1;
            params.n_nodes /= 10;
        }
    }
    let iters = params.iters;
    let mut driver = Driver::new(fab, choice, sw, params.build(64, sw));
    let finished = driver.run_until_quiet(scale.cycles(400_000_000));
    debug_assert!(finished, "EM3D did not drain");
    driver.fabric().now().as_u64() as f64 / f64::from(iters)
}

/// Runs a full EM3D figure (7 when `less_comm`, 8 otherwise).
pub fn run(less_comm: bool, scale: Scale, seed: u64) -> (Table, Vec<Em3dPoint>) {
    let figure = if less_comm { 7 } else { 8 };
    let mut table = Table::new(
        format!(
            "Figure {figure}: EM3D cycles per iteration ({} communication)",
            if less_comm { "less" } else { "more" }
        ),
        vec![
            "network".into(),
            "none".into(),
            "buffers".into(),
            "nifdy-".into(),
            "nifdy".into(),
        ],
    );
    let mut points = Vec::new();
    for kind in NetworkKind::ALL {
        let preset = kind.nifdy_preset();
        let cases: [(&'static str, NicChoice, bool); 4] = [
            ("none", NicChoice::Plain, false),
            ("buffers", NicChoice::BuffersOnly(preset.clone()), false),
            ("nifdy-", NicChoice::Nifdy(preset.clone()), false),
            ("nifdy", NicChoice::Nifdy(preset), true),
        ];
        let mut row = vec![kind.label().to_string()];
        for (label, choice, inorder) in cases {
            let cpi = run_cell(kind, &choice, inorder, less_comm, scale, seed);
            points.push(Em3dPoint {
                network: kind.label(),
                config: label,
                cycles_per_iter: cpi,
            });
            row.push(format!("{cpi:.0}"));
        }
        table.row(row);
    }
    (table, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn em3d_runs_on_a_reordering_network() {
        let kind = NetworkKind::FatTree;
        let preset = kind.nifdy_preset();
        let without = run_cell(kind, &NicChoice::Plain, false, false, Scale::Smoke, 2);
        let with = run_cell(
            kind,
            &NicChoice::Nifdy(preset),
            true,
            false,
            Scale::Smoke,
            2,
        );
        assert!(without > 0.0 && with > 0.0);
        // In-order payload gain: NIFDY sends fewer packets, so it should not
        // be dramatically slower.
        assert!(
            with <= 1.5 * without,
            "nifdy {with} vs plain {without} looks wrong"
        );
    }

    #[test]
    fn in_order_networks_force_the_in_order_library() {
        // On the 2D mesh the `inorder_library` flag is irrelevant: both
        // cells must agree exactly (same library, same NIC).
        let kind = NetworkKind::Mesh2D;
        let a = run_cell(kind, &NicChoice::Plain, false, true, Scale::Smoke, 3);
        let b = run_cell(kind, &NicChoice::Plain, true, true, Scale::Smoke, 3);
        assert_eq!(a, b);
    }
}
