//! Figures 7 and 8: EM3D cycles per iteration across networks, for the four
//! interface configurations. `nifdy-` is NIFDY's flow control only (the
//! library still reorders in software); `nifdy` additionally exploits
//! in-order delivery. "For networks that deliver packets in order (the 2D
//! mesh and the butterfly), the library intended for in-order delivery was
//! used for all runs."

use nifdy_traffic::{Em3dParams, NetworkKind, NicChoice, SoftwareModel};

use crate::exec::{self, Jobs};
use crate::report::Table;
use crate::scale::Scale;

/// One EM3D measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Em3dPoint {
    /// Network label.
    pub network: &'static str,
    /// Interface configuration label.
    pub config: &'static str,
    /// Average cycles per EM3D iteration.
    pub cycles_per_iter: f64,
}

/// Runs one EM3D cell.
pub fn run_cell(
    kind: NetworkKind,
    choice: &NicChoice,
    inorder_library: bool,
    less_comm: bool,
    scale: Scale,
    seed: u64,
) -> f64 {
    // In-order networks always get the in-order library.
    let inorder = inorder_library || !kind.reorders();
    let sw = SoftwareModel::cm5_library(!inorder);
    let mut params = if less_comm {
        Em3dParams::less_communication(seed)
    } else {
        Em3dParams::more_communication(seed)
    };
    // Scale the graph volume with the run scale: communication traffic is
    // linear in n_nodes, so shapes are preserved.
    match scale {
        Scale::Full => params.iters = 3,
        Scale::Quick => {
            params.iters = 2;
            params.n_nodes /= 4;
        }
        Scale::Smoke => {
            params.iters = 1;
            params.n_nodes /= 10;
        }
    }
    let iters = params.iters;
    let mut driver = crate::scenario(kind)
        .seed(seed)
        .nic(choice.clone())
        .software(sw)
        .build_with(|sc| params.build(sc.nodes(), sc.sw()))
        .expect("figure cell builds");
    let finished = driver.run_until_quiet(scale.cycles(400_000_000));
    debug_assert!(finished, "EM3D did not drain");
    driver.fabric().now().as_u64() as f64 / f64::from(iters)
}

/// Runs a full EM3D figure (7 when `less_comm`, 8 otherwise), fanned
/// across `jobs` workers. The four cells of one network row share a derived
/// seed.
pub fn run(less_comm: bool, scale: Scale, seed: u64, jobs: Jobs) -> (Table, Vec<Em3dPoint>) {
    let figure = if less_comm { 7 } else { 8 };
    let experiment = if less_comm { "fig7" } else { "fig8" };
    let mut table = Table::new(
        format!(
            "Figure {figure}: EM3D cycles per iteration ({} communication)",
            if less_comm { "less" } else { "more" }
        ),
        vec![
            "network".into(),
            "none".into(),
            "buffers".into(),
            "nifdy-".into(),
            "nifdy".into(),
        ],
    );
    let mut cells = Vec::new();
    for (row, kind) in NetworkKind::ALL.into_iter().enumerate() {
        let preset = kind.nifdy_preset();
        let row_seed = exec::cell_seed(experiment, row as u64, seed);
        let cases: [(&'static str, NicChoice, bool); 4] = [
            ("none", NicChoice::Plain, false),
            ("buffers", NicChoice::BuffersOnly(preset.clone()), false),
            ("nifdy-", NicChoice::Nifdy(preset.clone()), false),
            ("nifdy", NicChoice::Nifdy(preset), true),
        ];
        for (label, choice, inorder) in cases {
            cells.push((kind, label, choice, inorder, row_seed));
        }
    }
    let points = exec::map(jobs, cells, |(kind, label, choice, inorder, s), _| {
        let cpi = run_cell(kind, &choice, inorder, less_comm, scale, s);
        Em3dPoint {
            network: kind.label(),
            config: label,
            cycles_per_iter: cpi,
        }
    });
    for (row, kind) in NetworkKind::ALL.into_iter().enumerate() {
        let mut cells = vec![kind.label().to_string()];
        for p in &points[row * 4..row * 4 + 4] {
            cells.push(format!("{:.0}", p.cycles_per_iter));
        }
        table.row(cells);
    }
    (table, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn em3d_runs_on_a_reordering_network() {
        let kind = NetworkKind::FatTree;
        let preset = kind.nifdy_preset();
        let without = run_cell(kind, &NicChoice::Plain, false, false, Scale::Smoke, 2);
        let with = run_cell(
            kind,
            &NicChoice::Nifdy(preset),
            true,
            false,
            Scale::Smoke,
            2,
        );
        assert!(without > 0.0 && with > 0.0);
        // In-order payload gain: NIFDY sends fewer packets, so it should not
        // be dramatically slower.
        assert!(
            with <= 1.5 * without,
            "nifdy {with} vs plain {without} looks wrong"
        );
    }

    #[test]
    fn in_order_networks_force_the_in_order_library() {
        // On the 2D mesh the `inorder_library` flag is irrelevant: both
        // cells must agree exactly (same library, same NIC).
        let kind = NetworkKind::Mesh2D;
        let a = run_cell(kind, &NicChoice::Plain, false, true, Scale::Smoke, 3);
        let b = run_cell(kind, &NicChoice::Plain, true, true, Scale::Smoke, 3);
        assert_eq!(a, b);
    }
}
