//! Figure 4: scalability of the NIFDY parameters. Throughput on full fat
//! trees of growing size, normalized to the same network without NIFDY,
//! while sweeping the buffer pool size `B` (left panel) and the OPT size
//! `O` (right panel). "Using only short messages and no bulk dialogs in
//! order to concentrate on the effects of O and B."

use nifdy::NifdyConfig;
use nifdy_net::Fabric;
use nifdy_traffic::{Driver, NicChoice, SoftwareModel, SyntheticConfig};

use crate::networks::NetworkKind;
use crate::report::Table;
use crate::scale::Scale;

/// Machine sizes swept (the paper goes to 256 nodes).
pub const SIZES: [usize; 3] = [16, 64, 256];
/// Parameter values swept for both `B` and `O`.
pub const SWEEP: [u8; 4] = [2, 4, 8, 16];

/// One measured point of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Machine size in nodes.
    pub nodes: usize,
    /// Swept parameter name (`"B"` or `"O"`).
    pub param: &'static str,
    /// Swept parameter value.
    pub value: u8,
    /// Throughput relative to the plain interface on the same network.
    pub normalized: f64,
}

fn throughput(nodes: usize, choice: &NicChoice, scale: Scale, seed: u64) -> u64 {
    let kind = NetworkKind::FatTree;
    let fab = Fabric::new(kind.topology(nodes, seed), kind.fabric_config(seed));
    let cfg = SyntheticConfig::short_messages(seed);
    let mut driver = Driver::new(fab, choice, SoftwareModel::synthetic(), cfg.build(nodes));
    driver.run_cycles(scale.cycles(400_000));
    driver.packets_received()
}

/// Runs both panels of Figure 4.
pub fn run(scale: Scale, seed: u64) -> (Table, Table, Vec<ScalePoint>) {
    let mut points = Vec::new();
    let mut panel = |param: &'static str| -> Table {
        let mut t = Table::new(
            format!("Figure 4 ({param} sweep): fat-tree throughput normalized to no-NIFDY"),
            std::iter::once("nodes".to_string())
                .chain(SWEEP.iter().map(|v| format!("{param}={v}")))
                .collect(),
        );
        for &nodes in &SIZES {
            let base = throughput(nodes, &NicChoice::Plain, scale, seed).max(1);
            let mut row = vec![nodes.to_string()];
            for &v in &SWEEP {
                let cfg = if param == "B" {
                    NifdyConfig::new(8, v, 0, 2)
                } else {
                    NifdyConfig::new(v, 8, 0, 2)
                };
                let t = throughput(nodes, &NicChoice::Nifdy(cfg), scale, seed);
                let norm = t as f64 / base as f64;
                points.push(ScalePoint {
                    nodes,
                    param,
                    value: v,
                    normalized: norm,
                });
                row.push(format!("{norm:.2}"));
            }
            t.row(row);
        }
        t
    };
    let b_panel = panel("B");
    let o_panel = panel("O");
    (b_panel, o_panel, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_throughput_is_sane_at_16_nodes() {
        let base = throughput(16, &NicChoice::Plain, Scale::Smoke, 3).max(1);
        let nifdy = throughput(
            16,
            &NicChoice::Nifdy(NifdyConfig::new(8, 8, 0, 2)),
            Scale::Smoke,
            3,
        );
        let norm = nifdy as f64 / base as f64;
        assert!(norm > 0.5 && norm < 4.0, "normalized throughput {norm}");
    }

    #[test]
    fn bigger_pools_do_not_hurt() {
        let small = throughput(
            16,
            &NicChoice::Nifdy(NifdyConfig::new(8, 2, 0, 2)),
            Scale::Smoke,
            4,
        );
        let large = throughput(
            16,
            &NicChoice::Nifdy(NifdyConfig::new(8, 16, 0, 2)),
            Scale::Smoke,
            4,
        );
        assert!(
            large as f64 >= 0.8 * small as f64,
            "B=16 ({large}) collapsed vs B=2 ({small})"
        );
    }
}
