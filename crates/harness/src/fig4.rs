//! Figure 4: scalability of the NIFDY parameters. Throughput on full fat
//! trees of growing size, normalized to the same network without NIFDY,
//! while sweeping the buffer pool size `B` (left panel) and the OPT size
//! `O` (right panel). "Using only short messages and no bulk dialogs in
//! order to concentrate on the effects of O and B."

use nifdy::NifdyConfig;
use nifdy_traffic::{NetworkKind, NicChoice, SyntheticConfig};

use crate::exec::{self, Jobs};
use crate::report::Table;
use crate::scale::Scale;

/// Machine sizes swept (the paper goes to 256 nodes).
pub const SIZES: [usize; 3] = [16, 64, 256];
/// Parameter values swept for both `B` and `O`.
pub const SWEEP: [u8; 4] = [2, 4, 8, 16];

/// One measured point of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Machine size in nodes.
    pub nodes: usize,
    /// Swept parameter name (`"B"` or `"O"`).
    pub param: &'static str,
    /// Swept parameter value.
    pub value: u8,
    /// Throughput relative to the plain interface on the same network.
    pub normalized: f64,
}

fn throughput(nodes: usize, choice: &NicChoice, scale: Scale, seed: u64) -> u64 {
    let mut driver = crate::scenario(NetworkKind::FatTree)
        .nodes(nodes)
        .seed(seed)
        .nic(choice.clone())
        .build_with(|sc| SyntheticConfig::short_messages(sc.seed()).build(sc.nodes()))
        .expect("figure cell builds");
    driver.run_cycles(scale.cycles(400_000));
    driver.packets_received()
}

/// The no-dialog configuration under sweep: `B` or `O` varies, the other
/// headline parameter is pinned at 8.
fn sweep_config(param: &'static str, value: u8) -> NifdyConfig {
    let (o, b) = if param == "B" { (8, value) } else { (value, 8) };
    NifdyConfig::builder()
        .opt_entries(o)
        .pool_entries(b)
        .max_dialogs(0)
        .window(2)
        .build()
        .expect("swept parameters are valid")
}

/// Runs both panels of Figure 4, fanned across `jobs` workers. All cells at
/// one machine size share a derived seed (including the plain-interface
/// baseline they are normalized to).
pub fn run(scale: Scale, seed: u64, jobs: Jobs) -> (Table, Table, Vec<ScalePoint>) {
    let row_seed = |ni: usize| exec::cell_seed("fig4", ni as u64, seed);
    // Cell list: one plain baseline per machine size, then every
    // (panel, size, value) combination.
    enum Cell {
        Base {
            ni: usize,
        },
        Param {
            param: &'static str,
            ni: usize,
            value: u8,
        },
    }
    let mut cells = Vec::new();
    for ni in 0..SIZES.len() {
        cells.push(Cell::Base { ni });
    }
    for param in ["B", "O"] {
        for ni in 0..SIZES.len() {
            for &value in &SWEEP {
                cells.push(Cell::Param { param, ni, value });
            }
        }
    }
    let results = exec::map(jobs, cells, |cell, _| match cell {
        Cell::Base { ni } => throughput(SIZES[ni], &NicChoice::Plain, scale, row_seed(ni)),
        Cell::Param { param, ni, value } => throughput(
            SIZES[ni],
            &NicChoice::Nifdy(sweep_config(param, value)),
            scale,
            row_seed(ni),
        ),
    });
    let (bases, swept) = results.split_at(SIZES.len());

    let mut points = Vec::new();
    let mut tables = Vec::new();
    for (pi, param) in ["B", "O"].into_iter().enumerate() {
        let mut t = Table::new(
            format!("Figure 4 ({param} sweep): fat-tree throughput normalized to no-NIFDY"),
            std::iter::once("nodes".to_string())
                .chain(SWEEP.iter().map(|v| format!("{param}={v}")))
                .collect(),
        );
        for (ni, &nodes) in SIZES.iter().enumerate() {
            let base = bases[ni].max(1);
            let mut row = vec![nodes.to_string()];
            for (vi, &value) in SWEEP.iter().enumerate() {
                let cell = swept[(pi * SIZES.len() + ni) * SWEEP.len() + vi];
                let norm = cell as f64 / base as f64;
                points.push(ScalePoint {
                    nodes,
                    param,
                    value,
                    normalized: norm,
                });
                row.push(format!("{norm:.2}"));
            }
            t.row(row);
        }
        tables.push(t);
    }
    let o_panel = tables.pop().expect("two panels");
    let b_panel = tables.pop().expect("two panels");
    (b_panel, o_panel, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_throughput_is_sane_at_16_nodes() {
        let base = throughput(16, &NicChoice::Plain, Scale::Smoke, 3).max(1);
        let nifdy = throughput(16, &NicChoice::Nifdy(sweep_config("B", 8)), Scale::Smoke, 3);
        let norm = nifdy as f64 / base as f64;
        assert!(norm > 0.5 && norm < 4.0, "normalized throughput {norm}");
    }

    #[test]
    fn bigger_pools_do_not_hurt() {
        let small = throughput(16, &NicChoice::Nifdy(sweep_config("B", 2)), Scale::Smoke, 4);
        let large = throughput(
            16,
            &NicChoice::Nifdy(sweep_config("B", 16)),
            Scale::Smoke,
            4,
        );
        assert!(
            large as f64 >= 0.8 * small as f64,
            "B=16 ({large}) collapsed vs B=2 ({small})"
        );
    }

    #[test]
    fn panels_line_up_with_points() {
        let (b, o, points) = run(Scale::Smoke, 1, Jobs::new(4));
        assert_eq!(points.len(), 2 * SIZES.len() * SWEEP.len());
        // Row counts match the swept sizes.
        assert!(b.to_string().contains("16"));
        assert!(o.to_string().contains("256"));
    }
}
