//! Figure 5: network congestion under C-shift — pending packets per
//! receiver over time, without and with NIFDY (no barriers in either case).
//!
//! The paper's observation: "some nodes may finish the current phase early
//! and move to the next phase, resulting in one node receiving from two
//! senders. This slows the progress of both senders, allowing other senders
//! to catch up and aggravating the condition" — visible as dark streaks that
//! persist without NIFDY and dissipate with it.

use nifdy_sim::NodeId;
use nifdy_traffic::{CShiftConfig, NetworkKind, NicChoice, SoftwareModel};

use crate::exec::{self, Jobs};
use crate::report::heat_map;
use crate::scale::Scale;

/// Result of one Figure 5 run.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionTrace {
    /// Interface configuration label.
    pub config: &'static str,
    /// `series[receiver][sample]` = packets pending for that receiver.
    pub series: Vec<Vec<f64>>,
    /// Cycle at which the whole pattern finished (or the cap).
    pub finish: u64,
    /// Peak pending packets seen at any single receiver.
    pub peak: f64,
}

/// Block size per partner at each scale: large enough that multi-packet
/// transfers (and hence bulk dialogs and the in-order payload gain) remain
/// meaningful even in smoke runs.
pub fn words_for(scale: Scale) -> u32 {
    match scale {
        Scale::Full => 90,
        Scale::Quick => 45,
        Scale::Smoke => 24,
    }
}

/// Runs C-shift on the 32-node CM-5 network and samples per-receiver
/// congestion.
pub fn run_one(choice: &NicChoice, scale: Scale, seed: u64) -> CongestionTrace {
    let nodes = 32;
    let sw = SoftwareModel::cm5_library(false);
    let words = words_for(scale);
    let mut driver = crate::scenario(NetworkKind::Cm5)
        .nodes(nodes)
        .seed(seed)
        .nic(choice.clone())
        .software(sw)
        .build_with(|sc| CShiftConfig::new(words, sc.sw()).build(sc.nodes()))
        .expect("figure cell builds");

    let cap = scale.cycles(4_000_000);
    let samples = 64;
    let period = (cap / samples).max(1);
    let mut series = vec![Vec::new(); nodes];
    let mut finish = cap;
    for c in 0..cap {
        if c % period == 0 {
            for (r, s) in series.iter_mut().enumerate() {
                s.push(f64::from(driver.fabric().pending_for(NodeId::new(r))));
            }
        }
        driver.step();
        if driver.processors().iter().all(|p| p.is_done()) && driver.fabric().in_network() == 0 {
            finish = c;
            break;
        }
    }
    let peak = series
        .iter()
        .flat_map(|s| s.iter().copied())
        .fold(0.0f64, f64::max);
    CongestionTrace {
        config: choice.label(),
        series,
        finish,
        peak,
    }
}

/// Runs both halves of Figure 5 (in parallel when `jobs` allows) and
/// renders the heat maps. Both halves share one derived seed so they watch
/// the same traffic.
pub fn run(scale: Scale, seed: u64, jobs: Jobs) -> (String, CongestionTrace, CongestionTrace) {
    let cell = exec::cell_seed("fig5", 0, seed);
    let choices = vec![
        NicChoice::Plain,
        NicChoice::Nifdy(NetworkKind::Cm5.nifdy_preset()),
    ];
    let mut traces = exec::map(jobs, choices, |choice, _| run_one(&choice, scale, cell));
    let with = traces.pop().expect("two cells");
    let without = traces.pop().expect("two cells");
    let mut out = String::new();
    out.push_str(&heat_map(
        &format!(
            "Figure 5a: C-shift pending packets per receiver, WITHOUT NIFDY \
             (finished at cycle {}, peak {})",
            without.finish, without.peak
        ),
        &without.series,
    ));
    out.push('\n');
    out.push_str(&heat_map(
        &format!(
            "Figure 5b: C-shift pending packets per receiver, WITH NIFDY \
             (finished at cycle {}, peak {})",
            with.finish, with.peak
        ),
        &with.series,
    ));
    (out, without, with)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_traces_complete_and_nifdy_bounds_congestion() {
        let (_, without, with) = run(Scale::Smoke, 5, Jobs::new(2));
        assert!(without.peak >= 1.0, "no congestion observed at all");
        assert!(
            with.peak <= without.peak,
            "NIFDY peak {} exceeds plain peak {}",
            with.peak,
            without.peak
        );
    }
}
