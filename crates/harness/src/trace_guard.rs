//! Tracing-overhead guard: proves the flight recorder is cheap enough to
//! leave compiled in.
//!
//! [`run`] times the same lossy-sweep cell twice — once with tracing
//! disconnected ([`TraceHandle::off`]) and once with a recorder attached
//! but sampled down to almost nothing (`sample_every = u64::MAX`, the
//! "enabled but unsampled" configuration) — and reports the relative
//! overhead. CI fails the build when the overhead exceeds its budget,
//! so instrumentation creep in the protocol hot paths gets caught at the
//! pull request that introduces it.
//!
//! Methodology: the two variants run interleaved (disabled, traced,
//! disabled, traced, …) so frequency scaling and cache warmth bias both
//! sides equally, and each side scores its *minimum* wall-clock time
//! across repetitions — the standard low-noise estimator for "how fast
//! can this code go".

use std::time::Instant;

use nifdy_trace::{TraceConfig, TraceHandle};

use crate::ext_lossy;
use crate::report::Table;
use crate::scale::Scale;

/// Outcome of one guard run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardReport {
    /// Best wall-clock time with tracing disconnected, seconds.
    pub baseline_s: f64,
    /// Best wall-clock time with a recorder attached but unsampled, seconds.
    pub traced_s: f64,
    /// `(traced - baseline) / baseline`, in percent (negative when the
    /// traced runs happened to be faster — measurement noise).
    pub overhead_pct: f64,
    /// The failure threshold the run was judged against, in percent.
    pub budget_pct: f64,
}

impl GuardReport {
    /// True when the measured overhead is within budget.
    pub fn passed(&self) -> bool {
        self.overhead_pct <= self.budget_pct
    }

    /// Renders the report as a one-row table for CI logs.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "trace-guard: recorder overhead, enabled-but-unsampled vs disabled",
            vec![
                "baseline s".into(),
                "traced s".into(),
                "overhead %".into(),
                "budget %".into(),
                "verdict".into(),
            ],
        );
        t.row(vec![
            format!("{:.4}", self.baseline_s),
            format!("{:.4}", self.traced_s),
            format!("{:+.2}", self.overhead_pct),
            format!("{:.2}", self.budget_pct),
            if self.passed() { "pass" } else { "FAIL" }.into(),
        ]);
        t
    }
}

/// Times the guard workload `reps` times per variant (interleaved) and
/// judges the overhead against `budget_pct`.
///
/// # Panics
///
/// Panics if `reps` is zero.
pub fn run(scale: Scale, seed: u64, reps: u32, budget_pct: f64) -> GuardReport {
    assert!(reps > 0, "need at least one repetition");
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    // Warm-up pass (untimed): fault tables, allocator state, branch
    // predictors — everything that would otherwise bias the first rep.
    ext_lossy::run_guard_workload(scale, seed, TraceHandle::off());
    for _ in 0..reps {
        // Every rep runs the *same* seed so both variants simulate the
        // identical packet history; min-of-N then measures code cost, not
        // workload variation.
        let t0 = Instant::now();
        ext_lossy::run_guard_workload(scale, seed, TraceHandle::off());
        best_off = best_off.min(t0.elapsed().as_secs_f64());

        let unsampled = TraceConfig::default().with_sample_every(u64::MAX);
        let t1 = Instant::now();
        ext_lossy::run_guard_workload(scale, seed, TraceHandle::recording(unsampled));
        best_on = best_on.min(t1.elapsed().as_secs_f64());
    }
    GuardReport {
        baseline_s: best_off,
        traced_s: best_on,
        overhead_pct: (best_on - best_off) / best_off * 100.0,
        budget_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_runs_and_reports() {
        // One smoke-scale repetition with an uncrossable budget: checks the
        // plumbing (both variants run, the report renders) without making a
        // timing assertion that could flake on a loaded CI machine. The
        // real 2% budget is enforced by the dedicated CI job.
        let report = run(Scale::Smoke, 11, 1, 1e9);
        assert!(report.passed());
        assert!(report.baseline_s > 0.0 && report.traced_s > 0.0);
        let rendered = report.table().to_string();
        assert!(rendered.contains("overhead"), "{rendered}");
    }
}
