//! Figure 6: C-shift throughput on the 32-node CM-5 network, comparing the
//! Strata-style optimized barriers against NIFDY's admission control, with
//! and without exploiting in-order delivery.
//!
//! "Using NIFDY's congestion control alone results in better performance
//! than optimized barriers. When NIFDY's in-order delivery is exploited,
//! the benefit is even greater."

use nifdy_traffic::{CShiftConfig, NetworkKind, NicChoice, SoftwareModel};

use crate::exec::{self, Jobs};
use crate::report::Table;
use crate::scale::Scale;

/// One Figure 6 configuration's result.
#[derive(Debug, Clone, PartialEq)]
pub struct CShiftResult {
    /// Configuration label.
    pub config: &'static str,
    /// Cycles to complete all `P − 1` phases.
    pub cycles: u64,
    /// Useful payload words delivered per 1000 cycles.
    pub words_per_kcycle: f64,
}

fn run_one(
    choice: &NicChoice,
    barriers: bool,
    inorder_library: bool,
    scale: Scale,
    seed: u64,
) -> CShiftResult {
    // The CM-5 fat tree reorders packets, so without NIFDY the library must
    // reorder in software.
    let sw = SoftwareModel::cm5_library(!inorder_library);
    let words = crate::fig5::words_for(scale);
    let mut driver = crate::scenario(NetworkKind::Cm5)
        .nodes(32)
        .seed(seed)
        .nic(choice.clone())
        .software(sw)
        .build_with(|sc| {
            CShiftConfig::new(words, sc.sw())
                .with_barriers(barriers)
                .build(sc.nodes())
        })
        .expect("figure cell builds");
    let cap = scale.cycles(40_000_000);
    let finished = driver.run_until_quiet(cap);
    let cycles = driver.fabric().now().as_u64();
    let words_delivered = driver.user_words_received();
    CShiftResult {
        config: "",
        cycles: if finished { cycles } else { cap },
        words_per_kcycle: words_delivered as f64 / (cycles.max(1) as f64 / 1000.0),
    }
}

/// Runs all Figure 6 configurations, fanned across `jobs` workers. Every
/// configuration shares one derived seed: they are columns of one
/// comparison.
pub fn run(scale: Scale, seed: u64, jobs: Jobs) -> (Table, Vec<CShiftResult>) {
    let cell = exec::cell_seed("fig6", 0, seed);
    let preset = NetworkKind::Cm5.nifdy_preset();
    let cases: [(&'static str, NicChoice, bool, bool); 5] = [
        ("none", NicChoice::Plain, false, false),
        ("none+barriers", NicChoice::Plain, true, false),
        (
            "buffers",
            NicChoice::BuffersOnly(preset.clone()),
            false,
            false,
        ),
        (
            "nifdy (flow ctl only)",
            NicChoice::Nifdy(preset.clone()),
            false,
            false,
        ),
        ("nifdy + in-order", NicChoice::Nifdy(preset), false, true),
    ];
    let mut table = Table::new(
        "Figure 6: C-shift on the 32-node CM-5 network",
        vec![
            "config".into(),
            "completion cycles".into(),
            "words/kcycle".into(),
        ],
    );
    let results = exec::map(
        jobs,
        cases.to_vec(),
        |(label, choice, barriers, inorder), _| {
            let mut r = run_one(&choice, barriers, inorder, scale, cell);
            r.config = label;
            r
        },
    );
    for r in &results {
        table.row(vec![
            r.config.into(),
            r.cycles.to_string(),
            format!("{:.1}", r.words_per_kcycle),
        ]);
    }
    (table, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configurations_complete_and_nifdy_inorder_wins() {
        let (_, results) = run(Scale::Smoke, 7, Jobs::new(4));
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(r.cycles > 0 && r.words_per_kcycle > 0.0, "{:?}", r);
        }
        let flow_only = &results[3];
        let inorder = &results[4];
        // The in-order library sends fewer, denser packets over the same
        // protocol: it must deliver at least as many words per cycle.
        assert!(
            inorder.words_per_kcycle >= flow_only.words_per_kcycle * 0.95,
            "nifdy+in-order ({:.1}) should beat nifdy- ({:.1})",
            inorder.words_per_kcycle,
            flow_only.words_per_kcycle
        );
    }
}
