//! Figures 2 and 3: packets delivered in 1,000,000 cycles, per network,
//! for {no NIFDY, buffering only, NIFDY} under the heavy and light synthetic
//! patterns of §4.1.

use nifdy_traffic::{NetworkKind, NicChoice, SyntheticConfig};

use crate::exec::{self, Jobs};
use crate::report::Table;
use crate::scale::Scale;

/// One bar of Figure 2/3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThroughputPoint {
    /// Network label.
    pub network: &'static str,
    /// Interface configuration label (`none` / `buffers` / `nifdy`).
    pub config: &'static str,
    /// Packets delivered to processors within the measurement window.
    pub packets: u64,
}

/// Runs one synthetic-traffic cell.
pub fn run_cell(
    kind: NetworkKind,
    choice: &NicChoice,
    heavy: bool,
    scale: Scale,
    seed: u64,
) -> u64 {
    let mut driver = crate::scenario(kind)
        .seed(seed)
        .nic(choice.clone())
        .build_with(|sc| {
            let cfg = if heavy {
                SyntheticConfig::heavy(sc.seed())
            } else {
                SyntheticConfig::light(sc.seed())
            };
            cfg.build(sc.nodes())
        })
        .expect("figure cell builds");
    driver.run_cycles(scale.cycles(1_000_000));
    driver.packets_received()
}

/// Runs the full figure: every network × the three interface models, fanned
/// across `jobs` workers. The three cells of one row share a derived seed so
/// the interface comparison stays paper-fair.
pub fn run(heavy: bool, scale: Scale, seed: u64, jobs: Jobs) -> (Table, Vec<ThroughputPoint>) {
    let experiment = if heavy { "fig2" } else { "fig3" };
    let title = if heavy {
        format!(
            "Figure 2: packets delivered in {} cycles, HEAVY synthetic traffic",
            scale.cycles(1_000_000)
        )
    } else {
        format!(
            "Figure 3: packets delivered in {} cycles, LIGHT synthetic traffic",
            scale.cycles(1_000_000)
        )
    };
    let mut table = Table::new(
        title,
        vec![
            "network".into(),
            "none".into(),
            "buffers".into(),
            "nifdy".into(),
            "nifdy/none".into(),
        ],
    );
    let mut cells = Vec::new();
    for (row, kind) in NetworkKind::ALL.into_iter().enumerate() {
        let preset = kind.nifdy_preset();
        let row_seed = exec::cell_seed(experiment, row as u64, seed);
        for choice in [
            NicChoice::Plain,
            NicChoice::BuffersOnly(preset.clone()),
            NicChoice::Nifdy(preset.clone()),
        ] {
            cells.push((kind, choice, row_seed));
        }
    }
    let results = exec::map(jobs, cells, |(kind, choice, s), _| {
        let pkts = run_cell(kind, &choice, heavy, scale, s);
        ThroughputPoint {
            network: kind.label(),
            config: choice.label(),
            packets: pkts,
        }
    });
    let mut points = Vec::new();
    for (row, kind) in NetworkKind::ALL.into_iter().enumerate() {
        let cells = &results[row * 3..row * 3 + 3];
        table.row(vec![
            kind.label().into(),
            cells[0].packets.to_string(),
            cells[1].packets.to_string(),
            cells[2].packets.to_string(),
            format!(
                "{:.2}",
                cells[2].packets as f64 / cells[0].packets.max(1) as f64
            ),
        ]);
        points.extend(cells.iter().cloned());
    }
    (table, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_mesh_nifdy_beats_plain() {
        let preset = NetworkKind::Mesh2D.nifdy_preset();
        let plain = run_cell(
            NetworkKind::Mesh2D,
            &NicChoice::Plain,
            true,
            Scale::Smoke,
            1,
        );
        let nifdy = run_cell(
            NetworkKind::Mesh2D,
            &NicChoice::Nifdy(preset),
            true,
            Scale::Smoke,
            1,
        );
        assert!(plain > 0 && nifdy > 0);
        assert!(
            nifdy as f64 >= 0.9 * plain as f64,
            "NIFDY must not collapse under heavy mesh traffic: {nifdy} vs {plain}"
        );
    }

    #[test]
    fn light_fat_tree_all_configs_deliver() {
        for choice in [
            NicChoice::Plain,
            NicChoice::Nifdy(NetworkKind::FatTree.nifdy_preset()),
        ] {
            let pkts = run_cell(NetworkKind::FatTree, &choice, false, Scale::Smoke, 2);
            assert!(pkts > 0, "{:?} delivered nothing", choice.label());
        }
    }
}
