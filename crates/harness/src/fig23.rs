//! Figures 2 and 3: packets delivered in 1,000,000 cycles, per network,
//! for {no NIFDY, buffering only, NIFDY} under the heavy and light synthetic
//! patterns of §4.1.

use nifdy_net::Fabric;
use nifdy_traffic::{Driver, NicChoice, SoftwareModel, SyntheticConfig};

use crate::networks::NetworkKind;
use crate::report::Table;
use crate::scale::Scale;

/// One bar of Figure 2/3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThroughputPoint {
    /// Network label.
    pub network: &'static str,
    /// Interface configuration label (`none` / `buffers` / `nifdy`).
    pub config: &'static str,
    /// Packets delivered to processors within the measurement window.
    pub packets: u64,
}

/// Runs one synthetic-traffic cell.
pub fn run_cell(
    kind: NetworkKind,
    choice: &NicChoice,
    heavy: bool,
    scale: Scale,
    seed: u64,
) -> u64 {
    let fab = Fabric::new(kind.topology(64, seed), kind.fabric_config(seed));
    let cfg = if heavy {
        SyntheticConfig::heavy(seed)
    } else {
        SyntheticConfig::light(seed)
    };
    let mut driver = Driver::new(fab, choice, SoftwareModel::synthetic(), cfg.build(64));
    driver.run_cycles(scale.cycles(1_000_000));
    driver.packets_received()
}

/// Runs the full figure: every network × the three interface models.
pub fn run(heavy: bool, scale: Scale, seed: u64) -> (Table, Vec<ThroughputPoint>) {
    let title = if heavy {
        format!(
            "Figure 2: packets delivered in {} cycles, HEAVY synthetic traffic",
            scale.cycles(1_000_000)
        )
    } else {
        format!(
            "Figure 3: packets delivered in {} cycles, LIGHT synthetic traffic",
            scale.cycles(1_000_000)
        )
    };
    let mut table = Table::new(
        title,
        vec![
            "network".into(),
            "none".into(),
            "buffers".into(),
            "nifdy".into(),
            "nifdy/none".into(),
        ],
    );
    let mut points = Vec::new();
    for kind in NetworkKind::ALL {
        let preset = kind.nifdy_preset();
        let choices = [
            NicChoice::Plain,
            NicChoice::BuffersOnly(preset.clone()),
            NicChoice::Nifdy(preset),
        ];
        let mut cells = Vec::new();
        for choice in &choices {
            let pkts = run_cell(kind, choice, heavy, scale, seed);
            points.push(ThroughputPoint {
                network: kind.label(),
                config: choice.label(),
                packets: pkts,
            });
            cells.push(pkts);
        }
        table.row(vec![
            kind.label().into(),
            cells[0].to_string(),
            cells[1].to_string(),
            cells[2].to_string(),
            format!("{:.2}", cells[2] as f64 / cells[0].max(1) as f64),
        ]);
    }
    (table, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_mesh_nifdy_beats_plain() {
        let preset = NetworkKind::Mesh2D.nifdy_preset();
        let plain = run_cell(
            NetworkKind::Mesh2D,
            &NicChoice::Plain,
            true,
            Scale::Smoke,
            1,
        );
        let nifdy = run_cell(
            NetworkKind::Mesh2D,
            &NicChoice::Nifdy(preset),
            true,
            Scale::Smoke,
            1,
        );
        assert!(plain > 0 && nifdy > 0);
        assert!(
            nifdy as f64 >= 0.9 * plain as f64,
            "NIFDY must not collapse under heavy mesh traffic: {nifdy} vs {plain}"
        );
    }

    #[test]
    fn light_fat_tree_all_configs_deliver() {
        for choice in [
            NicChoice::Plain,
            NicChoice::Nifdy(NetworkKind::FatTree.nifdy_preset()),
        ] {
            let pkts = run_cell(NetworkKind::FatTree, &choice, false, Scale::Smoke, 2);
            assert!(pkts > 0, "{:?} delivered nothing", choice.label());
        }
    }
}
