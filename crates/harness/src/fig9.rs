//! Figure 9: cycles for one scan phase of radix sort on the three fat-tree
//! variants, with and without inter-send delays, with and without NIFDY —
//! plus the §4.5 coalesce-phase observation ("results were virtually
//! identical with and without NIFDY").

use nifdy_traffic::{CoalesceConfig, NetworkKind, NicChoice, ScanConfig, SoftwareModel};

use crate::exec::{self, Jobs};
use crate::report::Table;
use crate::scale::Scale;

/// The three networks of Figure 9.
pub const FIG9_NETWORKS: [NetworkKind; 3] = [
    NetworkKind::FatTree,
    NetworkKind::Cm5,
    NetworkKind::SfFatTree,
];

/// One scan-phase measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPoint {
    /// Network label.
    pub network: &'static str,
    /// Whether artificial inter-send delays were inserted.
    pub with_delay: bool,
    /// Interface configuration label.
    pub config: &'static str,
    /// Cycles for the whole scan phase.
    pub cycles: u64,
}

/// Runs one scan-phase cell on 64 processors with an 8-bit radix.
pub fn run_scan(kind: NetworkKind, choice: &NicChoice, delay: u64, scale: Scale, seed: u64) -> u64 {
    let sw = SoftwareModel::cm5_library(!kind.reorders());
    let mut driver = crate::scenario(kind)
        .seed(seed)
        .nic(choice.clone())
        .software(sw)
        .build_with(|sc| {
            let mut cfg = ScanConfig::radix8(sc.sw()).with_delay(delay);
            cfg.buckets = scale.count(256) as u32;
            cfg.build(sc.nodes())
        })
        .expect("figure cell builds");
    let finished = driver.run_until_quiet(scale.cycles(1_000_000_000));
    debug_assert!(finished, "scan never finished");
    driver.fabric().now().as_u64()
}

/// Runs the coalesce phase (random single-packet key sends).
pub fn run_coalesce(kind: NetworkKind, choice: &NicChoice, scale: Scale, seed: u64) -> u64 {
    let sw = SoftwareModel::cm5_library(!kind.reorders());
    let mut driver = crate::scenario(kind)
        .seed(seed)
        .nic(choice.clone())
        .software(sw)
        .build_with(|sc| {
            CoalesceConfig {
                keys_per_node: scale.count(256) as u32,
                seed: sc.seed(),
                sw: sc.sw(),
            }
            .build(sc.nodes())
        })
        .expect("figure cell builds");
    let finished = driver.run_until_quiet(scale.cycles(1_000_000_000));
    debug_assert!(finished, "coalesce never finished");
    driver.fabric().now().as_u64()
}

/// Runs the full figure plus the coalesce side table, fanned across `jobs`
/// workers. The four scan cells of one network row share a derived seed, as
/// do the two coalesce cells.
pub fn run(scale: Scale, seed: u64, jobs: Jobs) -> (Table, Table, Vec<ScanPoint>) {
    let delay = 60;
    let mut scan_table = Table::new(
        "Figure 9: cycles for one radix-sort scan phase (8-bit radix, 64 procs)",
        vec![
            "network".into(),
            "no delay / none".into(),
            "no delay / nifdy".into(),
            "delay / none".into(),
            "delay / nifdy".into(),
        ],
    );
    enum Cell {
        Scan {
            kind: NetworkKind,
            label: &'static str,
            choice: NicChoice,
            delay: u64,
            seed: u64,
        },
        Coalesce {
            choice: NicChoice,
            seed: u64,
        },
    }
    let mut cells = Vec::new();
    for (row, kind) in FIG9_NETWORKS.into_iter().enumerate() {
        let preset = kind.nifdy_preset();
        let row_seed = exec::cell_seed("fig9", row as u64, seed);
        for &d in &[0u64, delay] {
            for (label, choice) in [
                ("none", NicChoice::Plain),
                ("nifdy", NicChoice::Nifdy(preset.clone())),
            ] {
                cells.push(Cell::Scan {
                    kind,
                    label,
                    choice,
                    delay: d,
                    seed: row_seed,
                });
            }
        }
    }
    let coalesce_kind = NetworkKind::FatTree;
    let coalesce_seed = exec::cell_seed("fig9.coalesce", 0, seed);
    for choice in [
        NicChoice::Plain,
        NicChoice::Nifdy(coalesce_kind.nifdy_preset()),
    ] {
        cells.push(Cell::Coalesce {
            choice,
            seed: coalesce_seed,
        });
    }
    let results = exec::map(jobs, cells, |cell, _| match cell {
        Cell::Scan {
            kind,
            label,
            choice,
            delay,
            seed,
        } => {
            let cycles = run_scan(kind, &choice, delay, scale, seed);
            ScanPoint {
                network: kind.label(),
                with_delay: delay > 0,
                config: label,
                cycles,
            }
        }
        Cell::Coalesce { choice, seed } => {
            let cycles = run_coalesce(coalesce_kind, &choice, scale, seed);
            ScanPoint {
                network: coalesce_kind.label(),
                with_delay: false,
                config: "coalesce",
                cycles,
            }
        }
    });
    let scan_count = FIG9_NETWORKS.len() * 4;
    let mut points = Vec::new();
    for (row, kind) in FIG9_NETWORKS.into_iter().enumerate() {
        let mut cells = vec![kind.label().to_string()];
        for p in &results[row * 4..row * 4 + 4] {
            cells.push(p.cycles.to_string());
            points.push(p.clone());
        }
        scan_table.row(cells);
    }

    let mut coalesce_table = Table::new(
        "§4.5 coalesce phase: cycles (NIFDY ≈ none expected)",
        vec!["network".into(), "none".into(), "nifdy".into()],
    );
    let coalesce: Vec<u64> = results[scan_count..].iter().map(|p| p.cycles).collect();
    coalesce_table.row(vec![
        coalesce_kind.label().into(),
        coalesce[0].to_string(),
        coalesce[1].to_string(),
    ]);
    (scan_table, coalesce_table, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_help_the_plain_interface() {
        let kind = NetworkKind::FatTree;
        let no_delay = run_scan(kind, &NicChoice::Plain, 0, Scale::Smoke, 11);
        let with_delay = run_scan(kind, &NicChoice::Plain, 60, Scale::Smoke, 11);
        assert!(no_delay > 0 && with_delay > 0);
        // The paper: "adding delays between successive sends helped in all
        // cases" — at minimum it must not be catastrophically worse.
        assert!(
            with_delay as f64 <= 1.6 * no_delay as f64,
            "delay {with_delay} vs none {no_delay}"
        );
    }

    #[test]
    fn coalesce_is_insensitive_to_nifdy() {
        let kind = NetworkKind::FatTree;
        let none = run_coalesce(kind, &NicChoice::Plain, Scale::Smoke, 12);
        let with = run_coalesce(
            kind,
            &NicChoice::Nifdy(kind.nifdy_preset()),
            Scale::Smoke,
            12,
        );
        let ratio = with as f64 / none as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "coalesce should be roughly unchanged: ratio {ratio}"
        );
    }
}
