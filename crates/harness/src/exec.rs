//! Parallel experiment execution: fan independent cells across worker
//! threads and reassemble results in canonical order.
//!
//! Every figure cell, sweep point, and loss-rate setting of the paper's
//! evaluation is an independent simulation, so the runners hand their cell
//! lists to [`map`] and the tables come out byte-identical at any job
//! count. Determinism rests on two rules:
//!
//! * cell seeds come from [`cell_seed`] — a pure hash of
//!   `(experiment, cell index, base seed)` — never from execution order;
//! * results land in a slot per cell, so assembly order is the input order
//!   regardless of which worker finishes first.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads an experiment run may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jobs(NonZeroUsize);

impl Jobs {
    /// Exactly one worker: fully sequential execution.
    pub fn serial() -> Self {
        Jobs(NonZeroUsize::MIN)
    }

    /// `n` workers; zero is clamped to one.
    pub fn new(n: usize) -> Self {
        Jobs(NonZeroUsize::new(n).unwrap_or(NonZeroUsize::MIN))
    }

    /// One worker per available core (the `--jobs` default), or one if the
    /// parallelism cannot be determined.
    pub fn available() -> Self {
        std::thread::available_parallelism()
            .map(Jobs)
            .unwrap_or_else(|_| Jobs::serial())
    }

    /// The worker count.
    pub fn get(&self) -> usize {
        self.0.get()
    }
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs::available()
    }
}

/// Derives the seed for one experiment cell from the experiment name, the
/// cell's index in the grid, and the run's base seed.
///
/// The derivation is a pure function (FNV-1a over the name, then
/// splitmix64-style finalization mixing in index and base), so a cell's
/// seed does not depend on which worker runs it or when. Cells that must
/// see identical randomness for a paper-fair comparison — the three NIC
/// choices of one figure row, say — share an index.
pub fn cell_seed(experiment: &str, index: u64, base: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for byte in experiment.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h = splitmix(h ^ splitmix(index.wrapping_add(0x9e37_79b9_7f4a_7c15)));
    splitmix(h ^ splitmix(base))
}

/// The splitmix64 finalizer: a bijective avalanche mix.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `f` over every item, on up to `jobs` scoped worker threads, and
/// returns the results in input order. `f` receives the item and its index.
///
/// With one job (or one item) this degenerates to a plain sequential loop
/// on the calling thread — no threads are spawned, so `--jobs 1` is the
/// exact legacy execution. A panic in any cell propagates to the caller
/// once all workers have stopped.
pub fn map<T, R, F>(jobs: Jobs, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T, usize) -> R + Sync,
{
    let workers = jobs.get().min(items.len());
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(item, i))
            .collect();
    }
    let n = items.len();
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each work slot is taken exactly once");
                let r = f(item, i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            }));
        }
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            if let Err(p) = h.join() {
                panic.get_or_insert(p);
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order_at_any_job_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|v| v * v).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = map(Jobs::new(jobs), items.clone(), |v, i| {
                assert_eq!(v, i as u64, "item/index pairing broken");
                v * v
            });
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn map_handles_empty_and_single_item_lists() {
        let empty: Vec<u8> = Vec::new();
        assert!(map(Jobs::new(4), empty, |v, _| v).is_empty());
        assert_eq!(map(Jobs::new(4), vec![9], |v, _| v + 1), vec![10]);
    }

    #[test]
    #[should_panic(expected = "cell 3 exploded")]
    fn map_propagates_worker_panics() {
        map(Jobs::new(4), (0..8).collect::<Vec<_>>(), |v, _| {
            if v == 3 {
                panic!("cell {v} exploded");
            }
            v
        });
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Jobs::new(0).get(), 1);
        assert_eq!(Jobs::serial().get(), 1);
        assert!(Jobs::available().get() >= 1);
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let a = cell_seed("fig2", 0, 1);
        assert_eq!(a, cell_seed("fig2", 0, 1), "must be a pure function");
        assert_ne!(a, cell_seed("fig3", 0, 1), "experiment must matter");
        assert_ne!(a, cell_seed("fig2", 1, 1), "index must matter");
        assert_ne!(a, cell_seed("fig2", 0, 2), "base seed must matter");
    }
}
