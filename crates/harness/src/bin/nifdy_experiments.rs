//! CLI entry point: regenerate any table or figure of the NIFDY paper.
//!
//! ```text
//! nifdy-experiments <fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|table3|all> [--full|--quick|--smoke] [--seed N]
//! ```

use std::process::ExitCode;

use nifdy_harness::{
    analyze_cmd, ext, ext_lossy, fig23, fig4, fig5, fig6, fig78, fig9, node_cmd, percentile_table,
    sweep, table3, trace_guard, wire_cmd, Engine, Jobs, Scale,
};
use nifdy_trace::export;

const USAGE: &str = "usage: nifdy-experiments \
    <fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|table3|all|sweep:<network>\
    |ext:adaptive|ext:loadsweep|ext:lossy|trace-guard|wire:loopback|wire:udp|wire:chaos\
    |trace:analyze|node:serve|node:swarm> \
    [--full|--quick|--smoke] [--seed N] [--jobs N] [--engine cycle|event] \
    [--trace-out FILE.json] [--trace-jsonl FILE.jsonl] [--metrics-out FILE.json]\n\
    --engine event runs the skip-ahead kernel (byte-identical output, \
    fewer stepped cycles)\n\
    wire:chaos --metrics-out writes the per-cause fault-counter JSON report\n\
    wire:udp exits with code 3 when the localhost sockets cannot bind\n\
    trace:analyze --metrics-out writes the journey-analysis JSON report, \
    --trace-out the journey-enriched Perfetto trace (fabric carrier), \
    --trace-jsonl the raw event stream; exits nonzero on invariant violation\n\
    node:serve hosts a many-endpoint daemon \
    [--nodes=N --shards=S --batch=B --workload=rotation|em3d \
    --messages=M --packets=P --scalar --parity]\n\
    node:swarm runs an M-process localhost swarm with a sim parity gate \
    [--procs=M --per-proc=K --kill ...serve flags]; \
    --metrics-out writes the aggregated swarm JSON report";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = None;
    let mut scale = Scale::Full;
    let mut seed = 1u64;
    let mut jobs = Jobs::available();
    let mut trace_out: Option<String> = None;
    let mut trace_jsonl: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut extra: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(s) = Scale::from_flag(a) {
            scale = s;
        } else if a == "--seed" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs an integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--jobs" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => jobs = Jobs::new(v),
                None => {
                    eprintln!("--jobs needs a worker count\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--engine" {
            match it.next().and_then(|v| Engine::parse(v)) {
                Some(e) => nifdy_harness::set_engine(e),
                None => {
                    eprintln!("--engine needs 'cycle' or 'event'\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--trace-out" || a == "--trace-jsonl" || a == "--metrics-out" {
            let Some(path) = it.next() else {
                eprintln!("{a} needs a file path\n{USAGE}");
                return ExitCode::FAILURE;
            };
            match a.as_str() {
                "--trace-out" => trace_out = Some(path.clone()),
                "--trace-jsonl" => trace_jsonl = Some(path.clone()),
                _ => metrics_out = Some(path.clone()),
            }
        } else if a.starts_with("--") {
            // Command-specific flags (node:* uses --key=value form); the
            // dispatch below validates them against the chosen target.
            extra.push(a.clone());
        } else if target.is_none() {
            target = Some(a.clone());
        } else {
            eprintln!("unexpected argument '{a}'\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    let Some(target) = target else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if !extra.is_empty() && !target.starts_with("node:") {
        eprintln!("unexpected argument '{}'\n{USAGE}", extra[0]);
        return ExitCode::FAILURE;
    }

    let all = target == "all";
    let mut matched = false;
    let mut want = |name: &str| -> bool {
        let hit = all || target == name;
        matched |= hit;
        hit
    };

    if want("table3") {
        let (table, _) = table3::run(seed, jobs);
        println!("{table}");
    }
    if want("fig2") {
        let (table, _) = fig23::run(true, scale, seed, jobs);
        println!("{table}");
    }
    if want("fig3") {
        let (table, _) = fig23::run(false, scale, seed, jobs);
        println!("{table}");
    }
    if want("fig4") {
        let (b_panel, o_panel, _) = fig4::run(scale, seed, jobs);
        println!("{b_panel}");
        println!("{o_panel}");
    }
    if want("fig5") {
        let (maps, _, _) = fig5::run(scale, seed, jobs);
        println!("{maps}");
    }
    if want("fig6") {
        let (table, _) = fig6::run(scale, seed, jobs);
        println!("{table}");
    }
    if want("fig7") {
        let (table, _) = fig78::run(true, scale, seed, jobs);
        println!("{table}");
    }
    if want("fig8") {
        let (table, _) = fig78::run(false, scale, seed, jobs);
        println!("{table}");
    }
    if want("fig9") {
        let (scan, coalesce, _) = fig9::run(scale, seed, jobs);
        println!("{scan}");
        println!("{coalesce}");
    }

    if target == "ext:adaptive" {
        let (table, _) = ext::run_adaptive(scale, seed, jobs);
        println!("{table}");
        matched = true;
    }
    if target == "ext:loadsweep" {
        let (table, _) = ext::run_loadsweep(scale, seed, jobs);
        println!("{table}");
        matched = true;
    }
    if target == "ext:lossy" || target == "ext-lossy" {
        let (table, _) = ext_lossy::run_lossy(scale, seed, jobs);
        println!("{table}");
        matched = true;
    }
    if target == "wire:loopback" {
        let (table, _) = wire_cmd::run_loopback(scale, seed);
        println!("{table}");
        matched = true;
    }
    if target == "wire:chaos" {
        let (table, points) = wire_cmd::run_chaos(scale, seed);
        println!("{table}");
        if let Some(path) = &metrics_out {
            let json = wire_cmd::chaos_json(seed, &points).render();
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        matched = true;
    }
    if target == "wire:udp" {
        match wire_cmd::run_udp(scale, seed) {
            Ok(report) => {
                println!(
                    "nifdy-wire: UDP localhost exchange: {} packets delivered in order, \
                     {} retransmits, {} ms \
                     (refused {}, oversize {}, unknown peer {}, transport errors {} \
                     [{} dropped])",
                    report.delivered,
                    report.retransmits,
                    report.millis,
                    report.refused,
                    report.oversize,
                    report.unknown_peer,
                    report.transport_errors,
                    report.dropped_errors,
                );
            }
            Err(e) => {
                // Distinct exit code: CI distinguishes "no loopback socket
                // available in this sandbox" from a protocol failure.
                eprintln!("wire:udp cannot bind localhost sockets: {e}");
                return ExitCode::from(3);
            }
        }
        matched = true;
    }
    if target == "node:serve" {
        match node_cmd::run_serve(scale, seed, &extra) {
            Ok(node_cmd::ServeOutcome::Child) => {}
            Ok(node_cmd::ServeOutcome::Report(report)) => {
                println!("{}", report.summary);
                println!("{}", report.shards);
                if !report.ok() {
                    eprintln!("node:serve: delivery order diverged from the plan");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("node:serve: {e}");
                return ExitCode::FAILURE;
            }
        }
        matched = true;
    }
    if target == "node:swarm" {
        match node_cmd::run_swarm(scale, seed, &extra) {
            Ok(report) => {
                println!("{}", report.table);
                println!("{}", report.verdict);
                if let Some(path) = &metrics_out {
                    if let Err(e) = std::fs::write(path, report.json.render()) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {path}");
                }
                if !report.ok {
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("node:swarm: {e}");
                return ExitCode::FAILURE;
            }
        }
        matched = true;
    }
    if target == "trace:analyze" {
        let run = analyze_cmd::run(scale, seed);
        println!("{}", run.render());
        let write = |path: &str, data: String| -> bool {
            if let Err(e) = std::fs::write(path, data) {
                eprintln!("cannot write {path}: {e}");
                return false;
            }
            eprintln!("wrote {path}");
            true
        };
        if let Some(path) = &metrics_out {
            if !write(path, run.to_json().render()) {
                return ExitCode::FAILURE;
            }
        }
        if let Some(path) = &trace_out {
            if !write(path, run.fabric.enriched_trace()) {
                return ExitCode::FAILURE;
            }
        }
        if let Some(path) = &trace_jsonl {
            if !write(
                path,
                export::to_jsonl_with_loss(&run.fabric.events, &run.fabric.loss),
            ) {
                return ExitCode::FAILURE;
            }
        }
        if !run.ok() {
            eprintln!("trace:analyze: conservation invariants or sim/wire equivalence violated");
            return ExitCode::FAILURE;
        }
        matched = true;
    }
    if target == "trace-guard" {
        let report = trace_guard::run(scale, seed, 5, 2.0);
        println!("{}", report.table());
        if !report.passed() {
            eprintln!(
                "trace-guard: recorder overhead {:.2}% exceeds the {:.2}% budget",
                report.overhead_pct, report.budget_pct
            );
            return ExitCode::FAILURE;
        }
        matched = true;
    }

    // Flight-recorder artifacts: re-run the lossy sweep's representative
    // cell (10% bursty loss, bulk, adaptive RTO) with the recorder on and
    // export whatever was requested.
    if (trace_out.is_some() || trace_jsonl.is_some() || metrics_out.is_some())
        && target != "wire:chaos"
        && target != "trace:analyze"
        && !target.starts_with("node:")
    {
        if !(target.starts_with("ext:lossy") || target == "ext-lossy") {
            eprintln!(
                "--trace-out/--trace-jsonl/--metrics-out only apply to ext:lossy, \
                 wire:chaos, trace:analyze, and node:swarm\n{USAGE}"
            );
            return ExitCode::FAILURE;
        }
        let (events, registry, point) = ext_lossy::run_traced_cell(scale, seed);
        eprintln!(
            "traced cell: loss 10% {} {}, {} packets delivered, {} events recorded",
            point.mode,
            point.rto,
            point.delivered,
            events.len()
        );
        println!("{}", percentile_table("ext:lossy traced cell", &registry));
        let write = |path: &str, data: String| -> bool {
            if let Err(e) = std::fs::write(path, data) {
                eprintln!("cannot write {path}: {e}");
                return false;
            }
            eprintln!("wrote {path}");
            true
        };
        if let Some(path) = &trace_out {
            if !write(path, export::to_chrome_trace(&events)) {
                return ExitCode::FAILURE;
            }
        }
        if let Some(path) = &trace_jsonl {
            if !write(path, export::to_jsonl(&events)) {
                return ExitCode::FAILURE;
            }
        }
        if let Some(path) = &metrics_out {
            if !write(path, registry.to_json().render()) {
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(label) = target.strip_prefix("sweep:") {
        match sweep::kind_from_label(label) {
            Some(kind) => {
                let (table, _) = sweep::run(kind, scale, seed, jobs);
                println!("{table}");
                matched = true;
            }
            None => {
                eprintln!("unknown network '{label}'");
                return ExitCode::FAILURE;
            }
        }
    }

    if !matched {
        eprintln!("unknown experiment '{target}'\n{USAGE}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
