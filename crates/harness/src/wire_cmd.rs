//! `wire:*` experiments: the byte-transport stack measured against the
//! paper's §2.4 analytic model.
//!
//! * [`run_loopback`] streams a one-way bulk workload between two
//!   [`WireEndpoint`]s on the deterministic loopback hub and reports the
//!   achieved pairwise bandwidth at several window sizes against the
//!   Equation 1 ceiling `L / max(T_send, T_receive, T_link)`. The transport
//!   port charges one cycle per word of serialization, so `T_link =
//!   size_words` and the ceiling is exactly [`BYTES_PER_WORD`] bytes per
//!   cycle; Equation 3 predicts the window that reaches it.
//! * [`run_udp`] runs the same exchange over two real UDP sockets on
//!   localhost — a smoke-scale proof that the stack survives an operating
//!   system's delivery behavior, with the §6.2 machinery absorbing any
//!   loss.

use nifdy::analysis::{min_window_combined_acks, pairwise_bandwidth, roundtrip, Timing};
use nifdy::{NifdyConfig, OutboundPacket};
use nifdy_net::{GilbertElliott, UserData};
use nifdy_sim::NodeId;
use nifdy_trace::json::Json;
use nifdy_trace::WireFaultCause;
use nifdy_wire::codec::BYTES_PER_WORD;
use nifdy_wire::{FaultyTransport, LoopbackHub, UdpTransport, WireEndpoint, WireFaultConfig};

use crate::{Scale, Table};

/// Packet length every wire measurement uses, matching the paper's
/// library-driven workloads (6 words including the header).
pub const SIZE_WORDS: u16 = 6;

/// Fixed one-way hub latency for the loopback measurements, in cycles.
pub const HUB_LATENCY: u64 = 8;

/// One measured cell of the loopback bandwidth table.
#[derive(Debug, Clone, Copy)]
pub struct WirePoint {
    /// Window size (0 = scalar mode, no dialog).
    pub window: u8,
    /// Packets streamed.
    pub packets: u32,
    /// Hub cycles from first injection to last delivery.
    pub cycles: u64,
    /// Achieved bandwidth in bytes per cycle.
    pub bytes_per_cycle: f64,
}

fn config(window: u8, bulk: bool) -> NifdyConfig {
    NifdyConfig::builder()
        .opt_entries(4)
        .pool_entries(8)
        .max_dialogs(if bulk { 1 } else { 0 })
        .window(window.max(2))
        .build()
        .expect("wire measurement config is valid")
}

/// Streams `packets` 6-word packets from node 0 to node 1 over the loopback
/// hub and returns the achieved bandwidth. `window == 0` runs scalar mode.
fn measure(window: u8, packets: u32, seed: u64) -> WirePoint {
    let bulk = window > 0;
    let hub = LoopbackHub::new(2, HUB_LATENCY);
    let n0 = NodeId::new(0);
    let n1 = NodeId::new(1);
    let mut tx = WireEndpoint::new(n0, config(window, bulk), hub.endpoint(n0));
    let mut rx = WireEndpoint::new(n1, config(window, bulk), hub.endpoint(n1));
    let mut sent = 0u32;
    let mut got = 0u32;
    let mut last_delivery = 0u64;
    let deadline = 200_000 + u64::from(packets) * 200;
    while got < packets {
        let now = hub.now().as_u64();
        assert!(now < deadline, "wire measurement wedged at {got}/{packets}");
        if sent < packets {
            let pkt = OutboundPacket::new(n1, SIZE_WORDS)
                .with_bulk(bulk)
                .with_user(UserData {
                    msg_id: seed,
                    pkt_index: sent,
                    msg_packets: packets,
                    user_words: SIZE_WORDS - 2,
                });
            if tx.try_send(pkt) {
                sent += 1;
            }
        }
        tx.step();
        rx.step();
        while let Some(d) = rx.poll() {
            assert_eq!(d.user.pkt_index, got, "out-of-order delivery");
            got += 1;
            last_delivery = hub.now().as_u64();
        }
        hub.tick();
    }
    let bytes = u64::from(packets) * u64::from(SIZE_WORDS) * BYTES_PER_WORD as u64;
    WirePoint {
        window,
        packets,
        cycles: last_delivery,
        bytes_per_cycle: bytes as f64 / last_delivery as f64,
    }
}

/// The loopback pairwise-bandwidth experiment: scalar mode plus a window
/// sweep, rendered against the Equation 1 ceiling.
pub fn run_loopback(scale: Scale, seed: u64) -> (Table, Vec<WirePoint>) {
    let packets = scale.count(2_048) as u32;
    // The transport port serializes one word per cycle, so T_link is the
    // packet length; the drive loop injects and polls every cycle, so the
    // endpoint overheads are one cycle each.
    let timing = Timing {
        t_send: 1,
        t_receive: 1,
        t_link: u64::from(SIZE_WORDS),
        t_ackproc: 2,
    };
    let payload = u64::from(SIZE_WORDS) * BYTES_PER_WORD as u64;
    let ceiling = pairwise_bandwidth(payload, timing);
    // One-way frame time: hub latency plus serialization plus the
    // tick/step handoff on each side.
    let t_lat = HUB_LATENCY + u64::from(SIZE_WORDS) + 2;
    let t_roundtrip = roundtrip(t_lat, timing.t_ackproc);
    let w_min = min_window_combined_acks(t_roundtrip, timing.bottleneck());

    let mut table = Table::new(
        format!(
            "nifdy-wire: loopback pairwise bandwidth, 2 nodes, {SIZE_WORDS}-word packets, \
             hub latency {HUB_LATENCY} (Eq.1 ceiling {ceiling:.2} B/cyc; \
             Eq.3 predicts W >= {w_min} at T_roundtrip {t_roundtrip})"
        ),
        vec![
            "mode".into(),
            "window".into(),
            "packets".into(),
            "cycles".into(),
            "B/cyc".into(),
            "% of Eq.1".into(),
        ],
    );
    let mut points = Vec::new();
    for window in [0u8, 2, 4, 8, 16, 32] {
        let p = measure(window, packets, seed);
        table.row(vec![
            if window == 0 { "scalar" } else { "bulk" }.into(),
            if window == 0 {
                "-".into()
            } else {
                window.to_string()
            },
            p.packets.to_string(),
            p.cycles.to_string(),
            format!("{:.2}", p.bytes_per_cycle),
            format!("{:.1}", 100.0 * p.bytes_per_cycle / ceiling),
        ]);
        points.push(p);
    }
    (table, points)
}

/// Mean loss rates the chaos sweep visits (0.0 is the clean baseline).
pub const CHAOS_LOSS_SWEEP: [f64; 5] = [0.0, 0.01, 0.05, 0.1, 0.2];

/// One measured cell of the chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// Mean Gilbert–Elliott loss rate this cell ran under.
    pub mean_loss: f64,
    /// Distinct packets the workload wanted delivered.
    pub packets: u32,
    /// Deliveries observed, counting at-least-once re-offers after a
    /// typed failure (so this can exceed `packets`).
    pub delivered: u32,
    /// Hub cycles from the first injection to the last delivery.
    pub cycles: u64,
    /// Goodput in payload bytes per cycle (distinct packets only).
    pub goodput: f64,
    /// Median first-offer-to-delivery latency in cycles.
    pub p50: u64,
    /// 99th-percentile first-offer-to-delivery latency in cycles.
    pub p99: u64,
    /// Data retransmissions the §6.2 machinery issued.
    pub retransmits: u64,
    /// Typed delivery failures the sender surfaced (budget exhausted).
    pub failures: u64,
    /// Per-cause chaos-plane counters summed over both endpoints.
    pub fault_counts: Vec<(&'static str, u64)>,
}

/// The chaos plane at a given intensity: bursty loss at `mean_loss`, with
/// corruption, duplication, delay, and reordering scaled down from it so
/// every fault cause stays exercised across the sweep.
fn chaos_faults(mean_loss: f64) -> WireFaultConfig {
    if mean_loss <= 0.0 {
        return WireFaultConfig::default();
    }
    WireFaultConfig::default()
        .with_burst(GilbertElliott::with_mean_loss(mean_loss))
        .with_corrupt_prob(mean_loss / 2.0)
        .with_duplicate_prob(mean_loss / 4.0)
        .with_delay(mean_loss / 4.0, 8)
        .with_reorder_prob(mean_loss / 4.0)
}

/// Sorted-latency percentile (nearest-rank on the cycle counts).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted.get(idx).copied().unwrap_or(0)
}

/// Streams `packets` 6-word bulk packets from node 0 to node 1 through a
/// seeded [`FaultyTransport`] on each side and measures goodput and
/// delivery latency. Typed failures are absorbed by an application-level
/// re-offer shim, so the cell always finishes; the failure count stays
/// visible in the report.
fn measure_chaos(mean_loss: f64, packets: u32, seed: u64) -> ChaosPoint {
    let hub = LoopbackHub::new(2, HUB_LATENCY);
    let n0 = NodeId::new(0);
    let n1 = NodeId::new(1);
    let faults = chaos_faults(mean_loss);
    let cfg = config(8, true)
        .with_retx_timeout(64)
        .with_adaptive_rto(true)
        .with_retx_budget(30);
    let mut tx = WireEndpoint::new(
        n0,
        cfg.clone(),
        FaultyTransport::new(hub.endpoint(n0), faults.clone(), seed),
    );
    let mut rx = WireEndpoint::new(
        n1,
        cfg,
        FaultyTransport::new(hub.endpoint(n1), faults, seed),
    );

    let mut queue: std::collections::VecDeque<u32> = (0..packets).collect();
    let mut first_offer: Vec<Option<u64>> = vec![None; packets as usize];
    let mut arrived: Vec<bool> = vec![false; packets as usize];
    let mut latencies: Vec<u64> = Vec::with_capacity(packets as usize);
    let mut unique = 0u32;
    let mut delivered = 0u32;
    let mut failures = 0u64;
    let mut last_delivery = 0u64;
    let deadline = 500_000 + u64::from(packets) * 4_000;

    while unique < packets {
        let now = hub.now().as_u64();
        assert!(
            now < deadline,
            "chaos cell (loss {mean_loss}) wedged at {unique}/{packets}"
        );
        if let Some(&idx) = queue.front() {
            let pkt = OutboundPacket::new(n1, SIZE_WORDS)
                .with_bulk(true)
                .with_user(UserData {
                    msg_id: seed,
                    pkt_index: idx,
                    msg_packets: packets,
                    user_words: SIZE_WORDS - 2,
                });
            if tx.try_send(pkt) {
                queue.pop_front();
                if let Some(slot) = first_offer.get_mut(idx as usize) {
                    slot.get_or_insert(now);
                }
            }
        }
        tx.step();
        rx.step();
        // Budget-exhausted packets come back as typed failures; re-offer
        // anything that provably never arrived (at-least-once semantics —
        // a failure whose data did land re-delivers at the app level).
        failures += tx.take_failures().len() as u64;
        if failures > 0 && queue.is_empty() && tx.is_idle() {
            for (idx, seen) in arrived.iter().enumerate() {
                if !seen {
                    queue.push_back(idx as u32);
                }
            }
        }
        while let Some(d) = rx.poll() {
            delivered += 1;
            last_delivery = hub.now().as_u64();
            let idx = d.user.pkt_index as usize;
            if let Some(seen @ false) = arrived.get_mut(idx) {
                *seen = true;
                unique += 1;
                if let Some(at) = first_offer.get(idx).copied().flatten() {
                    latencies.push(last_delivery.saturating_sub(at));
                }
            }
        }
        hub.tick();
    }

    latencies.sort_unstable();
    let bytes = u64::from(packets) * u64::from(SIZE_WORDS) * BYTES_PER_WORD as u64;
    let fault_counts = WireFaultCause::ALL
        .iter()
        .map(|&c| {
            let total =
                tx.port().transport().stats().count(c) + rx.port().transport().stats().count(c);
            (c.label(), total)
        })
        .collect();
    ChaosPoint {
        mean_loss,
        packets,
        delivered,
        cycles: last_delivery,
        goodput: bytes as f64 / last_delivery.max(1) as f64,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        retransmits: tx.stats().retransmitted.get(),
        failures,
        fault_counts,
    }
}

/// The chaos sweep: goodput and delivery-latency percentiles for the
/// two-node loopback workload as the chaos plane's intensity rises.
pub fn run_chaos(scale: Scale, seed: u64) -> (Table, Vec<ChaosPoint>) {
    let packets = scale.count(1_024) as u32;
    let mut table = Table::new(
        format!(
            "nifdy-wire: chaos sweep, 2 nodes, {SIZE_WORDS}-word packets, hub \
             latency {HUB_LATENCY}, bursty loss + corrupt/duplicate/delay/reorder \
             (seed {seed})"
        ),
        vec![
            "mean loss".into(),
            "packets".into(),
            "delivered".into(),
            "cycles".into(),
            "goodput B/cyc".into(),
            "p50 lat".into(),
            "p99 lat".into(),
            "retx".into(),
            "failures".into(),
            "faults".into(),
        ],
    );
    let mut points = Vec::new();
    for loss in CHAOS_LOSS_SWEEP {
        let p = measure_chaos(loss, packets, seed);
        table.row(vec![
            format!("{loss:.2}"),
            p.packets.to_string(),
            p.delivered.to_string(),
            p.cycles.to_string(),
            format!("{:.2}", p.goodput),
            p.p50.to_string(),
            p.p99.to_string(),
            p.retransmits.to_string(),
            p.failures.to_string(),
            p.fault_counts
                .iter()
                .map(|&(_, n)| n)
                .sum::<u64>()
                .to_string(),
        ]);
        points.push(p);
    }
    (table, points)
}

/// Machine-readable form of the chaos sweep, including the per-cause
/// fault counters CI archives.
pub fn chaos_json(seed: u64, points: &[ChaosPoint]) -> Json {
    Json::obj([
        ("experiment", Json::str("wire:chaos")),
        ("seed", Json::u64(seed)),
        ("size_words", Json::u64(u64::from(SIZE_WORDS))),
        ("hub_latency", Json::u64(HUB_LATENCY)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("mean_loss", Json::Num(p.mean_loss)),
                            ("packets", Json::u64(u64::from(p.packets))),
                            ("delivered", Json::u64(u64::from(p.delivered))),
                            ("cycles", Json::u64(p.cycles)),
                            ("goodput_bytes_per_cycle", Json::Num(p.goodput)),
                            ("latency_p50", Json::u64(p.p50)),
                            ("latency_p99", Json::u64(p.p99)),
                            ("retransmits", Json::u64(p.retransmits)),
                            ("failures", Json::u64(p.failures)),
                            (
                                "fault_counts",
                                Json::Obj(
                                    p.fault_counts
                                        .iter()
                                        .map(|&(k, n)| (k.to_string(), Json::u64(n)))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Result of the two-node UDP exchange, including the carrier-level
/// counters summed over both sockets.
#[derive(Debug, Clone, Copy)]
pub struct UdpReport {
    /// Packets delivered in order at the receiver.
    pub delivered: u64,
    /// Data retransmissions the sender issued (OS drops absorbed).
    pub retransmits: u64,
    /// Wall-clock milliseconds for the exchange.
    pub millis: u128,
    /// `ECONNREFUSED` events (ICMP bounce from a dead peer; weather).
    pub refused: u64,
    /// Datagrams rejected for exceeding the socket's maximum size.
    pub oversize: u64,
    /// Frames addressed to nodes with no registered socket address.
    pub unknown_peer: u64,
    /// Unclassified socket failures (see [`nifdy_wire::TransportError`]).
    pub transport_errors: u64,
    /// Unclassified failures shed because an earlier one was unread.
    pub dropped_errors: u64,
}

/// Streams a bulk message between two localhost UDP sockets driven from one
/// thread (step the sender, step the receiver, repeat) and asserts in-order
/// exactly-once delivery.
pub fn run_udp(scale: Scale, seed: u64) -> std::io::Result<UdpReport> {
    let packets = scale.count(500) as u32;
    let n0 = NodeId::new(0);
    let n1 = NodeId::new(1);
    let mut t0 = UdpTransport::bind(n0, "127.0.0.1:0")?;
    let mut t1 = UdpTransport::bind(n1, "127.0.0.1:0")?;
    t0.add_peer(n1, t1.local_addr()?);
    t1.add_peer(n0, t0.local_addr()?);
    let cfg = config(8, true).with_retx_timeout(20_000);
    let mut tx = WireEndpoint::new(n0, cfg.clone(), t0);
    let mut rx = WireEndpoint::new(n1, cfg, t1);
    let start = std::time::Instant::now();
    let mut sent = 0u32;
    let mut got = 0u32;
    while got < packets || !tx.is_idle() {
        assert!(
            start.elapsed().as_secs() < 120,
            "udp exchange wedged at {got}/{packets}"
        );
        if sent < packets {
            let pkt = OutboundPacket::new(n1, SIZE_WORDS)
                .with_bulk(true)
                .with_user(UserData {
                    msg_id: seed,
                    pkt_index: sent,
                    msg_packets: packets,
                    user_words: SIZE_WORDS - 2,
                });
            if tx.try_send(pkt) {
                sent += 1;
            }
        }
        tx.step();
        rx.step();
        assert!(
            tx.take_failures().is_empty(),
            "sender gave up on a delivery"
        );
        while let Some(d) = rx.poll() {
            assert_eq!(d.user.pkt_index, got, "out-of-order delivery over UDP");
            got += 1;
        }
    }
    let (t0, t1) = (tx.port().transport(), rx.port().transport());
    Ok(UdpReport {
        delivered: rx.stats().delivered.get(),
        retransmits: tx.stats().retransmitted.get(),
        millis: start.elapsed().as_millis(),
        refused: t0.refused() + t1.refused(),
        oversize: t0.oversize() + t1.oversize(),
        unknown_peer: t0.unknown_peer() + t1.unknown_peer(),
        transport_errors: t0.transport_errors() + t1.transport_errors(),
        dropped_errors: t0.dropped_errors() + t1.dropped_errors(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_bandwidth_scales_with_window() {
        let (_, points) = run_loopback(Scale::Smoke, 1);
        assert_eq!(points.len(), 6);
        let scalar = points[0].bytes_per_cycle;
        let widest = points.last().expect("points").bytes_per_cycle;
        assert!(
            widest > 2.0 * scalar,
            "a wide window must beat scalar mode ({widest:.2} vs {scalar:.2})"
        );
        let ceiling = BYTES_PER_WORD as f64;
        assert!(
            widest <= ceiling * 1.001,
            "nothing exceeds the Equation 1 ceiling"
        );
        assert!(
            widest >= ceiling * 0.80,
            "a wide window should approach the ceiling, got {widest:.2}"
        );
    }

    #[test]
    fn chaos_cell_recovers_and_counts_faults() {
        let clean = measure_chaos(0.0, 128, 9);
        assert_eq!(clean.failures, 0);
        assert_eq!(clean.delivered, 128);
        assert!(clean.fault_counts.iter().all(|&(_, n)| n == 0));

        let lossy = measure_chaos(0.1, 128, 9);
        assert!(lossy.delivered >= 128, "every packet eventually lands");
        assert!(
            lossy.fault_counts.iter().any(|&(_, n)| n > 0),
            "the chaos plane never fired"
        );
        assert!(lossy.retransmits > 0, "loss must cost retransmissions");
        assert!(lossy.p99 >= lossy.p50);
        assert!(
            lossy.goodput < clean.goodput,
            "chaos cannot be free: {:.2} vs clean {:.2}",
            lossy.goodput,
            clean.goodput
        );
    }

    #[test]
    fn chaos_json_is_parseable_and_complete() {
        let points = vec![measure_chaos(0.05, 64, 2)];
        let rendered = chaos_json(2, &points).render();
        let parsed = nifdy_trace::json::parse(&rendered).expect("chaos JSON parses");
        let arr = parsed
            .get("points")
            .and_then(|p| p.as_arr())
            .expect("points array");
        assert_eq!(arr.len(), 1);
        let counts = arr[0].get("fault_counts").expect("per-cause counters");
        for cause in nifdy_trace::WireFaultCause::ALL {
            assert!(
                counts.get(cause.label()).is_some(),
                "cause {:?} missing from the JSON report",
                cause
            );
        }
    }

    #[test]
    fn udp_exchange_delivers_everything() {
        let report = run_udp(Scale::Smoke, 3).expect("sockets bind on localhost");
        assert_eq!(report.delivered, Scale::Smoke.count(500));
        assert_eq!(
            report.transport_errors, 0,
            "no unclassified socket failures"
        );
        assert_eq!(report.dropped_errors, 0);
        assert_eq!(report.unknown_peer, 0, "both peers were registered");
        assert_eq!(report.oversize, 0);
    }
}
